"""Subscriber supervision: isolate crashes, unwedge hangs, repair gaps.

PR 3/6 gave every subscriber its own queue and worker thread, so a
*slow* consumer could not corrupt a peer's stream — but a consumer
that **raises** silently loses its chunk (the bus swallows callback
errors), and one that **hangs** under the ``block`` policy wedges the
publisher and stalls every other subscriber.  This module puts a
supervision layer between the bus and each consumer:

* :class:`SupervisedSubscriber` wraps the consumer callable.  Every
  delivery runs inside an exception boundary; a crash moves the
  subscriber into a bounded-exponential-backoff restart cycle
  (``backoff_base_s * factor ** (crashes-1)``, capped, at most
  ``max_restarts`` restarts before the subscriber is declared failed
  and further deliveries are skipped-and-counted).  Deliveries that
  arrive while backed off are skipped, not queued — they become a
  sequence gap the next successful delivery repairs.
* A **watchdog thread** (:class:`Supervisor`) polls each wrapper's
  busy timestamp; a delivery stuck past ``deadline_s`` is flagged as a
  hang and, when the subscription's policy is ``block``, the policy is
  degraded to ``drop_oldest`` so the publisher (and every peer)
  unwedges.  When the hung delivery finally returns, the original
  policy is restored and the dropped chunks are repaired.
* **Gap repair**: the wrapper tracks the last *acked* (successfully
  consumed) sample sequence.  When a delivery starts past
  ``acked + 1`` — because chunks were evicted, skipped during
  backoff, or dropped while degraded — the missing rows are rebuilt
  from the source database by :class:`SourceReplayer` and fed through
  the consumer *before* the triggering delivery, so the consumer
  always observes an in-order, gap-free stream.  Chaos-injected
  crashes fire before the consumer touches a chunk, so repair never
  double-applies state.

Everything observable lands in per-subscriber
:class:`SupervisorCounters` and a time-ordered :class:`ServiceEvent`
log exposed on the service report.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.chaos import ChaosInjector
from repro.service.bus import BusChunk, BusSample, Subscription
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS

__all__ = [
    "SupervisorConfig",
    "SupervisorCounters",
    "ServiceEvent",
    "SourceReplayer",
    "SupervisedSubscriber",
    "Supervisor",
]


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy shared by every wrapped subscriber.

    Attributes:
        deadline_s: A delivery busy longer than this is a hang.
        poll_interval_s: Watchdog sampling period.
        max_restarts: Crash budget; the ``max_restarts + 1``-th crash
            marks the subscriber failed (no further deliveries).
        backoff_base_s / backoff_factor / backoff_max_s: Restart
            delay ``min(base * factor**(n-1), max)`` after the n-th
            crash.  A base of ``0`` restarts on the next delivery —
            the deterministic setting the equivalence tests use.
        repair_gaps: Rebuild missed sample ranges from the source
            database before the next delivery (needs a database-backed
            bus; generic iterable sources skip repair).
    """

    deadline_s: float = 5.0
    poll_interval_s: float = 0.05
    max_restarts: int = 5
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    repair_gaps: bool = True

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts cannot be negative, got {self.max_restarts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, crashes: int) -> float:
        """Restart delay after the ``crashes``-th consecutive crash."""
        if crashes < 1:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (crashes - 1),
            self.backoff_max_s,
        )


@dataclasses.dataclass
class SupervisorCounters:
    """Per-subscriber supervision observability."""

    #: Deliveries that completed (gap repairs excluded).
    deliveries: int = 0
    #: Samples those deliveries carried.
    samples_delivered: int = 0
    #: Exceptions caught at the supervision boundary.
    crashes: int = 0
    #: Times the subscriber came back from backoff.
    restarts: int = 0
    #: Deliveries skipped while backed off or failed.
    skipped: int = 0
    #: Samples those skipped deliveries carried.
    samples_skipped: int = 0
    #: Deliveries flagged by the watchdog as hung.
    hangs: int = 0
    #: Hung deliveries that eventually returned.
    hang_recoveries: int = 0
    #: Sequence gaps rebuilt from the source.
    gaps_repaired: int = 0
    #: Samples re-fed through the consumer by gap repair.
    samples_repaired: int = 0
    #: Snapshots taken (durable subscribers only).
    snapshots: int = 0
    #: Crash budget exhausted; the subscriber is dead for this run.
    gave_up: bool = False

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ServiceEvent:
    """One supervision event, in wall-clock order.

    ``kind`` is one of ``crash``, ``restart``, ``gave_up``, ``hang``,
    ``hang_recovered``, ``gap_repaired``, ``snapshot``, ``kill``.
    """

    kind: str
    subscriber: str
    seq: Optional[int]
    detail: str
    wall_s: float


class SourceReplayer:
    """Rebuilds published sample ranges from the source database.

    The bus assigns sample sequence ``base_seq + i`` to the ``i``-th
    row inside the replay window, so any ``[lo_seq, hi_seq]`` range
    maps back to a contiguous row slice of the database's column
    matrices — gap repair is zero-copy view slicing, identical in
    content to what the bus originally published.
    """

    def __init__(
        self,
        database: EnvironmentalDatabase,
        start_epoch_s: float = -np.inf,
        end_epoch_s: float = np.inf,
        base_seq: int = 0,
        chunk_size: int = 256,
    ) -> None:
        database.num_samples  # flush pending appends before slicing
        epochs = database.epoch_s
        self._window_lo = int(np.searchsorted(epochs, start_epoch_s, side="left"))
        self._window_hi = int(np.searchsorted(epochs, end_epoch_s, side="left"))
        self.base_seq = int(base_seq)
        self.chunk_size = int(chunk_size)
        self._epochs = epochs
        self._values = {ch: database.channel(ch).values for ch in CHANNELS}
        self._quality = {ch: database.quality(ch) for ch in CHANNELS}

    def blocks(self, lo_seq: int, hi_seq: int) -> Iterator[BusChunk]:
        """Yield the range ``[lo_seq, hi_seq]`` as read-only chunks.

        Rebuilt chunks carry ``seq == -1`` (they are synthetic, not
        bus-published) but real ``start_seq`` sample numbering.
        """
        if lo_seq > hi_seq:
            return
        row_lo = self._window_lo + (lo_seq - self.base_seq)
        row_hi = self._window_lo + (hi_seq - self.base_seq)
        if row_lo < self._window_lo or row_hi >= self._window_hi:
            raise ValueError(
                f"sequence range [{lo_seq}, {hi_seq}] is outside the replay "
                f"window (seqs [{self.base_seq}, "
                f"{self.base_seq + self._window_hi - self._window_lo - 1}])"
            )
        for start in range(row_lo, row_hi + 1, self.chunk_size):
            stop = min(start + self.chunk_size, row_hi + 1)
            yield BusChunk(
                seq=-1,
                start_seq=self.base_seq + (start - self._window_lo),
                epoch_s=self._epochs[start:stop],
                values={ch: block[start:stop] for ch, block in self._values.items()},
                quality={ch: block[start:stop] for ch, block in self._quality.items()},
            )


class SupervisedSubscriber:
    """The supervision wrapper registered as the bus callback.

    States: ``running`` → (crash) → ``backoff`` → (next delivery past
    the restart time) → ``running``; ``max_restarts + 1`` crashes →
    ``failed`` (terminal for the run — a recovered service starts a
    fresh wrapper).
    """

    def __init__(
        self,
        name: str,
        inner: Callable[..., None],
        supervisor: "Supervisor",
        base_seq: int = 0,
        snapshotter: Optional[Callable[[int], None]] = None,
        snapshot_every: int = 0,
    ) -> None:
        self.name = name
        self.inner = inner
        self.supervisor = supervisor
        self.counters = SupervisorCounters()
        self.state = "running"
        self.last_acked_seq = base_seq - 1
        self.snapshotter = snapshotter
        self.snapshot_every = int(snapshot_every)
        self._last_snapshot_seq = base_seq - 1
        self.subscription: Optional[Subscription] = None
        self._original_policy: Optional[str] = None
        self._crashes = 0
        self._restart_at = 0.0
        self._busy_since: Optional[float] = None
        self._hang_flagged = False
        self._degraded = False
        self._lock = threading.Lock()

    # -- wiring -------------------------------------------------------------------

    def attach(self, subscription: Subscription) -> None:
        """Bind the bus subscription (for watchdog policy degrades)."""
        self.subscription = subscription
        self._original_policy = subscription.policy

    # -- the delivery boundary ----------------------------------------------------

    def __call__(self, item: "BusSample | BusChunk") -> None:
        if isinstance(item, BusChunk):
            start, end, count = item.start_seq, item.end_seq, len(item)
        else:
            start = end = item.seq
            count = 1
        with self._lock:
            if self.state == "failed":
                self.counters.skipped += 1
                self.counters.samples_skipped += count
                return
            if self.state == "backoff":
                if time.monotonic() < self._restart_at:
                    self.counters.skipped += 1
                    self.counters.samples_skipped += count
                    return
                self.state = "running"
                self.counters.restarts += 1
                self.supervisor.record(
                    "restart",
                    self.name,
                    seq=start,
                    detail=f"after crash #{self._crashes}",
                )
            self._busy_since = time.monotonic()
        try:
            chaos = self.supervisor.chaos
            if chaos is not None:
                chaos.before_delivery(self.name, start)
            if start > self.last_acked_seq + 1:
                self._repair(self.last_acked_seq + 1, start - 1)
            self.inner(item)
        except Exception as exc:  # noqa: BLE001 - the supervision boundary
            self._on_crash(exc, start)
        else:
            with self._lock:
                self.last_acked_seq = end
                self._crashes = 0
                self.counters.deliveries += 1
                self.counters.samples_delivered += count
            self._maybe_snapshot()
        finally:
            self._settle()

    def _repair(self, lo_seq: int, hi_seq: int) -> None:
        """Rebuild and consume the missed range before the trigger."""
        supervisor = self.supervisor
        if not supervisor.config.repair_gaps or supervisor.replayer is None:
            return
        for chunk in supervisor.replayer.blocks(lo_seq, hi_seq):
            self.inner(chunk)
        self.counters.gaps_repaired += 1
        self.counters.samples_repaired += hi_seq - lo_seq + 1
        supervisor.record(
            "gap_repaired",
            self.name,
            seq=lo_seq,
            detail=f"seqs [{lo_seq}, {hi_seq}]",
        )

    def _on_crash(self, exc: Exception, start: int) -> None:
        with self._lock:
            self.counters.crashes += 1
            self._crashes += 1
            if self._crashes > self.supervisor.config.max_restarts:
                self.state = "failed"
                self.counters.gave_up = True
                self.supervisor.record(
                    "gave_up",
                    self.name,
                    seq=start,
                    detail=(
                        f"crash budget exhausted after {self._crashes} "
                        f"consecutive crashes: {exc!r}"
                    ),
                )
            else:
                backoff = self.supervisor.config.backoff_s(self._crashes)
                self._restart_at = time.monotonic() + backoff
                self.state = "backoff"
                self.supervisor.record(
                    "crash",
                    self.name,
                    seq=start,
                    detail=f"{exc!r} (restart in {backoff:g}s)",
                )

    def _maybe_snapshot(self) -> None:
        if self.snapshotter is None or self.snapshot_every <= 0:
            return
        acked = self.last_acked_seq
        if acked - self._last_snapshot_seq < self.snapshot_every:
            return
        try:
            self.snapshotter(acked)
        except Exception as exc:  # noqa: BLE001 - snapshot failure is non-fatal
            self.counters.crashes += 1
            self.supervisor.record(
                "crash", self.name, seq=acked, detail=f"snapshot failed: {exc!r}"
            )
            return
        self._last_snapshot_seq = acked
        self.counters.snapshots += 1
        self.supervisor.record("snapshot", self.name, seq=acked, detail="")

    def snapshot_now(self) -> None:
        """Force a snapshot at the current ack (graceful shutdown)."""
        if self.snapshotter is None:
            return
        self.snapshotter(self.last_acked_seq)
        self._last_snapshot_seq = self.last_acked_seq
        self.counters.snapshots += 1
        self.supervisor.record(
            "snapshot", self.name, seq=self.last_acked_seq, detail="final"
        )

    def _settle(self) -> None:
        """Clear busy/hang state once the delivery attempt ends."""
        with self._lock:
            self._busy_since = None
            if not self._hang_flagged:
                return
            self._hang_flagged = False
            self.counters.hang_recoveries += 1
            degraded = self._degraded
            self._degraded = False
        if degraded and self.subscription is not None:
            self.subscription.set_policy(self._original_policy)
        self.supervisor.record(
            "hang_recovered", self.name, seq=self.last_acked_seq, detail=""
        )

    # -- watchdog side ------------------------------------------------------------

    def _check_deadline(self, now: float, deadline_s: float) -> None:
        with self._lock:
            busy = self._busy_since
            if busy is None or self._hang_flagged or now - busy <= deadline_s:
                return
            self._hang_flagged = True
            self.counters.hangs += 1
            degrade = (
                self.subscription is not None
                and self.subscription.policy == "block"
            )
            if degrade:
                self._degraded = True
        if degrade:
            self.subscription.set_policy("drop_oldest")
        self.supervisor.record(
            "hang",
            self.name,
            seq=self.last_acked_seq,
            detail=f"busy > {deadline_s:g}s"
            + (" (degraded block -> drop_oldest)" if degrade else ""),
        )


class Supervisor:
    """Owns the wrappers, the watchdog thread, and the event log."""

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        chaos: Optional[ChaosInjector] = None,
        replayer: Optional[SourceReplayer] = None,
    ) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self.chaos = chaos
        self.replayer = replayer
        self.subscribers: Dict[str, SupervisedSubscriber] = {}
        self._events: List[ServiceEvent] = []
        self._events_lock = threading.Lock()
        self._stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None

    def supervise(
        self,
        name: str,
        inner: Callable[..., None],
        base_seq: int = 0,
        snapshotter: Optional[Callable[[int], None]] = None,
        snapshot_every: int = 0,
    ) -> SupervisedSubscriber:
        if name in self.subscribers:
            raise ValueError(f"duplicate supervised subscriber: {name!r}")
        wrapper = SupervisedSubscriber(
            name,
            inner,
            self,
            base_seq=base_seq,
            snapshotter=snapshotter,
            snapshot_every=snapshot_every,
        )
        self.subscribers[name] = wrapper
        return wrapper

    def record(
        self, kind: str, subscriber: str, seq: Optional[int] = None, detail: str = ""
    ) -> None:
        event = ServiceEvent(
            kind=kind,
            subscriber=subscriber,
            seq=seq,
            detail=detail,
            wall_s=time.monotonic(),
        )
        with self._events_lock:
            self._events.append(event)

    @property
    def events(self) -> Tuple[ServiceEvent, ...]:
        with self._events_lock:
            return tuple(self._events)

    @property
    def counters(self) -> Dict[str, SupervisorCounters]:
        return {
            name: dataclasses.replace(wrapper.counters)
            for name, wrapper in self.subscribers.items()
        }

    # -- watchdog -----------------------------------------------------------------

    def start(self) -> None:
        if self._watchdog is not None:
            return
        self._stop.clear()
        self._watchdog = threading.Thread(
            target=self._watch, name="service-watchdog", daemon=True
        )
        self._watchdog.start()

    def stop(self, join_timeout_s: float = 5.0) -> None:
        if self._watchdog is None:
            return
        self._stop.set()
        self._watchdog.join(timeout=join_timeout_s)
        self._watchdog = None

    def _watch(self) -> None:
        deadline = self.config.deadline_s
        while not self._stop.wait(self.config.poll_interval_s):
            now = time.monotonic()
            for wrapper in list(self.subscribers.values()):
                wrapper._check_deadline(now, deadline)
