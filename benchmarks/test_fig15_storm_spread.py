"""Fig 15: post-CMF failures land anywhere, not near the epicenter."""

from repro import timeutil
from repro.core.aftermath import analyze_aftermath
from repro.core.report import ReportRow, format_table


def test_fig15_storm_spread(benchmark, canonical):
    analysis = benchmark(analyze_aftermath, canonical.ras_log)

    print("\nFig 15 — example storms:")
    for example in analysis.examples:
        when = timeutil.from_epoch(example.cmf_epoch_s).date()
        followers = ", ".join(r.label for r in example.follower_racks[:8])
        print(
            f"  {when}  epicenter {example.epicenter.label} -> "
            f"{len(example.follower_racks)} followers: {followers}"
            f"{'...' if len(example.follower_racks) > 8 else ''} "
            f"(max distance {example.max_distance():.1f})"
        )

    rows = [
        ReportRow("Fig 15", "example storms extracted", 3, len(analysis.examples)),
        ReportRow("Fig 15", "fraction of storms with non-local followers",
                  1.0, analysis.nonlocal_fraction()),
    ]
    print("\n" + format_table(rows, "Fig 15 — storm spread"))

    assert len(analysis.examples) == 3
    for example in analysis.examples:
        assert len(example.follower_racks) >= 3
    assert analysis.nonlocal_fraction() > 0.5
