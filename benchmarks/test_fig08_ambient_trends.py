"""Fig 8: ambient data-center temperature and humidity over six years."""

from repro import constants
from repro.core.environment import ambient_trends
from repro.core.report import ReportRow, format_table


def test_fig08_ambient_trends(benchmark, canonical):
    trends = benchmark(ambient_trends, canonical.database)

    rows = [
        ReportRow("Fig 8a", "DC temperature min",
                  constants.DC_TEMP_MIN_F, trends.temperature_min_f, "F"),
        ReportRow("Fig 8a", "DC temperature max",
                  constants.DC_TEMP_MAX_F, trends.temperature_max_f, "F"),
        ReportRow("Fig 8a", "DC temperature std",
                  constants.DC_TEMP_STD_F, trends.temperature_std_f, "F"),
        ReportRow("Fig 8b", "DC humidity min",
                  constants.DC_HUMIDITY_MIN_RH, trends.humidity_min_rh, "%RH"),
        ReportRow("Fig 8b", "DC humidity max",
                  constants.DC_HUMIDITY_MAX_RH, trends.humidity_max_rh, "%RH"),
        ReportRow("Fig 8b", "DC humidity std",
                  constants.DC_HUMIDITY_STD_RH, trends.humidity_std_rh, "%RH"),
        ReportRow("Fig 8b", "summer - winter humidity", 5.0,
                  trends.summer_humidity - trends.winter_humidity, "%RH"),
    ]
    print("\n" + format_table(rows, "Fig 8 — ambient trends"))

    assert trends.humidity_is_summer_seasonal
    assert abs(trends.temperature_std_f - constants.DC_TEMP_STD_F) < 1.3
    assert abs(trends.humidity_std_rh - constants.DC_HUMIDITY_STD_RH) < 1.5
