"""Fig 7: rack-level coolant flow and temperatures."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.spatial import rack_coolant_profile


def test_fig07_rack_coolant(benchmark, canonical):
    profile = benchmark(rack_coolant_profile, canonical.database)

    rows = [
        ReportRow("Fig 7a", "rack flow spread",
                  constants.RACK_FLOW_SPREAD, profile.flow_spread),
        ReportRow("Fig 7b", "rack inlet spread",
                  constants.RACK_INLET_SPREAD, profile.inlet_spread),
        ReportRow("Fig 7c", "rack outlet spread",
                  constants.RACK_OUTLET_SPREAD, profile.outlet_spread),
        ReportRow("Fig 7a", "mean per-rack flow", 26.0,
                  profile.mean_flow_per_rack_gpm, "GPM"),
    ]
    print("\n" + format_table(rows, "Fig 7 — rack coolant telemetry"))

    assert 0.05 < profile.flow_spread < 0.18
    assert profile.inlet_spread < 0.02
    assert profile.inlet_spread < profile.outlet_spread < profile.flow_spread
    assert 24.0 < profile.mean_flow_per_rack_gpm < 29.0
