"""Engine throughput: steps-per-second of the vectorized hot path.

Unlike the figure benchmarks (which time an *analysis* over the
canonical dataset), this benchmark times the facility simulation
itself: a 120-day run at hourly cadence and at the 300 s monitor
cadence the paper's predictor consumes.  Results are written to
``BENCH_engine.json`` at the repo root so throughput regressions are
visible in CI diffs.

The assertion floors are far below the measured throughput on a
development machine (>10k steps/s hourly); they exist to catch
order-of-magnitude regressions — e.g. a fallback to the scalar
per-step path — not scheduler jitter.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Dict

from repro import __version__
from repro.simulation import FacilityEngine, MiraScenario

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_engine.json"

#: Minimum acceptable throughput (steps/second).  The pre-vectorization
#: engine measured ~1.8k steps/s; the vectorized engine measures >10k.
MIN_STEPS_PER_SEC = 3000.0


def _timed_run(config) -> Dict[str, float]:
    engine = FacilityEngine(config)
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    steps = result.database.num_samples
    return {
        "dt_s": config.dt_s,
        "steps": steps,
        "seconds": round(elapsed, 4),
        "steps_per_sec": round(steps / elapsed, 1),
        "jobs_completed": result.jobs_completed,
    }


def test_engine_throughput():
    base = MiraScenario.demo(days=120, seed=11)
    default = _timed_run(base)
    hourly = _timed_run(dataclasses.replace(base, dt_s=3600.0))
    monitor = _timed_run(dataclasses.replace(base, dt_s=300.0))

    report = {
        "version": __version__,
        "python": platform.python_version(),
        "scenario": "demo(days=120, seed=11)",
        "default_1800s": default,
        "hourly": hourly,
        "monitor_cadence_300s": monitor,
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print("\nengine throughput (120-day demo):")
    for label, row in (("default", default), ("hourly", hourly), ("300 s", monitor)):
        print(
            f"  {label:>7}: {row['steps']:>6} steps in {row['seconds']:.3f}s"
            f" -> {row['steps_per_sec']:.0f} steps/s"
        )

    assert default["steps"] == 120 * 48
    assert hourly["steps"] == 120 * 24
    assert monitor["steps"] == 120 * 24 * 12
    for row in (default, hourly, monitor):
        assert row["steps_per_sec"] > MIN_STEPS_PER_SEC
