"""Fig 10: the six-year CMF timeline (dedup + yearly histogram)."""

import numpy as np

from repro import constants
from repro.core.failure_analysis import analyze_cmfs
from repro.core.hazard import bathtub_verdict
from repro.core.report import ReportRow, format_table


def test_fig10_cmf_timeline(benchmark, canonical):
    analysis = benchmark(analyze_cmfs, canonical.ras_log, canonical.database)

    rows = [
        ReportRow("Fig 10", "total CMFs over six years",
                  constants.TOTAL_CMFS, analysis.total),
        ReportRow("Fig 10", "fraction of CMFs in 2016",
                  constants.CMF_2016_FRACTION, analysis.fraction_2016),
        ReportRow("Fig 10", "longest quiet gap (paper: > 2 years)",
                  730.0, analysis.longest_quiet_gap_days, "days"),
        ReportRow("Fig 10", "raw storm messages deduplicated",
                  constants.STORM_MESSAGE_SCALE, analysis.failures.raw_count),
    ]
    print("\n" + format_table(rows, "Fig 10 — CMF timeline"))
    print("per-year counts:", dict(sorted(analysis.yearly.items())))
    verdict = bathtub_verdict(analysis.failures.times())
    print(f"bathtub (edge-mass test)? {analysis.is_bathtub()} (paper: not bathtub)")
    print(f"bathtub (Weibull hazard): {verdict.summary()}")

    assert analysis.total == constants.TOTAL_CMFS
    assert abs(analysis.fraction_2016 - constants.CMF_2016_FRACTION) < 0.08
    assert analysis.longest_quiet_gap_days > 365
    assert not analysis.is_bathtub()
    assert not verdict.is_bathtub
