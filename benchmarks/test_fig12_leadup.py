"""Fig 12: coolant telemetry in the six hours before a CMF."""

from repro import constants
from repro.core.leadup import aggregate_leadup
from repro.core.report import ReportRow, format_table
from repro.telemetry.records import Channel


def test_fig12_leadup(benchmark, canonical_windows):
    positives, _ = canonical_windows
    aggregate = benchmark(aggregate_leadup, positives)

    rows = [
        ReportRow("Fig 12b", "deepest inlet sag",
                  -constants.LEADUP_INLET_DROP, aggregate.inlet_min_change),
        ReportRow("Fig 12b", "inlet change at the failure",
                  constants.LEADUP_INLET_RISE, aggregate.inlet_final_change),
        ReportRow("Fig 12c", "deepest outlet sag",
                  -constants.LEADUP_OUTLET_DROP, aggregate.outlet_min_change),
        ReportRow("Fig 12a", "flow stable until (h before CMF)",
                  constants.LEADUP_FLOW_COLLAPSE_HOURS,
                  aggregate.flow_stable_until_h, "h"),
        ReportRow("Fig 12a", "flow change at the failure", -0.65,
                  aggregate.change_at(Channel.FLOW, 0.0)),
    ]
    print("\n" + format_table(rows, "Fig 12 — the lead-up to a CMF"))
    print(f"windows aggregated: {aggregate.windows_used}")

    assert -0.09 < aggregate.inlet_min_change < -0.02
    assert 0.02 < aggregate.inlet_final_change < 0.12
    assert -0.09 < aggregate.outlet_min_change < -0.02
    assert aggregate.flow_stable_until_h <= 0.5
    assert aggregate.change_at(Channel.FLOW, 0.0) < -0.3
