"""Fig 13: the NN CMF predictor swept over prediction leads."""

from repro import constants
from repro.core.prediction import evaluate_at_leads
from repro.core.report import ReportRow, format_table


def test_fig13_predictor(benchmark, canonical_windows):
    positives, negatives = canonical_windows

    def sweep():
        return evaluate_at_leads(positives, negatives)

    evaluations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_lead = {e.lead_h: e.report for e in evaluations}

    print(f"\n{'lead':>6}  {'accuracy':>8}  {'precision':>9}  {'recall':>7}  "
          f"{'F1':>6}  {'FPR':>6}")
    for evaluation in evaluations:
        report = evaluation.report
        print(
            f"{evaluation.lead_h:>5.1f}h  {report.accuracy:>8.3f}  "
            f"{report.precision:>9.3f}  {report.recall:>7.3f}  "
            f"{report.f1:>6.3f}  {report.false_positive_rate:>6.3f}"
        )

    rows = [
        ReportRow("Fig 13", "accuracy at 6 h lead",
                  constants.PREDICTOR_ACCURACY_6H, by_lead[6.0].accuracy),
        ReportRow("Fig 13", "accuracy at 30 min lead",
                  constants.PREDICTOR_ACCURACY_30MIN, by_lead[0.5].accuracy),
        ReportRow("Fig 13", "F1 at 30 min lead",
                  constants.PREDICTOR_ACCURACY_30MIN, by_lead[0.5].f1),
        ReportRow("Sec VI-B", "FPR at 6 h lead",
                  constants.PREDICTOR_FPR_6H, by_lead[6.0].false_positive_rate),
        ReportRow("Sec VI-B", "FPR at 30 min lead",
                  constants.PREDICTOR_FPR_30MIN, by_lead[0.5].false_positive_rate),
    ]
    print("\n" + format_table(rows, "Fig 13 — predictor performance"))

    # Shape assertions: high accuracy improving as the CMF approaches.
    assert 0.78 < by_lead[6.0].accuracy < 0.98
    assert by_lead[0.5].accuracy > 0.90
    assert by_lead[0.5].accuracy >= by_lead[6.0].accuracy
    assert by_lead[0.5].false_positive_rate <= by_lead[6.0].false_positive_rate
    assert by_lead[0.5].false_positive_rate < 0.08
