"""Resilience overhead: durable streaming cost and recovery speed.

Times the crash-safety layer over a one-year, 48-rack realization at
hourly cadence:

* **durable streaming** — the full supervised service (rollups
  subscribed, chunked delivery) with and without
  :class:`~repro.service.DurabilityConfig`, so the WAL append per chunk
  plus periodic snapshots show up as a relative overhead on the same
  ingest path :mod:`benchmarks.test_service_throughput` measures, and
* **recovery** — :meth:`~repro.service.LiveOperationsService.recover`
  over the full-year write-ahead log with snapshots disabled
  (``snapshot_every_samples=0``), i.e. the worst case where every
  logged chunk must replay through the rollup store.

Results are written to ``BENCH_resilience.json`` at the repo root.
The gates mirror the acceptance criteria: durability may cost at most
``MAX_DURABLE_OVERHEAD`` of chunked throughput (gated on multi-core
machines where the comparison is stable), and WAL replay must restore
at least ``MIN_RECOVERY_SAMPLES_PER_SEC`` samples/s.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro import __version__
from repro.service import (
    DurabilityConfig,
    LiveOperationsService,
    RollupStore,
    ServiceConfig,
    WriteAheadLog,
)
from repro.simulation import FacilityEngine, MiraScenario

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_resilience.json"

#: Durable streaming may cost at most this fraction of plain chunked
#: throughput (WAL append + snapshot pickles per chunk).  Measured:
#: single-digit percent; 20% is the acceptance ceiling.
MAX_DURABLE_OVERHEAD = 0.20
#: ... gated on machines with at least this many cores.
OVERHEAD_GATE_CORES = 4
#: Floor on full-WAL replay through the rollup store, in samples per
#: CPU second (recovery is single-threaded; wall clock on shared
#: runners measures the neighbours).
MIN_RECOVERY_SAMPLES_PER_SEC = 10_000.0

_DAYS = 365
_CHUNK_SIZE = 2048


def _year_result():
    config = MiraScenario.demo(days=_DAYS, seed=17, dt_s=3600.0)
    return FacilityEngine(config).run()


def _service_config(durability=None) -> ServiceConfig:
    return ServiceConfig(
        chunk_size=_CHUNK_SIZE,
        analytics_policy="block",
        durability=durability,
    )


def _stream_best(database, trials: int, durability=None):
    """Best-of-``trials`` full service replays (fresh store each time)."""
    best = None
    for _ in range(trials):
        service = LiveOperationsService(
            database, config=_service_config(durability)
        )
        report = service.run()
        assert report.bus.published == database.num_samples
        if best is None or report.bus.rows_per_sec > best.bus.rows_per_sec:
            best = report
    return best


def test_resilience_throughput():
    result = _year_result()
    database = result.database
    state_root = Path(tempfile.mkdtemp(prefix="repro-resilience-bench-"))
    try:
        # -- durable vs plain chunked streaming --
        plain = _stream_best(database, trials=3)
        durability = DurabilityConfig(
            directory=state_root / "durable",
            # Snapshots disabled: the final-state snapshot would let
            # recovery skip the replay this benchmark exists to time,
            # and the WAL cost alone is the steady-state overhead.
            snapshot_every_samples=0,
        )
        shutil.rmtree(durability.root, ignore_errors=True)
        durable = _stream_best(database, trials=3, durability=durability)
        overhead = 1.0 - durable.bus.rows_per_sec / plain.bus.rows_per_sec
        wal_bytes = durability.wal_path.stat().st_size

        # -- recovery: full-WAL replay, no snapshots --
        # Best-of-5, like the streaming side: recovery is repeatable
        # (the WAL is not consumed), and a single wall-clock sample is
        # hostage to scheduler noise on small shared machines.
        # The gate itself runs on CPU seconds: recovery is
        # single-threaded, and on shared runners wall clock measures the
        # neighbours, not the replay.
        config = _service_config(durability)
        recovered = None
        recovery_s = float("inf")
        recovery_cpu_s = float("inf")
        for _ in range(5):
            if recovered is not None:
                recovered.abort(join_timeout_s=5.0)
            t0 = time.perf_counter()
            c0 = time.process_time()
            recovered = LiveOperationsService.recover(database, config=config)
            recovery_cpu_s = min(recovery_cpu_s, time.process_time() - c0)
            recovery_s = min(recovery_s, time.perf_counter() - t0)
        recovery = recovered.recovery
        # WAL integrity, checked outside the timed region: scan decodes
        # the full log (tens of MB of arrays) and must not be resident
        # while recovery is being timed.
        records, _, torn = WriteAheadLog.scan(durability.wal_path)
        assert not torn
        assert sum(r.num_samples for r in records) == database.num_samples
        del records
        assert recovery.wal_samples == database.num_samples
        assert recovery.component("rollups").samples_replayed == database.num_samples
        recovery_rate = recovery.wal_samples / recovery_cpu_s
        # Correctness, not just speed: the replayed store matches a
        # straight batch build from the database.
        batch = RollupStore.from_database(database)
        assert recovered.rollups.bucket_counts() == batch.bucket_counts()
        recovered.abort(join_timeout_s=5.0)
    finally:
        shutil.rmtree(state_root, ignore_errors=True)

    report: Dict[str, object] = {
        "version": __version__,
        "python": platform.python_version(),
        "scenario": f"demo(days={_DAYS}, seed=17, dt_s=3600)",
        "streaming": {
            "samples": plain.bus.published,
            "chunk_size": _CHUNK_SIZE,
            "plain_samples_per_sec": round(plain.bus.rows_per_sec, 1),
            "durable_samples_per_sec": round(durable.bus.rows_per_sec, 1),
            "durable_overhead": round(overhead, 4),
            "wal_bytes": wal_bytes,
        },
        "recovery": {
            "wal_records": recovery.wal_records,
            "wal_samples": recovery.wal_samples,
            "seconds": round(recovery_s, 4),
            "cpu_seconds": round(recovery_cpu_s, 4),
            "samples_per_sec": round(recovery_rate, 1),
        },
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print("\nresilience (1-year hourly, 48 racks):")
    print(
        f"  streaming: plain {plain.bus.rows_per_sec:.0f} samples/s,"
        f" durable {durable.bus.rows_per_sec:.0f} samples/s"
        f" ({overhead:+.1%} overhead, WAL {wal_bytes / 1e6:.1f}MB)"
    )
    print(
        f"  recovery: {recovery.wal_samples} samples from"
        f" {recovery.wal_records} WAL records in {recovery_s:.3f}s"
        f" wall / {recovery_cpu_s:.3f}s cpu -> {recovery_rate:.0f} samples/s"
    )

    assert recovery_rate > MIN_RECOVERY_SAMPLES_PER_SEC, (
        f"WAL replay only {recovery_rate:.0f} samples/s"
    )
    if (os.cpu_count() or 1) >= OVERHEAD_GATE_CORES:
        assert overhead <= MAX_DURABLE_OVERHEAD, (
            f"durability costs {overhead:.1%} of chunked throughput"
        )
