"""Ablation: the Section VI-D claims, quantified.

1. *Threshold-based monitoring is not sufficient*: a conventional
   level-threshold alarm vs the change-feature MLP.
2. *Changes, not levels, carry the signal*: the same MLP trained on
   level features vs change features.
3. A linear model (logistic regression) as a capacity ablation.
"""

import numpy as np

from repro import constants

from repro.core.prediction import (
    build_dataset,
    evaluate_at_leads,
    window_features,
    window_level_features,
)
from repro.core.report import ReportRow, format_table
from repro.ml.baselines import LogisticRegression, ThresholdAlarmDetector
from repro.ml.crossval import cross_validate
from repro.ml.metrics import evaluate_binary
from repro.monitoring.anomaly import CusumConfig, CusumDetector

# The operationally interesting horizon: the paper's whole point is
# warning *early*, and early is exactly where level thresholds fail
# (the precursor levels are still inside the healthy band at 6 h out
# while their *changes* are already distinctive).
LEAD_H = 6.0


def _cusum_window_prediction(window, lead_h):
    """1 if CUSUM alarms at or before the prediction time."""
    detector = CusumDetector(CusumConfig(warmup_samples=12))
    cutoff = window.end_epoch_s - lead_h * 3600.0
    for i, epoch in enumerate(window.epoch_s):
        if epoch > cutoff:
            break
        sample = {ch: float(window.channels[ch][i]) for ch in window.channels}
        if detector.consume(float(epoch), window.rack_id, sample):
            return 1
    return 0


def _run_ablation(positives, negatives):
    change_ds = build_dataset(positives, negatives, LEAD_H)
    level_ds = build_dataset(
        positives, negatives, LEAD_H, feature_fn=window_level_features
    )

    # Conventional threshold alarm on raw levels.
    healthy = level_ds.features[level_ds.labels == 0]
    detector = ThresholdAlarmDetector(k_sigma=3.0).fit(healthy)
    threshold_report = evaluate_binary(
        level_ds.labels, detector.predict(level_ds.features)
    )

    # Logistic regression on change features (5-fold CV).
    def logistic_fit_predict(x_train, y_train, x_test):
        return LogisticRegression().fit(x_train, y_train).predict(x_test)

    logistic_report = cross_validate(
        logistic_fit_predict,
        change_ds.features,
        change_ds.labels,
        rng=np.random.default_rng(0),
    ).summary()

    # The MLP on change and on level features.
    nn_change = evaluate_at_leads(positives, negatives, leads_h=(LEAD_H,))[0].report
    nn_level = evaluate_at_leads(
        positives, negatives, leads_h=(LEAD_H,), feature_fn=window_level_features
    )[0].report

    # CUSUM: the classical untrained change detector.
    cusum_true = np.array([1] * len(positives) + [0] * len(negatives))
    cusum_pred = np.array(
        [_cusum_window_prediction(w, LEAD_H) for w in positives]
        + [_cusum_window_prediction(w, LEAD_H) for w in negatives]
    )
    cusum_report = evaluate_binary(cusum_true, cusum_pred)
    return threshold_report, logistic_report, nn_change, nn_level, cusum_report


def test_ablation_predictor(benchmark, canonical_windows):
    positives, negatives = canonical_windows
    (
        threshold_report,
        logistic_report,
        nn_change,
        nn_level,
        cusum_report,
    ) = benchmark.pedantic(
        _run_ablation, args=(positives, negatives), rounds=1, iterations=1
    )

    print(f"\nAblation at a {LEAD_H:.0f} h prediction lead:")
    print(f"  threshold alarm (levels)       : {threshold_report.as_row()}")
    print(f"  logistic regression (changes)  : {logistic_report.as_row()}")
    print(f"  MLP on level features          : {nn_level.as_row()}")
    print(f"  CUSUM change detector          : {cusum_report.as_row()}")
    print(f"  MLP on change features (paper) : {nn_change.as_row()}")

    rows = [
        ReportRow("Sec VI-D", "threshold-alarm accuracy (insufficient)",
                  0.6, threshold_report.accuracy),
        ReportRow("Sec VI-D", "threshold-alarm recall at 6 h",
                  0.2, threshold_report.recall),
        ReportRow("Sec VI-D", "MLP accuracy on change features",
                  constants.PREDICTOR_ACCURACY_6H, nn_change.accuracy),
    ]
    print("\n" + format_table(rows, "Ablation — thresholds vs change features"))

    # The paper's qualitative claims must hold quantitatively.
    assert nn_change.accuracy > threshold_report.accuracy + 0.1
    assert nn_change.recall > threshold_report.recall + 0.2
    assert nn_change.accuracy >= nn_level.accuracy - 0.02
    assert nn_change.f1 >= logistic_report.f1 - 0.02
    # CUSUM beats fixed level thresholds (it sees changes) but the
    # trained MLP still wins overall.
    assert cusum_report.recall > threshold_report.recall
    assert nn_change.accuracy >= cusum_report.accuracy - 0.02
