"""Incremental analytics: memoized and append-only report rebuilds.

Times :func:`repro.core.experiments.full_report` over the canonical
six-year realization in three regimes against a fresh on-disk section
memo store:

* **cold** — empty store: every section computes and publishes;
* **warm** — unchanged dataset: every section is served from the memo
  (the cost left is the digest's tail-chunk rehash plus verified
  loads);
* **append-delta** — a 90 % prefix was memoized, the final 10 % is
  appended, and the rebuild folds only rows past the cached watermark
  (plus the sections with no incremental form).

Every timed pass is first asserted row-equal to an uncached reference
build, so a speedup can never be bought with a wrong table.  Results
go to ``BENCH_incremental.json``; the warm (>= 5x) and append-delta
(>= 2x) floors hold on any core count — this layer removes work
instead of parallelizing it.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from _incremental_common import measure_cache_passes
from repro import __version__

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_incremental.json"

#: Minimum warm-over-cold speedup (every section memoized).
MIN_WARM_SPEEDUP = 5.0

#: Minimum append-delta-over-cold speedup (only the tail refolds).
MIN_APPEND_SPEEDUP = 2.0


def test_incremental_report(canonical, tmp_path):
    passes = measure_cache_passes(canonical, tmp_path)
    info = canonical.database.digest_info()

    report = {
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "rows": info.rows,
        "digest_chunks": info.num_chunks,
        "chunk_rows": info.chunk_rows,
        **passes,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "min_append_speedup": MIN_APPEND_SPEEDUP,
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nincremental report ({info.rows} rows, {info.num_chunks} chunks):"
        f" cold {passes['cold_seconds']:.3f}s,"
        f" warm {passes['warm_seconds']:.4f}s"
        f" ({passes['warm_speedup']:.1f}x),"
        f" append-delta {passes['append_delta_seconds']:.3f}s"
        f" ({passes['append_speedup']:.1f}x)"
    )

    assert passes["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm rebuild only {passes['warm_speedup']}x over cold "
        f"(floor: {MIN_WARM_SPEEDUP}x)"
    )
    assert passes["append_speedup"] >= MIN_APPEND_SPEEDUP, (
        f"append-delta rebuild only {passes['append_speedup']}x over cold "
        f"(floor: {MIN_APPEND_SPEEDUP}x)"
    )
