"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper against the
canonical six-year dataset and prints a paper-vs-measured table.  The
dataset build is paid once per session; each benchmark times the
*analysis* (the paper's pipeline step), not the simulation.
"""

from __future__ import annotations

import pytest

from repro.simulation import WindowSynthesizer
from repro.simulation.datasets import canonical_dataset


@pytest.fixture(scope="session")
def canonical():
    """The canonical six-year realization (built once per session)."""
    return canonical_dataset()


@pytest.fixture(scope="session")
def canonical_windows(canonical):
    """(positive, negative) 300 s lead-up windows for the full study."""
    synthesizer = WindowSynthesizer(canonical)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    return positives, negatives
