"""Fig 9: rack-to-rack ambient temperature and humidity variation."""

from repro import constants
from repro.core.environment import ambient_spatial
from repro.core.report import ReportRow, format_table
from repro.facility.topology import RackId


def test_fig09_ambient_spatial(benchmark, canonical):
    spatial = benchmark(ambient_spatial, canonical.database)

    temp_delta, humidity_delta = spatial.row_end_effect()
    rows = [
        ReportRow("Fig 9a", "rack DC-temperature spread",
                  constants.RACK_DC_TEMP_SPREAD, spatial.temperature_spread),
        ReportRow("Fig 9b", "rack DC-humidity spread",
                  constants.RACK_DC_HUMIDITY_SPREAD, spatial.humidity_spread),
        ReportRow("Sec V", "row-end temperature excess", 2.0, temp_delta, "F"),
        ReportRow("Sec V", "row-end humidity deficit", -3.0, humidity_delta, "%RH"),
    ]
    print("\n" + format_table(rows, "Fig 9 — ambient spatial variation"))
    print("hotspots:", [r.label for r in spatial.hotspots()], "(paper: (1, 8))")

    assert abs(spatial.humidity_spread - constants.RACK_DC_HUMIDITY_SPREAD) < 0.12
    assert abs(spatial.temperature_spread - constants.RACK_DC_TEMP_SPREAD) < 0.06
    assert temp_delta > 0.5
    assert humidity_delta < -0.5
    assert RackId(*constants.HUMIDITY_HOTSPOT_RACK) in spatial.hotspots()
