"""Fig 14: post-CMF non-CMF failure rates and type distribution."""

from repro import constants
from repro.core.aftermath import analyze_aftermath
from repro.core.report import ReportRow, format_table


def test_fig14_aftermath(benchmark, canonical):
    analysis = benchmark(analyze_aftermath, canonical.ras_log)

    rows = [
        ReportRow("Fig 14a", "rate at 6 h / rate at 3 h (paper: < 0.75)",
                  constants.AFTERMATH_RATE_6H, analysis.rate_6h),
        ReportRow("Fig 14a", "rate at 48 h / rate at 3 h",
                  constants.AFTERMATH_RATE_48H, analysis.rate_48h),
        ReportRow("Fig 14b", "AC-to-DC power share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["ac_dc_power"],
                  analysis.category_mix.get("ac_dc_power", 0.0)),
        ReportRow("Fig 14b", "BQC share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["bqc"],
                  analysis.category_mix.get("bqc", 0.0)),
        ReportRow("Fig 14b", "BQL share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["bql"],
                  analysis.category_mix.get("bql", 0.0)),
        ReportRow("Fig 14b", "process share (paper: < 2 %)",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["process"],
                  analysis.category_mix.get("process", 0.0)),
    ]
    print("\n" + format_table(rows, "Fig 14 — the aftermath of a CMF"))
    print("relative rates:",
          {h: round(v, 3) for h, v in sorted(analysis.relative_rates.items())})

    assert analysis.rate_6h < 0.9
    assert analysis.rate_48h < 0.3
    assert analysis.dominant_category == "ac_dc_power"
    assert abs(analysis.category_mix["ac_dc_power"] - 0.5) < 0.12
    assert analysis.category_mix.get("process", 0.0) < 0.06
