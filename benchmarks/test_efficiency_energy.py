"""Efficiency measures: the energy/PUE accounting (Section II's numbers).

Not a numbered figure, but the paper's efficiency claims are
quantitative: 17,820 kWh/day saved at full free-cooling displacement
and ~2.17 GWh per December-March season.  This benchmark runs the
facility energy model over the canonical dataset and checks the
free-cooling ledger and the liquid-cooling PUE band.
"""

import numpy as np

from repro import constants, timeutil
from repro.cooling.energy import FacilityEnergyModel
from repro.core.report import ReportRow, format_table


def test_efficiency_energy(benchmark, canonical):
    energy = benchmark(lambda: FacilityEnergyModel(canonical).ledger())

    model = FacilityEnergyModel(canonical)
    monthly = model.monthly_free_cooling_kwh()
    winter_season = sum(monthly.get(m, 0.0) for m in constants.FREE_COOLING_MONTHS)
    years = (canonical.end_epoch_s - canonical.start_epoch_s) / timeutil.YEAR_S
    per_season = winter_season / years

    rows = [
        ReportRow("Sec II", "free-cooling savings per Dec-Mar season",
                  constants.FREE_COOLING_KWH_PER_SEASON, per_season, "kWh"),
        ReportRow("Sec II", "average PUE (liquid-cooled band 1.1-1.3)",
                  1.2, energy.average_pue),
        ReportRow("Sec II", "IT share of facility energy", 0.83,
                  energy.breakdown()["it"]),
        ReportRow("Sec II", "winter-minus-summer PUE", -0.08,
                  model.seasonal_pue_swing()),
    ]
    print("\n" + format_table(rows, "Efficiency measures — energy accounting"))
    print("monthly free-cooling kWh:",
          {m: round(v) for m, v in sorted(monthly.items())})

    assert 1.05 < energy.average_pue < 1.35
    assert model.seasonal_pue_swing() < 0.0
    # The realized savings are below the design ceiling (the machine's
    # heat load is ~1/4 of plant capacity) but the same order.
    assert 0.1 * constants.FREE_COOLING_KWH_PER_SEASON < per_season
    assert per_season < constants.FREE_COOLING_KWH_PER_SEASON
