"""Predictor-pipeline throughput: batch featurization and the parallel sweep.

Times the two optimizations behind the Fig 13 pipeline:

1. **Featurization** — the per-window reference loop
   (:func:`window_features` over every window and lead) against
   :func:`batch_change_features`, which extracts the same features in
   one columnar interpolation pass.  The two outputs are asserted
   equal, so the speedup is never bought with a numerics change.
2. **Lead sweep** — ``sweep_leads`` serially (``workers=1``) against
   the process pool (``workers=resolve_workers(None)``), over the
   paper's seven leads with 5-fold CV.  The two reports are asserted
   bit-identical; per-task reseeding makes worker count invisible to
   the results.

Results are written to ``BENCH_ml.json`` at the repo root so CI can
surface regressions.  The parallel-speedup floor is only enforced on
machines with at least four cores (CI runners qualify); on smaller
boxes the numbers are recorded but not gated.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core.prediction import (
    DEFAULT_LEADS_H,
    batch_change_features,
    sweep_leads,
    window_features,
)
from repro.facility.topology import RackId
from repro.parallel import resolve_workers
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_ml.json"

#: Minimum batch-over-loop featurization speedup (measured: >30x).
MIN_FEATURIZATION_SPEEDUP = 5.0

#: Minimum parallel-over-serial sweep speedup, enforced only when the
#: machine has at least this many cores.
MIN_SWEEP_SPEEDUP = 3.0
SWEEP_GATE_CORES = 4


def _synthetic_windows(n_pos, n_neg, seed=0, history_h=12.5, dt_s=300.0):
    rng = np.random.default_rng(seed)
    count = int(round(history_h * 3600.0 / dt_s))
    windows = []
    for i in range(n_pos + n_neg):
        positive = i < n_pos
        end = 1.6e9 + i * 7211.0
        grid = end - dt_s * np.arange(count, -1, -1, dtype="float64")
        rel = grid - end
        channels = {}
        for c, channel in enumerate(PREDICTOR_CHANNELS):
            base = 40.0 + 11.0 * c
            series = (
                base
                + rng.normal(0.0, 0.4, grid.shape)
                + rng.normal(0.0, 0.05) * rel / 3600.0
            )
            if positive:
                series = series * (1.0 + 0.1 * np.exp(rel / 7200.0))
            channels[channel] = series
        windows.append(
            LeadupWindow(
                rack_id=RackId.from_flat_index(i % 48),
                end_epoch_s=end,
                epoch_s=grid,
                channels=channels,
                is_positive=positive,
            )
        )
    return windows[:n_pos], windows[n_pos:]


def test_ml_throughput():
    positives, negatives = _synthetic_windows(220, 220, seed=7)
    all_windows = positives + negatives
    leads = DEFAULT_LEADS_H

    # -- featurization: per-window loop vs one columnar pass --------------
    start = time.perf_counter()
    loop = np.stack(
        [[window_features(w, lead) for w in all_windows] for lead in leads]
    )
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = batch_change_features(all_windows, leads)
    batch_s = time.perf_counter() - start

    np.testing.assert_allclose(batch, loop, rtol=1e-9, atol=1e-9)
    n_extractions = len(all_windows) * len(leads)
    featurization = {
        "windows": len(all_windows),
        "leads": len(leads),
        "loop_seconds": round(loop_s, 4),
        "batch_seconds": round(batch_s, 4),
        "loop_windows_per_sec": round(n_extractions / loop_s, 1),
        "batch_windows_per_sec": round(n_extractions / batch_s, 1),
        "speedup": round(loop_s / batch_s, 2),
    }

    # -- lead sweep: serial vs process pool -------------------------------
    sweep_kwargs = dict(epochs=50, folds=5, seed=5)
    start = time.perf_counter()
    serial = sweep_leads(positives, negatives, workers=1, **sweep_kwargs)
    serial_s = time.perf_counter() - start

    pool_workers = resolve_workers(None)
    start = time.perf_counter()
    parallel = sweep_leads(
        positives, negatives, workers=pool_workers, **sweep_kwargs
    )
    parallel_s = time.perf_counter() - start

    assert [e.lead_h for e in serial] == [e.lead_h for e in parallel]
    for a, b in zip(serial, parallel):
        assert a.cross_validation == b.cross_validation, (
            "parallel sweep diverged from serial"
        )

    sweep = {
        "leads": len(leads),
        "folds": 5,
        "epochs": 50,
        "tasks": len(leads) * 5,
        "workers": pool_workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
    }

    report = {
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "featurization": featurization,
        "lead_sweep": sweep,
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print("\npredictor throughput (440 windows, 7 leads):")
    print(
        f"  featurization: loop {loop_s:.3f}s vs batch {batch_s:.3f}s"
        f" -> {featurization['speedup']:.1f}x"
    )
    print(
        f"  lead sweep: serial {serial_s:.2f}s vs {pool_workers} workers"
        f" {parallel_s:.2f}s -> {sweep['speedup']:.2f}x"
    )

    assert featurization["speedup"] > MIN_FEATURIZATION_SPEEDUP
    if (os.cpu_count() or 1) >= SWEEP_GATE_CORES:
        assert sweep["speedup"] >= MIN_SWEEP_SPEEDUP, (
            f"parallel sweep speedup {sweep['speedup']}x below "
            f"{MIN_SWEEP_SPEEDUP}x on a {os.cpu_count()}-core machine"
        )
