"""Fig 5: day-of-week profiles and the Monday maintenance signature."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.trends import weekday_profile
from repro.telemetry.records import Channel


def _all_profiles(database):
    return {
        "power": weekday_profile(database),
        "utilization": weekday_profile(database, Channel.UTILIZATION),
        "flow": weekday_profile(database, Channel.FLOW),
        "inlet": weekday_profile(database, Channel.INLET_TEMPERATURE),
        "outlet": weekday_profile(database, Channel.OUTLET_TEMPERATURE),
    }


def test_fig05_daily(benchmark, canonical):
    profiles = benchmark(_all_profiles, canonical.database)

    rows = [
        ReportRow("Fig 5a", "non-Monday power increase",
                  constants.NON_MONDAY_POWER_INCREASE,
                  profiles["power"].non_monday_increase),
        ReportRow("Fig 5b", "non-Monday utilization increase",
                  constants.NON_MONDAY_UTILIZATION_INCREASE,
                  profiles["utilization"].non_monday_increase),
        ReportRow("Fig 5c", "non-Monday flow change (paper: none)",
                  0.0, profiles["flow"].non_monday_increase),
        ReportRow("Fig 5d", "non-Monday inlet change (paper: none)",
                  0.0, profiles["inlet"].non_monday_increase),
        ReportRow("Fig 5e", "non-Monday outlet increase",
                  constants.NON_MONDAY_OUTLET_INCREASE,
                  profiles["outlet"].non_monday_increase),
    ]
    print("\n" + format_table(rows, "Fig 5 — weekday profiles"))

    assert profiles["power"].minimum_weekday == constants.MAINTENANCE_WEEKDAY
    assert 0.02 < profiles["power"].non_monday_increase < 0.12
    assert 0.0 < profiles["utilization"].non_monday_increase < 0.05
    assert 0.0 < profiles["outlet"].non_monday_increase < 0.05
    assert abs(profiles["flow"].non_monday_increase) < 0.01
    assert abs(profiles["inlet"].non_monday_increase) < 0.01
