"""Fig 3: coolant flow rate and temperatures, 2014-2019."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.trends import coolant_trends


def test_fig03_coolant_trends(benchmark, canonical):
    trends = benchmark(coolant_trends, canonical.database)

    rows = [
        ReportRow("Fig 3a", "total flow before Theta",
                  constants.FLOW_PRE_THETA_GPM, trends.flow_pre_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "total flow after Theta",
                  constants.FLOW_POST_THETA_GPM, trends.flow_post_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "flow overall std",
                  constants.FLOW_STD_GPM, trends.flow_std_gpm, "GPM"),
        ReportRow("Fig 3b", "inlet coolant mean",
                  constants.INLET_TEMP_F, trends.inlet_mean_f, "F"),
        ReportRow("Fig 3b", "inlet overall std",
                  constants.INLET_TEMP_STD_F, trends.inlet_std_f, "F"),
        ReportRow("Fig 3c", "outlet coolant mean",
                  constants.OUTLET_TEMP_F, trends.outlet_mean_f, "F"),
        ReportRow("Fig 3c", "outlet overall std",
                  constants.OUTLET_TEMP_STD_F, trends.outlet_std_f, "F"),
        ReportRow("Fig 3b", "inlet mean during Theta testing window",
                  constants.INLET_TEMP_F + 1.8, trends.inlet_theta_window_f, "F"),
    ]
    print("\n" + format_table(rows, "Fig 3 — coolant trends"))

    assert abs(trends.flow_pre_theta_gpm - constants.FLOW_PRE_THETA_GPM) < 30
    assert abs(trends.flow_post_theta_gpm - constants.FLOW_POST_THETA_GPM) < 30
    assert abs(trends.inlet_mean_f - constants.INLET_TEMP_F) < 1.5
    assert abs(trends.outlet_mean_f - constants.OUTLET_TEMP_F) < 2.0
    assert trends.inlet_theta_window_f > trends.inlet_outside_theta_f
