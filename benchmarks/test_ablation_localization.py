"""Ablation: CMF *location* prediction (the paper's stated follow-up).

Section VI-B: "operationally it will be even more useful to have a
predictor which even predicts the location of an impending CMF from
the overall coolant telemetry of the datacenter."  This benchmark
trains the localizer on the first half of the canonical failures and
reports top-k localization accuracy over held-out floor snapshots.
"""

import numpy as np

from repro.core.prediction import build_dataset
from repro.core.report import ReportRow, format_table
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, train_classifier
from repro.monitoring.localization import CmfLocalizer, evaluate_localization


def _train_and_evaluate(positives, negatives):
    half = len(positives) // 2
    dataset = build_dataset(positives[:half], negatives[:half], lead_h=2.0)
    rng = np.random.default_rng(11)
    network = NeuralNetwork.mlp(dataset.features.shape[1], (12, 12, 6), rng=rng)
    model = train_classifier(
        network, dataset.features, dataset.labels,
        config=TrainConfig(epochs=50), rng=rng,
    )
    localizer = CmfLocalizer(model)
    holdout_pos, holdout_neg = positives[half:], negatives[half:]
    return [
        evaluate_localization(localizer, holdout_pos, holdout_neg, lead_h=lead)
        for lead in (6.0, 2.0, 0.5)
    ]


def test_ablation_localization(benchmark, canonical_windows):
    positives, negatives = canonical_windows
    reports = benchmark.pedantic(
        _train_and_evaluate, args=(positives, negatives), rounds=1, iterations=1
    )

    print()
    for report in reports:
        print("  " + report.as_row())
    by_lead = {r.lead_h: r for r in reports}
    rows = [
        ReportRow("Sec VI-B", "top-1 localization accuracy at 2 h lead",
                  0.8, by_lead[2.0].top1_accuracy),
        ReportRow("Sec VI-B", "top-3 localization accuracy at 2 h lead",
                  0.95, by_lead[2.0].top3_accuracy),
        ReportRow("Sec VI-B", "mean reciprocal rank at 2 h lead",
                  0.85, by_lead[2.0].mean_reciprocal_rank),
    ]
    print("\n" + format_table(rows, "Ablation — CMF localization"))

    assert by_lead[2.0].top1_accuracy > 0.6
    assert by_lead[2.0].top3_accuracy > 0.8
    assert by_lead[0.5].top1_accuracy >= by_lead[6.0].top1_accuracy - 0.05
