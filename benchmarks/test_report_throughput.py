"""Full-report throughput: the parallel figure pipeline vs serial.

Times :func:`repro.core.experiments.full_report` over the canonical
six-year realization twice — ``workers=1`` (everything in-process)
against the process pool with the zero-copy fan-out (workers reopen
the telemetry archive memory-mapped; only the archive *path* crosses
the process boundary).  The window synthesis for Figs 12/13 — the
dominant serial cost — is sharded across the pool, and the two reports
are asserted identical row for row, so the speedup is never bought
with a numerics change.

Both passes run with the section memo store disabled — this benchmark
measures raw pipeline throughput, and a cache hit would reduce it to
timing disk reads.  The cache regimes (cold / warm / append-delta) are
measured separately and recorded alongside, so the JSON tells the
whole story: on a small box the parallel "speedup" hovers near 1x
(and is meaningless — the report records ``cpu_count`` and gates only
at four-plus cores, with ``parallel_gated`` saying which applied),
while the warm-cache numbers show where rebuild time actually goes.

Results are written to ``BENCH_report.json`` at the repo root so CI
can surface regressions.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from pathlib import Path

from _incremental_common import measure_cache_passes
from repro import __version__
from repro.core.experiments import full_report
from repro.parallel import resolve_workers

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_report.json"

#: Minimum parallel-over-serial report speedup, enforced only when the
#: machine has at least this many cores.
MIN_REPORT_SPEEDUP = 2.0
REPORT_GATE_CORES = 4


def _rows_equal(a, b):
    measured_match = a.measured_value == b.measured_value or (
        math.isnan(a.measured_value) and math.isnan(b.measured_value)
    )
    return (
        measured_match
        and a.figure == b.figure
        and a.metric == b.metric
        and a.paper_value == b.paper_value
        and a.unit == b.unit
    )


def test_report_throughput(canonical, tmp_path):
    start = time.perf_counter()
    serial = full_report(
        canonical, workers=1, synthesize_windows=True, section_cache=False
    )
    serial_s = time.perf_counter() - start

    pool_workers = resolve_workers(None)
    start = time.perf_counter()
    parallel = full_report(
        canonical,
        workers=pool_workers,
        synthesize_windows=True,
        section_cache=False,
    )
    parallel_s = time.perf_counter() - start

    # Identity first: the parallel report must be the serial report.
    assert list(serial) == list(parallel)
    for title in serial:
        assert len(serial[title]) == len(parallel[title]), title
        for a, b in zip(serial[title], parallel[title]):
            assert _rows_equal(a, b), f"{title}: {a} != {b}"

    cache_passes = measure_cache_passes(canonical, tmp_path)

    total_rows = sum(len(rows) for rows in serial.values())
    parallel_gated = (os.cpu_count() or 1) >= REPORT_GATE_CORES
    report = {
        "version": __version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "sections": len(serial),
        "rows": total_rows,
        "workers": pool_workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 2),
        "parallel_gated": parallel_gated,
        "cache_cold_seconds": cache_passes["cold_seconds"],
        "cache_warm_seconds": cache_passes["warm_seconds"],
        "cache_append_delta_seconds": cache_passes["append_delta_seconds"],
        "cache_warm_speedup": cache_passes["warm_speedup"],
        "cache_append_speedup": cache_passes["append_speedup"],
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\nfull report ({len(serial)} sections, {total_rows} rows):"
        f" serial {serial_s:.2f}s vs {pool_workers} workers"
        f" {parallel_s:.2f}s -> {report['speedup']:.2f}x"
        f" (gated: {parallel_gated});"
        f" cache cold {cache_passes['cold_seconds']:.3f}s,"
        f" warm {cache_passes['warm_seconds']:.4f}s,"
        f" append {cache_passes['append_delta_seconds']:.3f}s"
    )

    if parallel_gated:
        assert report["speedup"] >= MIN_REPORT_SPEEDUP, (
            f"parallel report speedup {report['speedup']}x below "
            f"{MIN_REPORT_SPEEDUP}x on a {os.cpu_count()}-core machine"
        )
