"""Fig 2: six-year power and utilization trends with linear fits."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.trends import yearly_trends


def test_fig02_yearly_power_util(benchmark, canonical):
    trends = benchmark(yearly_trends, canonical.database)

    rows = [
        ReportRow("Fig 2a", "system power at start of 2014",
                  constants.POWER_2014_MW, trends.power_start_mw, "MW"),
        ReportRow("Fig 2a", "system power at end of 2019",
                  constants.POWER_2019_MW, trends.power_end_mw, "MW"),
        ReportRow("Fig 2b", "utilization at start of 2014",
                  constants.UTILIZATION_2014, trends.utilization_start),
        ReportRow("Fig 2b", "utilization at end of 2019",
                  constants.UTILIZATION_2019, trends.utilization_end),
    ]
    print("\n" + format_table(rows, "Fig 2 — year-over-year trends"))

    assert trends.power_fit.slope_per_year > 0.0
    assert trends.utilization_fit.slope_per_year > 0.0
    assert abs(trends.power_start_mw - constants.POWER_2014_MW) < 0.2
    assert abs(trends.power_end_mw - constants.POWER_2019_MW) < 0.2
    assert abs(trends.utilization_start - constants.UTILIZATION_2014) < 0.05
    assert abs(trends.utilization_end - constants.UTILIZATION_2019) < 0.05
