"""Fig 6: rack-level power and utilization."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.spatial import rack_power_profile
from repro.facility.topology import RackId


def test_fig06_rack_power_util(benchmark, canonical):
    profile = benchmark(rack_power_profile, canonical.database)

    rows = [
        ReportRow("Fig 6a", "rack power spread (max-min)/min",
                  constants.RACK_POWER_SPREAD, profile.power_spread),
        ReportRow("Fig 6", "corr(rack power, rack utilization)",
                  constants.POWER_UTILIZATION_CORRELATION,
                  profile.power_utilization_correlation),
    ]
    print("\n" + format_table(rows, "Fig 6 — rack power & utilization"))
    print(f"highest power rack       : {profile.highest_power_rack} (paper: (0, D))")
    print(f"highest utilization rack : {profile.highest_utilization_rack} (paper: (0, A))")
    print(f"lowest utilization rack  : {profile.lowest_utilization_rack} (paper: (2, D))")
    print(f"highest rows             : power={profile.highest_power_row} "
          f"util={profile.highest_utilization_row} (paper: row 0)")

    assert profile.highest_power_rack == RackId(*constants.HIGHEST_POWER_RACK)
    assert profile.highest_utilization_rack == RackId(
        *constants.HIGHEST_UTILIZATION_RACK
    )
    assert profile.lowest_utilization_rack == RackId(2, 0xD)
    assert profile.highest_utilization_row == 0
    assert 0.2 < profile.power_utilization_correlation < 0.75
