"""Service-layer throughput: streamed samples/sec and queries/sec.

Times the two hot paths of the live operations stack over a one-year,
48-rack realization at hourly cadence:

* **streaming** — an unpaced :class:`~repro.service.ReplayBus` replay
  with the rollup store subscribed (the ingest path every live sample
  takes), and
* **queries** — a dashboard-shaped workload against the
  :class:`~repro.service.QueryEngine` on the hourly rollup level:
  per-day windows across the year, mixed statistics and scopes,
  served cold (cache misses), warm (cache hits), and concurrently via
  ``serve_many``.

Results are written to ``BENCH_service.json`` at the repo root so
throughput regressions are visible in CI diffs.  The assertion floors
are far below measured throughput on a development machine; they catch
order-of-magnitude regressions (e.g. the cache being bypassed or the
rollup update degenerating to per-cell work), not scheduler jitter.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro import __version__, timeutil
from repro.service import (
    CountingSubscriber,
    Query,
    QueryEngine,
    ReplayBus,
    RollupStore,
    RollupSubscriber,
)
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.records import Channel

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_service.json"

#: Floor on the mixed (cold + warm) hourly query workload.  The warm
#: path is a dict hit (~1 us); even the cold path reduces only a
#: 24 x 48 window.  Measured: well over 100k queries/s.
MIN_QUERIES_PER_SEC = 10_000.0
#: Floor on unpaced replay with the rollup subscriber attached.
MIN_SAMPLES_PER_SEC = 500.0

_DAYS = 365


def _year_result():
    config = MiraScenario.demo(days=_DAYS, seed=17, dt_s=3600.0)
    return FacilityEngine(config).run()


def _dashboard_workload(start_epoch_s: float) -> List[Query]:
    """One year of per-day dashboard queries: stats x scopes x days."""
    queries: List[Query] = []
    for day in range(_DAYS):
        window = (
            start_epoch_s + day * timeutil.DAY_S,
            start_epoch_s + (day + 1) * timeutil.DAY_S,
        )
        stat = ("mean", "max", "coverage")[day % 3]
        scope = ("facility", "rack", "row")[day % 3]
        queries.append(
            Query(
                "aggregate",
                Channel.POWER,
                window[0],
                window[1],
                stat="mean",
                resolution_s=3600.0,
            )
        )
        queries.append(
            Query(
                "aggregate",
                Channel.INLET_TEMPERATURE,
                window[0],
                window[1],
                stat=stat,
                scope=scope,
                rack=day % 48 if scope == "rack" else None,
                row=day % 3 if scope == "row" else None,
                resolution_s=3600.0,
            )
        )
        queries.append(
            Query(
                "series",
                Channel.POWER,
                window[0],
                window[1],
                stat="max",
                resolution_s=3600.0,
            )
        )
    return queries


def test_service_throughput():
    result = _year_result()
    database = result.database

    # -- streaming: unpaced replay with the rollup store riding along --
    store = RollupStore(num_racks=database.num_racks)
    bus = ReplayBus(database)
    bus.subscribe("rollups", RollupSubscriber(store), policy="block")
    counter = CountingSubscriber()
    bus.subscribe("counter", counter, policy="block")
    bus_report = bus.run()
    assert bus_report.published == database.num_samples
    assert counter.received == database.num_samples

    # -- queries: cold, warm, and concurrent over the hourly level --
    engine = QueryEngine(store, cache_size=2048)
    workload = _dashboard_workload(result.start_epoch_s)

    t0 = time.perf_counter()
    for query in workload:
        engine.execute(query)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for query in workload:
        engine.execute(query)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine.serve_many(workload, workers=4)
    concurrent_s = time.perf_counter() - t0

    total = 3 * len(workload)
    mixed_qps = total / (cold_s + warm_s + concurrent_s)
    info = engine.cache_info()
    assert info["hits"] >= 2 * len(workload)

    def _qps(elapsed: float) -> float:
        return round(len(workload) / elapsed, 1)

    report: Dict[str, object] = {
        "version": __version__,
        "python": platform.python_version(),
        "scenario": f"demo(days={_DAYS}, seed=17, dt_s=3600)",
        "streaming": {
            "samples": bus_report.published,
            "seconds": round(bus_report.duration_s, 4),
            "samples_per_sec": round(bus_report.rows_per_sec, 1),
            "achieved_speedup": round(bus_report.achieved_speedup, 1),
        },
        "queries": {
            "workload": len(workload),
            "cold_queries_per_sec": _qps(cold_s),
            "warm_queries_per_sec": _qps(warm_s),
            "concurrent_queries_per_sec": _qps(concurrent_s),
            "mixed_queries_per_sec": round(mixed_qps, 1),
            "cache": info,
        },
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print("\nservice throughput (1-year hourly, 48 racks):")
    print(
        f"  streaming: {bus_report.published} samples in"
        f" {bus_report.duration_s:.3f}s"
        f" -> {bus_report.rows_per_sec:.0f} samples/s"
    )
    print(
        f"  queries: cold {_qps(cold_s):.0f}/s, warm {_qps(warm_s):.0f}/s,"
        f" concurrent {_qps(concurrent_s):.0f}/s, mixed {mixed_qps:.0f}/s"
    )

    assert bus_report.rows_per_sec > MIN_SAMPLES_PER_SEC
    assert mixed_qps > MIN_QUERIES_PER_SEC
