"""Service-layer throughput: streamed samples/sec and queries/sec.

Times the two hot paths of the live operations stack over a one-year,
48-rack realization at hourly cadence:

* **streaming** — an unpaced :class:`~repro.service.ReplayBus` replay
  with the rollup store subscribed (the ingest path every live sample
  takes), measured twice: once with per-sample delivery (the
  compatibility shim, one callback per snapshot) and once with
  columnar chunked delivery (the live default, one vectorized
  ``add_block`` per chunk), and
* **queries** — a dashboard-shaped workload against the
  :class:`~repro.service.QueryEngine` on the hourly rollup level:
  per-day windows across the year, mixed statistics and scopes,
  served cold (cache misses), warm (cache hits), and concurrently via
  ``serve_many``.

Results are written to ``BENCH_service.json`` at the repo root so
throughput regressions are visible in CI diffs.  The assertion floors
are far below measured throughput on a development machine; they catch
order-of-magnitude regressions (e.g. the cache being bypassed or the
rollup update degenerating to per-cell work), not scheduler jitter.
The chunked-over-per-sample speedup is gated only on machines with
enough cores to make the comparison stable.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import __version__, timeutil
from repro.service import (
    CountingSubscriber,
    Query,
    QueryEngine,
    ReplayBus,
    RollupStore,
    RollupSubscriber,
)
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.records import Channel

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_service.json"

#: Floor on the mixed (cold + warm) hourly query workload.  The warm
#: path is a dict hit (~1 us); even the cold path reduces only a
#: 24 x 48 window.  Measured: well over 100k queries/s.
MIN_QUERIES_PER_SEC = 10_000.0
#: Floor on unpaced per-sample replay with the rollup subscriber.
MIN_SAMPLES_PER_SEC = 500.0
#: Required chunked-over-per-sample streaming speedup ...
MIN_CHUNKED_SPEEDUP = 50.0
#: ... gated on machines with at least this many cores.
CHUNK_GATE_CORES = 4

_DAYS = 365
_CHUNK_SIZE = 2048


def _year_result():
    config = MiraScenario.demo(days=_DAYS, seed=17, dt_s=3600.0)
    return FacilityEngine(config).run()


def _stream_once(database, chunk_size: int, delivery: str) -> Tuple[object, object]:
    """One unpaced replay with rollups + counter; returns (report, store)."""
    store = RollupStore(num_racks=database.num_racks)
    bus = ReplayBus(database, chunk_size=chunk_size)
    bus.subscribe(
        "rollups", RollupSubscriber(store), policy="block", delivery=delivery
    )
    counter = CountingSubscriber()
    bus.subscribe("counter", counter, policy="block", delivery=delivery)
    report = bus.run()
    assert report.published == database.num_samples
    assert counter.received == database.num_samples
    assert counter.gaps == 0 and counter.missing == 0
    return report, store


def _stream_best(
    database, chunk_size: int, delivery: str, trials: int
) -> Tuple[object, object]:
    """Best of ``trials`` replays: rides out scheduler noise.

    Streaming a year takes a fraction of a second chunked; on busy or
    single-core runners a single trial can land in a throttled slice
    and under-report by several-fold.  Every trial replays the same
    rows into a fresh store, so keeping the fastest is sound.
    """
    best = None
    for _ in range(trials):
        report, store = _stream_once(database, chunk_size, delivery)
        if best is None or report.rows_per_sec > best[0].rows_per_sec:
            best = (report, store)
    return best


def _dashboard_workload(start_epoch_s: float) -> List[Query]:
    """One year of per-day dashboard queries: stats x scopes x days."""
    queries: List[Query] = []
    for day in range(_DAYS):
        window = (
            start_epoch_s + day * timeutil.DAY_S,
            start_epoch_s + (day + 1) * timeutil.DAY_S,
        )
        stat = ("mean", "max", "coverage")[day % 3]
        scope = ("facility", "rack", "row")[day % 3]
        queries.append(
            Query(
                "aggregate",
                Channel.POWER,
                window[0],
                window[1],
                stat="mean",
                resolution_s=3600.0,
            )
        )
        queries.append(
            Query(
                "aggregate",
                Channel.INLET_TEMPERATURE,
                window[0],
                window[1],
                stat=stat,
                scope=scope,
                rack=day % 48 if scope == "rack" else None,
                row=day % 3 if scope == "row" else None,
                resolution_s=3600.0,
            )
        )
        queries.append(
            Query(
                "series",
                Channel.POWER,
                window[0],
                window[1],
                stat="max",
                resolution_s=3600.0,
            )
        )
    return queries


def test_service_throughput():
    result = _year_result()
    database = result.database

    # -- streaming: per-sample shim vs chunked columnar delivery --
    sample_report, _ = _stream_best(
        database, chunk_size=1, delivery="samples", trials=2
    )
    chunked_report, store = _stream_best(
        database, chunk_size=_CHUNK_SIZE, delivery="chunks", trials=3
    )
    chunked_speedup = (
        chunked_report.rows_per_sec / sample_report.rows_per_sec
        if sample_report.rows_per_sec > 0
        else float("inf")
    )

    # -- queries: cold, warm, and concurrent over the hourly level --
    engine = QueryEngine(store, cache_size=2048)
    workload = _dashboard_workload(result.start_epoch_s)

    t0 = time.perf_counter()
    for query in workload:
        engine.execute(query)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for query in workload:
        engine.execute(query)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine.serve_many(workload, workers=4)
    concurrent_s = time.perf_counter() - t0

    total = 3 * len(workload)
    mixed_qps = total / (cold_s + warm_s + concurrent_s)
    info = engine.cache_info()
    assert info["hits"] >= 2 * len(workload)

    def _qps(elapsed: float) -> float:
        return round(len(workload) / elapsed, 1)

    report: Dict[str, object] = {
        "version": __version__,
        "python": platform.python_version(),
        "scenario": f"demo(days={_DAYS}, seed=17, dt_s=3600)",
        "streaming": {
            "samples": chunked_report.published,
            # The live default: chunked columnar delivery.
            "seconds": round(chunked_report.duration_s, 4),
            "samples_per_sec": round(chunked_report.rows_per_sec, 1),
            "achieved_speedup": round(chunked_report.achieved_speedup, 1),
            "chunk_size": _CHUNK_SIZE,
            "chunks": chunked_report.published_chunks,
            # The compatibility shim, kept for trajectory comparison.
            "per_sample_seconds": round(sample_report.duration_s, 4),
            "per_sample_samples_per_sec": round(sample_report.rows_per_sec, 1),
            "chunked_over_per_sample": round(chunked_speedup, 1),
        },
        "queries": {
            "workload": len(workload),
            "cold_queries_per_sec": _qps(cold_s),
            "warm_queries_per_sec": _qps(warm_s),
            "concurrent_queries_per_sec": _qps(concurrent_s),
            "mixed_queries_per_sec": round(mixed_qps, 1),
            "cache": info,
        },
    }
    _OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print("\nservice throughput (1-year hourly, 48 racks):")
    print(
        f"  streaming (per-sample): {sample_report.published} samples in"
        f" {sample_report.duration_s:.3f}s"
        f" -> {sample_report.rows_per_sec:.0f} samples/s"
    )
    print(
        f"  streaming (chunk={_CHUNK_SIZE}): {chunked_report.published} samples in"
        f" {chunked_report.duration_s:.3f}s"
        f" -> {chunked_report.rows_per_sec:.0f} samples/s"
        f" ({chunked_speedup:.0f}x)"
    )
    print(
        f"  queries: cold {_qps(cold_s):.0f}/s, warm {_qps(warm_s):.0f}/s,"
        f" concurrent {_qps(concurrent_s):.0f}/s, mixed {mixed_qps:.0f}/s"
    )

    assert sample_report.rows_per_sec > MIN_SAMPLES_PER_SEC
    assert chunked_report.rows_per_sec > MIN_SAMPLES_PER_SEC
    assert mixed_qps > MIN_QUERIES_PER_SEC
    if (os.cpu_count() or 1) >= CHUNK_GATE_CORES:
        assert chunked_speedup >= MIN_CHUNKED_SPEEDUP, (
            f"chunked delivery only {chunked_speedup:.1f}x over per-sample"
        )
