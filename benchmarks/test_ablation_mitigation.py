"""Ablation: the checkpoint-on-alert trade study (Section VI-B/D).

The paper argues a CMF predictor is only operationally useful if the
false-positive cost does not eat the savings.  This benchmark sweeps
the alert threshold on the canonical dataset and asserts the paper's
qualitative conclusion: with a ~6 h lead and FPRs in the
single-percent range, proactive checkpointing pays for itself.
"""

import numpy as np

from repro.core.report import ReportRow, format_table
from repro.monitoring import OnlineCmfPredictor, train_online_predictor
from repro.monitoring.mitigation import sweep_thresholds


def _trade_study(canonical, positives, negatives):
    half = len(positives) // 2
    model = train_online_predictor(positives[:half], negatives[:half])
    predictor = OnlineCmfPredictor(model)
    # Subsample the replay to keep the benchmark tractable; the
    # ledger scales per-failure, so the conclusion is unchanged.
    return sweep_thresholds(
        canonical, predictor, thresholds=(0.5, 0.8, 0.95),
        max_positive_windows=80,
    )


def test_ablation_mitigation(benchmark, canonical, canonical_windows):
    positives, negatives = canonical_windows
    ledgers = benchmark.pedantic(
        _trade_study, args=(canonical, positives, negatives), rounds=1, iterations=1
    )

    print(f"\n{'threshold':>9}  {'recall':>6}  {'lead':>6}  "
          f"{'false/rack-day':>14}  {'net core-h':>14}")
    for ledger in ledgers:
        match = ledger.match
        print(
            f"{ledger.alert_policy.threshold:>9.2f}  {match.recall:>6.2f}  "
            f"{match.median_lead_h:>5.1f}h  "
            f"{match.false_alerts_per_rack_day:>14.3f}  "
            f"{ledger.net_saving_core_h:>14,.0f}"
        )

    best = max(ledgers, key=lambda l: l.net_saving_core_h)
    rows = [
        ReportRow("Sec VI-B", "detection recall at best threshold",
                  0.95, best.match.recall),
        ReportRow("Sec VI-B", "median achieved lead", 6.0,
                  best.match.median_lead_h, "h"),
        ReportRow("Sec VI-D", "checkpoint-on-alert is net-positive", 1.0,
                  float(best.worthwhile)),
    ]
    print("\n" + format_table(rows, "Ablation — CMF-aware checkpointing"))

    assert best.match.recall > 0.85
    assert best.match.median_lead_h > 3.0
    assert best.worthwhile
    # Sanity: the saving is bounded by the baseline loss.
    assert best.net_saving_core_h < best.baseline_loss_core_h
