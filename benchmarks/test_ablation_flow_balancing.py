"""Ablation: adaptive flow balancing (the Section IV-B opportunity).

The paper: operators "conservatively increase the coolant flow rate"
because the per-rack split is uneven (up to 11 % spread); it calls for
real-time flow management.  This benchmark runs the adaptive balancer
against the canonical telemetry and quantifies the win: the spread
after trimming, and how much less total flow delivers the same minimum
per-rack share.
"""

import numpy as np

from repro.cooling.balancer import AdaptiveFlowBalancer
from repro.core.report import ReportRow, format_table
from repro.simulation.engine import FacilityEngine


def test_ablation_flow_balancing(benchmark, canonical):
    balancer = AdaptiveFlowBalancer()
    plan = benchmark(balancer.plan, canonical.database)

    # Verify against the ground-truth loop the engine actually used.
    loop = FacilityEngine(canonical.config).loop
    baseline = loop.rack_flows_gpm(1300.0)
    baseline_spread = float((baseline.max() - baseline.min()) / baseline.min())
    _, balanced_spread = balancer.apply_to_loop(loop, plan, 1300.0)
    before_gpm, after_gpm = balancer.required_total_flow(plan)

    rows = [
        ReportRow("Sec IV-B", "flow spread, unbalanced (paper: up to 11 %)",
                  0.11, baseline_spread),
        ReportRow("Sec IV-B", "flow spread after adaptive trimming",
                  0.03, balanced_spread),
        ReportRow("Sec IV-B", "total flow for 24 GPM/rack, unbalanced",
                  before_gpm, before_gpm, "GPM"),
        ReportRow("Sec IV-B", "total flow for 24 GPM/rack, balanced",
                  before_gpm, after_gpm, "GPM"),
    ]
    print("\n" + format_table(rows, "Ablation — adaptive flow balancing"))
    print(f"estimated-vs-planned improvement: {plan.improvement:.0%} spread reduction")
    print(f"pumped-flow saving at equal headroom: "
          f"{(1.0 - after_gpm / before_gpm):.1%}")

    assert balanced_spread < 0.6 * baseline_spread
    assert after_gpm < before_gpm
    assert plan.improvement > 0.3
