"""Shared helpers for the incremental-report benchmarks.

Both ``test_incremental_report.py`` and ``test_report_throughput.py``
time the same cache scenarios — cold (fresh store), warm (every
section served from the memo), and append-delta (fold only the rows
appended past the cached watermark) — so the scenario construction
lives here: a writable value-and-quality clone of a database, the
NaN-tolerant row comparison, and the timed cache passes.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from repro.analytics.incremental import SectionMemoStore
from repro.core.experiments import full_report
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS


def clone_database(database, stop=None) -> EnvironmentalDatabase:
    """A writable value-and-quality copy of ``database[:stop]``."""
    stop = database.num_samples if stop is None else stop
    clone = EnvironmentalDatabase(
        num_racks=database.num_racks, capacity_hint=max(stop, 16)
    )
    clone.append_block(
        np.asarray(database.epoch_s[:stop]).copy(),
        {ch: np.asarray(database.channel(ch).values[:stop]).copy() for ch in CHANNELS},
    )
    clone.flush()
    for ch in CHANNELS:
        clone.overwrite_quality(ch, 0, np.asarray(database.quality(ch)[:stop]).copy())
    return clone


def append_tail(target, source, start: int) -> None:
    """Append ``source``'s rows past ``start`` (values and quality)."""
    epoch = np.asarray(source.epoch_s)
    target.append_block(
        epoch[start:].copy(),
        {
            ch: np.asarray(source.channel(ch).values[start:]).copy()
            for ch in CHANNELS
        },
    )
    target.flush()
    for ch in CHANNELS:
        target.overwrite_quality(
            ch, start, np.asarray(source.quality(ch)[start:]).copy()
        )


def rows_equal(a, b, tol: float = 1e-12) -> bool:
    measured_match = (
        a.measured_value == b.measured_value
        or (math.isnan(a.measured_value) and math.isnan(b.measured_value))
        or math.isclose(a.measured_value, b.measured_value, rel_tol=tol, abs_tol=tol)
    )
    return (
        measured_match
        and a.figure == b.figure
        and a.metric == b.metric
        and a.paper_value == b.paper_value
        and a.unit == b.unit
    )


def assert_reports_equal(reference, candidate, label: str) -> None:
    assert list(reference) == list(candidate), label
    for title in reference:
        assert len(reference[title]) == len(candidate[title]), (label, title)
        for a, b in zip(reference[title], candidate[title]):
            assert rows_equal(a, b), f"{label} / {title}: {a} != {b}"


def measure_cache_passes(result, cache_dir) -> dict:
    """Time the cold / warm / append-delta scenarios for one result.

    Returns a dict of timings (seconds) plus the store counters; every
    pass is asserted row-equal to an uncached reference build first,
    so no timing is ever reported for a wrong report.
    """
    reference = full_report(result, workers=1, section_cache=False)

    store = SectionMemoStore(root=cache_dir / "full", enabled=True)
    start = time.perf_counter()
    cold = full_report(result, workers=1, section_cache=store)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = full_report(result, workers=1, section_cache=store)
    warm_s = time.perf_counter() - start
    assert_reports_equal(reference, cold, "cold")
    assert_reports_equal(reference, warm, "warm")

    # Append-delta: memoize a 90 % prefix, then append the final 10 %
    # and rebuild — only the tail should be folded.
    database = result.database
    cut = int(database.num_samples * 0.9)
    prefix = clone_database(database, stop=cut)
    grown = dataclasses.replace(result, database=prefix)
    append_store = SectionMemoStore(root=cache_dir / "append", enabled=True)
    full_report(grown, workers=1, section_cache=append_store)
    append_tail(prefix, database, cut)
    assert prefix.dataset_digest() == database.dataset_digest()
    start = time.perf_counter()
    appended = full_report(grown, workers=1, section_cache=append_store)
    append_s = time.perf_counter() - start
    assert_reports_equal(reference, appended, "append-delta")
    assert append_store.counters.state_appends == 2

    return {
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "append_delta_seconds": round(append_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "append_speedup": round(cold_s / append_s, 2),
        "counters": store.counters.as_dict(),
    }
