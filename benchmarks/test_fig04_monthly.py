"""Fig 4: monthly medians of power, utilization, and coolant channels."""

from repro import constants
from repro.core.report import ReportRow, format_table
from repro.core.trends import monthly_profile
from repro.telemetry.records import Channel


def _all_profiles(database):
    return {
        "power": monthly_profile(database),
        "utilization": monthly_profile(database, Channel.UTILIZATION),
        "flow": monthly_profile(database, Channel.FLOW),
        "inlet": monthly_profile(database, Channel.INLET_TEMPERATURE),
        "outlet": monthly_profile(database, Channel.OUTLET_TEMPERATURE),
    }


def test_fig04_monthly(benchmark, canonical):
    profiles = benchmark(_all_profiles, canonical.database)

    rows = [
        ReportRow("Fig 4a", "power H2/H1 ratio (paper: visibly > 1)",
                  1.04, profiles["power"].second_half_ratio),
        ReportRow("Fig 4b", "utilization H2/H1 ratio",
                  1.02, profiles["utilization"].second_half_ratio),
        ReportRow("Fig 4c", "flow max change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  profiles["flow"].max_change_from_january),
        ReportRow("Fig 4d", "inlet max change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  profiles["inlet"].max_change_from_january),
        ReportRow("Fig 4e", "outlet max change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  profiles["outlet"].max_change_from_january),
    ]
    print("\n" + format_table(rows, "Fig 4 — monthly medians"))
    print("power by month:",
          {m: round(v, 2) for m, v in sorted(profiles["power"].by_month.items())})

    assert profiles["power"].second_half_ratio > 1.0
    assert profiles["utilization"].second_half_ratio > 1.0
    assert profiles["power"].peak_month in (10, 11, 12)
    for name in ("flow", "inlet", "outlet"):
        assert profiles[name].max_change_from_january < 0.04
