"""Fig 11: per-rack CMF counts and their (non-)correlations."""

from repro import constants
from repro.core.failure_analysis import analyze_cmfs
from repro.core.report import ReportRow, format_table
from repro.facility.topology import RackId


def test_fig11_cmf_per_rack(benchmark, canonical):
    analysis = benchmark(analyze_cmfs, canonical.ras_log, canonical.database)

    rows = [
        ReportRow("Fig 11", "max CMFs on one rack",
                  constants.MOST_CMF_COUNT, analysis.max_rack_count),
        ReportRow("Fig 11", "min CMFs on one rack",
                  constants.FEWEST_CMF_COUNT, analysis.min_rack_count),
        ReportRow("Fig 11", "second-highest rack count (paper: <= 9)",
                  constants.OTHER_RACK_MAX_CMFS, analysis.second_max_rack_count),
        ReportRow("Sec VI-A", "corr(CMFs, utilization)",
                  constants.CMF_UTILIZATION_CORRELATION,
                  analysis.utilization_correlation),
        ReportRow("Sec VI-A", "corr(CMFs, outlet temperature)",
                  constants.CMF_OUTLET_TEMP_CORRELATION,
                  analysis.outlet_correlation),
        ReportRow("Sec VI-A", "corr(CMFs, humidity)",
                  constants.CMF_HUMIDITY_CORRELATION,
                  analysis.humidity_correlation),
    ]
    print("\n" + format_table(rows, "Fig 11 — per-rack CMF distribution"))
    print(f"most-failing rack : {analysis.most_failing_rack} (paper: (1, 8))")
    print(f"least-failing rack: {analysis.least_failing_rack} (paper: (2, 7))")

    assert analysis.most_failing_rack == RackId(*constants.MOST_CMF_RACK)
    assert analysis.least_failing_rack == RackId(*constants.FEWEST_CMF_RACK)
    assert analysis.max_rack_count == constants.MOST_CMF_COUNT
    assert analysis.min_rack_count == constants.FEWEST_CMF_COUNT
    assert analysis.second_max_rack_count <= constants.OTHER_RACK_MAX_CMFS
    # The markers are useless for prediction — correlations are weak.
    assert abs(analysis.utilization_correlation) < 0.40
    assert abs(analysis.outlet_correlation) < 0.40
    assert abs(analysis.humidity_correlation) < 0.40
