"""Failure forensics: from a raw RAS storm log to Figs 10, 11, 14, 15.

Walks the paper's Section VI methodology against the canonical
six-year RAS log:

1. the raw log holds tens of thousands of storm messages; the 6 h
   per-rack dedup recovers the 361 true CMF events,
2. the timeline is non-bathtub (Fig 10) with the 2016 Theta burst,
3. per-rack counts peak at rack (1, 8) and bottom at (2, 7) with no
   correlation to utilization/outlet/humidity (Fig 11),
4. post-CMF non-CMF failure rates decay over 48 h with AC-to-DC power
   conversion failures dominating (Fig 14), landing anywhere on the
   machine (Fig 15).

Run with::

    python examples/failure_forensics.py
"""

import numpy as np

from repro import constants, timeutil
from repro.core.aftermath import analyze_aftermath
from repro.core.failure_analysis import analyze_cmfs
from repro.core.floormap import render_counts
from repro.core.report import ReportRow, format_table
from repro.simulation.datasets import canonical_dataset


def main() -> None:
    print("Building the canonical six-year dataset...")
    result = canonical_dataset()

    raw = len(result.ras_log)
    fatal_cmf_raw = len(result.ras_log.fatal_cmf_events())
    print(f"\nRaw RAS log: {raw} messages ({fatal_cmf_raw} fatal coolant messages)")

    # ---- Fig 10: the dedup and the timeline ------------------------------
    analysis = analyze_cmfs(result.ras_log, result.database)
    print(f"After 6 h per-rack dedup: {analysis.total} true CMF events")
    rows = [
        ReportRow("Fig 10", "total CMFs over six years", constants.TOTAL_CMFS,
                  analysis.total),
        ReportRow("Fig 10", "fraction of CMFs in 2016",
                  constants.CMF_2016_FRACTION, analysis.fraction_2016),
        ReportRow("Fig 10", "longest quiet gap", 730,
                  analysis.longest_quiet_gap_days, "days"),
    ]
    print("\n" + format_table(rows, "Fig 10 — CMF timeline"))
    print("per-year counts:", dict(sorted(analysis.yearly.items())))
    print(f"bathtub-shaped? {analysis.is_bathtub()} (paper: no)")

    # ---- Fig 11: per-rack distribution -------------------------------------
    rows = [
        ReportRow("Fig 11", "max CMFs on one rack", constants.MOST_CMF_COUNT,
                  analysis.max_rack_count),
        ReportRow("Fig 11", "min CMFs on one rack", constants.FEWEST_CMF_COUNT,
                  analysis.min_rack_count),
        ReportRow("Fig 11", "corr(CMFs, utilization)",
                  constants.CMF_UTILIZATION_CORRELATION,
                  analysis.utilization_correlation),
        ReportRow("Fig 11", "corr(CMFs, outlet temperature)",
                  constants.CMF_OUTLET_TEMP_CORRELATION,
                  analysis.outlet_correlation),
        ReportRow("Fig 11", "corr(CMFs, humidity)",
                  constants.CMF_HUMIDITY_CORRELATION,
                  analysis.humidity_correlation),
    ]
    print("\n" + format_table(rows, "Fig 11 — per-rack CMF distribution"))
    print(f"most-failing rack : {analysis.most_failing_rack} (paper: (1, 8))")
    print(f"least-failing rack: {analysis.least_failing_rack} (paper: (2, 7))")
    print()
    print(render_counts(analysis.rack_counts, title="CMFs per rack (the Fig 11 floor map):"))

    # ---- Fig 14: what follows a CMF -----------------------------------------
    aftermath = analyze_aftermath(result.ras_log)
    rows = [
        ReportRow("Fig 14a", "rate at 6 h / rate at 3 h (upper bound 0.75)",
                  constants.AFTERMATH_RATE_6H, aftermath.rate_6h),
        ReportRow("Fig 14a", "rate at 48 h / rate at 3 h",
                  constants.AFTERMATH_RATE_48H, aftermath.rate_48h),
        ReportRow("Fig 14b", "AC-to-DC share of post-CMF failures",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["ac_dc_power"],
                  aftermath.category_mix.get("ac_dc_power", 0.0)),
        ReportRow("Fig 14b", "process-failure share",
                  constants.AFTERMATH_TYPE_DISTRIBUTION["process"],
                  aftermath.category_mix.get("process", 0.0)),
    ]
    print("\n" + format_table(rows, "Fig 14 — post-CMF failure rates and types"))
    print("relative rates by window:",
          {h: round(v, 3) for h, v in sorted(aftermath.relative_rates.items())})
    print("category mix:",
          {k: round(v, 3) for k, v in sorted(aftermath.category_mix.items())})

    # ---- Fig 15: where the followers land --------------------------------------
    print("\nFig 15 — three example storms (followers vs epicenter):")
    for example in aftermath.examples:
        followers = ", ".join(r.label for r in example.follower_racks[:8])
        when = timeutil.from_epoch(example.cmf_epoch_s).date()
        print(
            f"  {when}  epicenter {example.epicenter.label}: "
            f"{len(example.follower_racks)} follow-on failures at {followers}"
            f"{'...' if len(example.follower_racks) > 8 else ''}"
        )
        print(
            f"      max distance from epicenter: {example.max_distance():.1f} "
            f"rack pitches (local? {example.is_local()})"
        )
    print(
        f"\nfraction of storms escaping the epicenter neighbourhood: "
        f"{aftermath.nonlocal_fraction():.2f} (paper: followers land anywhere)"
    )


if __name__ == "__main__":
    main()
