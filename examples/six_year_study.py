"""The six-year monitoring study: Figs 2-9 end to end.

Builds the canonical six-year dataset (the substitution for Mira's
proprietary environmental database) and reruns the paper's temporal,
spatial, and ambient analyses, printing a paper-vs-measured table for
each figure.

Run with::

    python examples/six_year_study.py

The first run simulates six years of telemetry (~1 minute); the
dataset is cached for the rest of the process.
"""

from repro import constants
from repro.core.environment import ambient_spatial, ambient_trends
from repro.core.floormap import render_floor
from repro.core.report import ReportRow, format_table, sparkline
from repro.core.spatial import rack_coolant_profile, rack_power_profile
from repro.core.trends import (
    coolant_trends,
    monthly_profile,
    weekday_profile,
    yearly_trends,
)
from repro.simulation.datasets import canonical_dataset
from repro.telemetry.records import Channel


def main() -> None:
    print("Building the canonical six-year dataset (2014-2019)...")
    result = canonical_dataset()
    db = result.database

    # ---- Fig 2: year-over-year power and utilization -------------------
    trends = yearly_trends(db)
    rows = [
        ReportRow("Fig 2a", "system power, start of 2014", constants.POWER_2014_MW,
                  trends.power_start_mw, "MW"),
        ReportRow("Fig 2a", "system power, end of 2019", constants.POWER_2019_MW,
                  trends.power_end_mw, "MW"),
        ReportRow("Fig 2b", "utilization, start of 2014", constants.UTILIZATION_2014,
                  trends.utilization_start),
        ReportRow("Fig 2b", "utilization, end of 2019", constants.UTILIZATION_2019,
                  trends.utilization_end),
    ]
    print("\n" + format_table(rows, "Fig 2 — year-over-year trends"))
    print("power   " + sparkline(trends.power_mw.values))
    print("util    " + sparkline(trends.utilization.values))

    # ---- Fig 3: coolant flow and temperatures --------------------------
    coolant = coolant_trends(db)
    rows = [
        ReportRow("Fig 3a", "flow before Theta", constants.FLOW_PRE_THETA_GPM,
                  coolant.flow_pre_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "flow after Theta", constants.FLOW_POST_THETA_GPM,
                  coolant.flow_post_theta_gpm, "GPM"),
        ReportRow("Fig 3a", "flow overall std", constants.FLOW_STD_GPM,
                  coolant.flow_std_gpm, "GPM"),
        ReportRow("Fig 3b", "inlet mean", constants.INLET_TEMP_F,
                  coolant.inlet_mean_f, "F"),
        ReportRow("Fig 3b", "inlet overall std", constants.INLET_TEMP_STD_F,
                  coolant.inlet_std_f, "F"),
        ReportRow("Fig 3c", "outlet mean", constants.OUTLET_TEMP_F,
                  coolant.outlet_mean_f, "F"),
        ReportRow("Fig 3c", "outlet overall std", constants.OUTLET_TEMP_STD_F,
                  coolant.outlet_std_f, "F"),
    ]
    print("\n" + format_table(rows, "Fig 3 — coolant trends (Theta joined July 2016)"))
    print("flow    " + sparkline(coolant.total_flow.values))
    print("inlet   " + sparkline(coolant.inlet.values))

    # ---- Fig 4: monthly profiles ----------------------------------------
    power_monthly = monthly_profile(db)
    util_monthly = monthly_profile(db, Channel.UTILIZATION)
    flow_monthly = monthly_profile(db, Channel.FLOW)
    rows = [
        ReportRow("Fig 4a", "power H2/H1 ratio (>1: late-year heavy)", 1.04,
                  power_monthly.second_half_ratio),
        ReportRow("Fig 4b", "utilization H2/H1 ratio", 1.02,
                  util_monthly.second_half_ratio),
        ReportRow("Fig 4c", "flow max monthly change vs January",
                  constants.MONTHLY_COOLANT_MAX_CHANGE,
                  flow_monthly.max_change_from_january),
    ]
    print("\n" + format_table(rows, "Fig 4 — monthly medians (allocation years)"))
    print("monthly power medians:",
          {m: round(v, 2) for m, v in sorted(power_monthly.by_month.items())})

    # ---- Fig 5: day-of-week ------------------------------------------------
    rows = [
        ReportRow("Fig 5a", "non-Monday power increase",
                  constants.NON_MONDAY_POWER_INCREASE,
                  weekday_profile(db).non_monday_increase),
        ReportRow("Fig 5b", "non-Monday utilization increase",
                  constants.NON_MONDAY_UTILIZATION_INCREASE,
                  weekday_profile(db, Channel.UTILIZATION).non_monday_increase),
        ReportRow("Fig 5e", "non-Monday outlet increase",
                  constants.NON_MONDAY_OUTLET_INCREASE,
                  weekday_profile(db, Channel.OUTLET_TEMPERATURE).non_monday_increase),
    ]
    print("\n" + format_table(rows, "Fig 5 — Monday maintenance signature"))

    # ---- Fig 6: rack power and utilization ----------------------------------
    rack_power = rack_power_profile(db)
    rows = [
        ReportRow("Fig 6a", "rack power spread", constants.RACK_POWER_SPREAD,
                  rack_power.power_spread),
        ReportRow("Fig 6", "power/utilization correlation",
                  constants.POWER_UTILIZATION_CORRELATION,
                  rack_power.power_utilization_correlation),
    ]
    print("\n" + format_table(rows, "Fig 6 — rack-level power & utilization"))
    print(f"highest power rack       : {rack_power.highest_power_rack} (paper: (0, D))")
    print(f"highest utilization rack : {rack_power.highest_utilization_rack} (paper: (0, A))")
    print(f"lowest utilization rack  : {rack_power.lowest_utilization_rack} (paper: (2, D))")
    print(f"highest utilization row  : {rack_power.highest_utilization_row} (paper: 0)")
    print()
    print(render_floor(rack_power.power_kw, title="Mean rack power (the Fig 6a floor map):"))

    # ---- Fig 7: rack coolant -----------------------------------------------
    rack_coolant = rack_coolant_profile(db)
    rows = [
        ReportRow("Fig 7a", "rack flow spread", constants.RACK_FLOW_SPREAD,
                  rack_coolant.flow_spread),
        ReportRow("Fig 7b", "rack inlet spread", constants.RACK_INLET_SPREAD,
                  rack_coolant.inlet_spread),
        ReportRow("Fig 7c", "rack outlet spread", constants.RACK_OUTLET_SPREAD,
                  rack_coolant.outlet_spread),
    ]
    print("\n" + format_table(rows, "Fig 7 — rack-level coolant telemetry"))

    # ---- Figs 8-9: ambient conditions ----------------------------------------
    ambient = ambient_trends(db)
    spatial = ambient_spatial(db)
    rows = [
        ReportRow("Fig 8a", "DC temperature std", constants.DC_TEMP_STD_F,
                  ambient.temperature_std_f, "F"),
        ReportRow("Fig 8b", "DC humidity std", constants.DC_HUMIDITY_STD_RH,
                  ambient.humidity_std_rh, "%RH"),
        ReportRow("Fig 9a", "rack DC-temperature spread",
                  constants.RACK_DC_TEMP_SPREAD, spatial.temperature_spread),
        ReportRow("Fig 9b", "rack DC-humidity spread",
                  constants.RACK_DC_HUMIDITY_SPREAD, spatial.humidity_spread),
    ]
    print("\n" + format_table(rows, "Figs 8-9 — ambient temperature & humidity"))
    print("humidity trace  " + sparkline(ambient.humidity.values))
    temp_delta, humidity_delta = spatial.row_end_effect()
    print(f"row-end effect: {temp_delta:+.1f} F warmer, {humidity_delta:+.1f} %RH drier")
    print(f"localized hotspots: {[r.label for r in spatial.hotspots()]} (paper: (1, 8))")


if __name__ == "__main__":
    main()
