"""The CMF predictor: Figs 12-13 plus the threshold-baseline ablation.

Reproduces the machine-learning half of the paper:

1. synthesizes 300 s lead-up windows around every CMF (and matched
   no-failure windows),
2. aggregates the Fig 12 precursor curves,
3. Bayesian-optimizes the MLP architecture (the paper lands on
   12-12-6),
4. sweeps prediction leads from 6 h down to 30 min with 5-fold CV
   (Fig 13), and
5. compares against the conventional threshold-alarm detector and a
   logistic-regression baseline (the Section VI-D discussion).

Run with::

    python examples/cmf_prediction.py
"""

import numpy as np

from repro import constants
from repro.core.leadup import aggregate_leadup
from repro.core.prediction import (
    build_dataset,
    evaluate_at_leads,
    tune_architecture,
    window_features,
    window_level_features,
)
from repro.core.report import ReportRow, format_table
from repro.ml.baselines import LogisticRegression, ThresholdAlarmDetector
from repro.ml.metrics import evaluate_binary
from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer
from repro.telemetry.records import Channel


def main() -> None:
    print("Simulating two years of facility telemetry with failures...")
    result = FacilityEngine(MiraScenario.demo(days=730, seed=5)).run()
    print(f"CMF events in the period: {len(result.schedule.events)}")

    synthesizer = WindowSynthesizer(result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    print(f"Lead-up windows: {len(positives)} positive / {len(negatives)} negative")

    # ---- Fig 12: what the telemetry does before a CMF -------------------
    aggregate = aggregate_leadup(positives)
    rows = [
        ReportRow("Fig 12b", "deepest inlet sag", -constants.LEADUP_INLET_DROP,
                  aggregate.inlet_min_change),
        ReportRow("Fig 12b", "inlet change at the failure",
                  constants.LEADUP_INLET_RISE, aggregate.inlet_final_change),
        ReportRow("Fig 12c", "deepest outlet sag", -constants.LEADUP_OUTLET_DROP,
                  aggregate.outlet_min_change),
        ReportRow("Fig 12a", "flow stable until (h before CMF)",
                  constants.LEADUP_FLOW_COLLAPSE_HOURS,
                  aggregate.flow_stable_until_h, "h"),
    ]
    print("\n" + format_table(rows, "Fig 12 — the lead-up to a CMF"))

    # ---- Bayesian optimization of the architecture ------------------------
    print("\nBayesian-optimizing the hidden layers (paper: 12-12-6)...")
    dataset = build_dataset(positives, negatives, lead_h=3.0)
    hidden, score = tune_architecture(dataset, budget=8, epochs=30)
    print(f"best architecture found: {hidden} (validation accuracy {score:.3f})")

    # ---- Fig 13: the lead sweep -------------------------------------------
    print("\nSweeping prediction leads with 5-fold cross-validation...")
    evaluations = evaluate_at_leads(positives, negatives)
    print(f"{'lead':>6}  {'accuracy':>8}  {'precision':>9}  {'recall':>7}  "
          f"{'F1':>6}  {'FPR':>6}")
    for evaluation in evaluations:
        report = evaluation.report
        print(
            f"{evaluation.lead_h:>5.1f}h  {report.accuracy:>8.3f}  "
            f"{report.precision:>9.3f}  {report.recall:>7.3f}  "
            f"{report.f1:>6.3f}  {report.false_positive_rate:>6.3f}"
        )
    by_lead = {e.lead_h: e.report for e in evaluations}
    rows = [
        ReportRow("Fig 13", "accuracy at 6 h lead",
                  constants.PREDICTOR_ACCURACY_6H, by_lead[6.0].accuracy),
        ReportRow("Fig 13", "accuracy at 30 min lead",
                  constants.PREDICTOR_ACCURACY_30MIN, by_lead[0.5].accuracy),
        ReportRow("Sec VI-B", "FPR at 6 h lead", constants.PREDICTOR_FPR_6H,
                  by_lead[6.0].false_positive_rate),
        ReportRow("Sec VI-B", "FPR at 30 min lead", constants.PREDICTOR_FPR_30MIN,
                  by_lead[0.5].false_positive_rate),
    ]
    print("\n" + format_table(rows, "Fig 13 — predictor headline numbers"))

    # ---- Section VI-D ablation: thresholds vs change features ----------------
    print("\nAblation: conventional threshold alarm vs the change-feature NN")
    lead_h = 4.0
    change_ds = build_dataset(positives, negatives, lead_h)
    level_ds = build_dataset(
        positives, negatives, lead_h, feature_fn=window_level_features
    )
    healthy = level_ds.features[level_ds.labels == 0]
    detector = ThresholdAlarmDetector(k_sigma=3.0).fit(healthy)
    threshold_report = evaluate_binary(level_ds.labels, detector.predict(level_ds.features))
    logistic = LogisticRegression().fit(change_ds.features, change_ds.labels)
    logistic_report = evaluate_binary(
        change_ds.labels, logistic.predict(change_ds.features)
    )
    nn_report = evaluate_at_leads(positives, negatives, leads_h=(lead_h,))[0].report
    print(f"  threshold alarm (levels)     : {threshold_report.as_row()}")
    print(f"  logistic regression (changes): {logistic_report.as_row()}")
    print(f"  MLP (changes, 5-fold CV)     : {nn_report.as_row()}")
    print(
        "\nThe threshold detector misses the change-shaped precursors "
        "(Section VI-D: 'threshold-based monitoring not always sufficient')."
    )


if __name__ == "__main__":
    main()
