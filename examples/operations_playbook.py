"""Operations playbook: live CMF prediction and checkpoint-on-alert.

The paper ends with opportunities — use the coolant telemetry to
predict failures, alert operators, checkpoint jobs, and build
CMF-aware resource management.  This example runs that playbook on a
simulated year:

1. train the streaming predictor on the first half-year of failures,
2. ride along with the second half-year's telemetry, raising alerts
   under a persistence policy,
3. score the alerts (recall, achieved lead time, false alarms per
   rack-day), and
4. fill the checkpoint-on-alert cost/benefit ledger in core-hours.

Run with::

    python examples/operations_playbook.py
"""

from repro import timeutil
from repro.cooling.energy import FacilityEnergyModel
from repro.monitoring import (
    AlertPolicy,
    OnlineCmfPredictor,
    train_online_predictor,
)
from repro.monitoring.mitigation import sweep_thresholds
from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer


def main() -> None:
    print("Simulating one production year with failures...")
    result = FacilityEngine(MiraScenario.demo(days=365, seed=5)).run()
    print(f"CMF events: {len(result.schedule.events)}; "
          f"jobs killed: {result.jobs_killed}")

    synthesizer = WindowSynthesizer(result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    half = len(positives) // 2

    print(f"\nTraining the streaming predictor on {half} failures...")
    model = train_online_predictor(positives[:half], negatives[:half])
    predictor = OnlineCmfPredictor(model)

    print("Replaying telemetry through the alert pipeline...\n")
    ledgers = sweep_thresholds(
        result, predictor, thresholds=(0.5, 0.7, 0.8, 0.9, 0.95)
    )

    print(f"{'threshold':>9}  {'recall':>6}  {'median lead':>11}  "
          f"{'false/rack-day':>14}  {'net core-h saved':>16}")
    for ledger in ledgers:
        match = ledger.match
        print(
            f"{ledger.alert_policy.threshold:>9.2f}  {match.recall:>6.2f}  "
            f"{match.median_lead_h:>10.1f}h  "
            f"{match.false_alerts_per_rack_day:>14.3f}  "
            f"{ledger.net_saving_core_h:>16,.0f}"
        )

    best = max(ledgers, key=lambda l: l.net_saving_core_h)
    print(f"\nBest operating point: threshold {best.alert_policy.threshold}")
    print(f"  work lost without mitigation : {best.baseline_loss_core_h:>12,.0f} core-h")
    print(f"  work lost with checkpoints   : {best.mitigated_loss_core_h:>12,.0f} core-h")
    print(f"  checkpoint overhead paid     : {best.checkpoint_cost_core_h:>12,.0f} core-h")
    print(f"  net saving                   : {best.net_saving_core_h:>12,.0f} core-h")
    print(f"  worthwhile?                  : {best.worthwhile}")

    # Put the saving in context against the facility's energy ledger.
    energy = FacilityEnergyModel(result)
    ledger = energy.ledger()
    print(f"\nFacility context for the year:")
    print(f"  IT energy                    : {ledger.it_kwh:>12,.0f} kWh")
    print(f"  average PUE                  : {ledger.average_pue:>12.3f}")
    print(f"  free-cooling savings         : {ledger.free_cooling_savings_kwh:>12,.0f} kWh")
    hours = (result.end_epoch_s - result.start_epoch_s) / timeutil.HOUR_S
    capacity_core_h = 786_432 * hours
    print(
        f"  net mitigation saving equals {best.net_saving_core_h / capacity_core_h:.2%} "
        f"of the machine's annual core-hours"
    )


if __name__ == "__main__":
    main()
