"""Efficiency measures: free cooling and flow-setpoint what-ifs.

The paper's title promises "efficiency measures": the waterside
economizer that lets Chicago winters cool the machine for free
(17,820 kWh/day at full displacement), and the operators' practice of
conservatively over-provisioning coolant flow.  This example uses the
plant/loop models directly to quantify both:

1. the free-cooling energy avoided per month of a simulated year,
2. what a warmer/colder economizer changeover threshold would do, and
3. the thermal headroom cost of trimming the flow setpoint (the
   Section IV-B opportunity: operators raise flow "to be on the safe
   side").

Run with::

    python examples/efficiency_measures.py
"""

import datetime as dt

import numpy as np

from repro import constants, timeutil
from repro.cooling.loops import CoolingLoop
from repro.cooling.plant import ChilledWaterPlant
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.records import Channel
from repro.weather.chicago import ChicagoWeather


def main() -> None:
    print("Simulating one production year (2015) for the heat-load profile...")
    result = FacilityEngine(MiraScenario.single_year(2015)).run()
    db = result.database
    power = db.channel(Channel.POWER)
    heat_load_kw = np.nansum(power.values, axis=1)  # facility heat to water
    epochs = power.epoch_s

    weather = result.weather
    plant = ChilledWaterPlant(weather)

    # ---- 1. monthly free-cooling savings ---------------------------------
    print("\nFree-cooling savings by month (chiller energy avoided):")
    months = timeutil.months(epochs)
    total = 0.0
    for month in range(1, 13):
        mask = months == month
        savings = plant.free_cooling_savings_kwh(
            epochs[mask], heat_load_kw[mask], dt_s=result.config.dt_s
        )
        total += savings
        bar = "#" * int(savings / 12_000)
        print(f"  {dt.date(2015, month, 1):%b}  {savings:>10,.0f} kWh  {bar}")
    print(f"  total: {total:,.0f} kWh avoided "
          f"(paper's design ceiling: {constants.FREE_COOLING_KWH_PER_SEASON:,} kWh "
          f"over Dec-Mar at 100 % displacement)")

    # ---- 2. economizer threshold sweep --------------------------------------
    print("\nEconomizer changeover threshold sweep (annual chiller energy):")
    for threshold in (44.0, 48.0, 52.0, 56.0, 60.0):
        swept = ChilledWaterPlant(weather, no_free_cooling_above_f=threshold)
        chiller_kwh = float(
            np.sum(swept.chiller_power_kw(epochs, heat_load_kw))
            * result.config.dt_s
            / 3600.0
        )
        supply_excess = float(
            np.mean(swept.supply_temperature_f(epochs)) - swept.supply_setpoint_f
        )
        print(
            f"  changeover at {threshold:4.0f} F: chillers use {chiller_kwh:>10,.0f} kWh, "
            f"mean supply runs {supply_excess:+.2f} F off setpoint"
        )
    print("  -> a warmer changeover saves chiller energy but warms the inlet"
          " (the paper's winter-inlet signature, Fig 4d).")

    # ---- 3. flow-setpoint trim ------------------------------------------------
    print("\nFlow-setpoint trim: thermal headroom vs pumped flow")
    loop = CoolingLoop(rng=np.random.default_rng(1))
    rack_heat = np.nanmean(power.values, axis=0)  # mean per-rack heat, kW
    inlet = loop.rack_inlet_temperatures_f(constants.INLET_TEMP_F)
    for setpoint in (1100.0, 1175.0, 1250.0, 1325.0):
        flows = loop.rack_flows_gpm(setpoint)
        outlet = loop.rack_outlet_temperatures_f(inlet, rack_heat, flows)
        worst = float(outlet.max())
        headroom = 95.0 - worst  # the monitor's fatal outlet threshold
        print(
            f"  setpoint {setpoint:6.0f} GPM: hottest rack outlet {worst:5.1f} F, "
            f"{headroom:4.1f} F below the fatal threshold"
        )
    print(
        "  -> trimming ~10 % of flow keeps double-digit headroom; the paper's"
        " operators over-provision because per-rack flow is uneven (Fig 7a)."
    )


if __name__ == "__main__":
    main()
