"""Trace replay and archival: the data-management workflow.

Facility studies outlive their machines: the telemetry must be
archived, and workloads must be replayable for what-if studies.  This
example exercises that workflow end to end:

1. simulate two months of production and **archive** the telemetry as
   a memory-mapped on-disk store,
2. **export** the executed jobs as a Standard Workload Format (SWF)
   trace,
3. **replay** the trace through a fresh scheduler under a *what-if*
   policy change (no Monday maintenance) and compare utilization,
4. reopen the archive and run an analysis on it without re-simulating.

Run with::

    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import timeutil
from repro.core.trends import coolant_trends
from repro.scheduler.scheduler import (
    MaintenancePolicy,
    MiraScheduler,
    ReservationPolicy,
)
from repro.scheduler.traces import TraceWorkload, export_swf, load_swf
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.archive import TelemetryArchive


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    print(f"working in {workdir}")

    # ---- 1. simulate and archive ----------------------------------------
    print("\nSimulating 60 days of production...")
    result = FacilityEngine(MiraScenario.demo(days=60, seed=17)).run()
    archive_dir = TelemetryArchive.save(result.database, workdir / "telemetry")
    size_mb = sum(f.stat().st_size for f in archive_dir.iterdir()) / 1e6
    print(f"archived {result.database.num_samples} samples "
          f"({size_mb:.1f} MB, memory-mapped on reopen)")

    # ---- 2. export the executed workload ----------------------------------
    # Collect the jobs the engine's scheduler actually ran by re-running
    # the same scheduler configuration standalone.
    engine = FacilityEngine(MiraScenario.demo(days=60, seed=17))
    epoch0 = engine._start
    seen = {}
    for i in range(60 * 24):
        engine.scheduler.step(epoch0 + i * 3600.0, 3600.0)
        for job in engine.scheduler.running_jobs:
            seen.setdefault(job.job_id, job)
    trace_path = workdir / "mira.swf"
    written = export_swf(seen.values(), trace_path, reference_epoch_s=epoch0)
    print(f"\nexported {written} jobs to {trace_path.name} (SWF)")

    # ---- 3. what-if replay --------------------------------------------------
    print("\nReplaying the trace with maintenance disabled (what-if)...")
    trace = load_swf(trace_path)

    def replay(maintenance_probability: float):
        scheduler = MiraScheduler(
            TraceWorkload(trace, start_epoch_s=epoch0),
            rng=np.random.default_rng(1),
            maintenance=MaintenancePolicy(probability=maintenance_probability),
            reservations=ReservationPolicy(rate_per_day=0.0),
        )
        for i in range(60 * 24):
            scheduler.step(epoch0 + i * 3600.0, 3600.0)
        stats = scheduler.stats
        from repro.scheduler.queues import QueueName

        user_delivered = sum(
            stats.queue(q).delivered_core_h
            for q in QueueName
            if q is not QueueName.BURNER
        )
        return user_delivered, stats.total_lost_core_h

    delivered_with, lost_with = replay(0.75)
    delivered_without, lost_without = replay(0.0)
    print(f"  user core-hours delivered, with Monday maintenance : "
          f"{delivered_with:>13,.0f} (lost {lost_with:,.0f})")
    print(f"  user core-hours delivered, without maintenance     : "
          f"{delivered_without:>13,.0f} (lost {lost_without:,.0f})")
    print(f"  maintenance costs {delivered_without - delivered_with:,.0f} "
          f"delivered core-hours on this workload")

    # ---- 4. analyze straight from the archive --------------------------------
    print("\nReopening the archive and analyzing without re-simulation...")
    database = TelemetryArchive.load(archive_dir)
    trends = coolant_trends(database)
    print(f"  inlet {trends.inlet_mean_f:.1f} F, outlet {trends.outlet_mean_f:.1f} F, "
          f"flow sigma {trends.flow_std_gpm:.0f} GPM")
    print("\nDone.")


if __name__ == "__main__":
    main()
