"""Quickstart: simulate a month of the liquid-cooled facility.

Runs a 30-day simulation of the Mira-like facility, then prints the
telemetry a data-center operator would look at first: system power,
utilization, coolant temperatures, and any coolant monitor failures.

Run with::

    python examples/quickstart.py
"""

from repro.core.report import sparkline
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.records import Channel


def main() -> None:
    print("Simulating 30 days of the facility (48 liquid-cooled racks)...")
    config = MiraScenario.demo(days=30, seed=42)
    result = FacilityEngine(config).run()
    db = result.database

    power = db.system_power_mw()
    utilization = db.system_utilization()
    inlet = db.channel(Channel.INLET_TEMPERATURE).across_racks()
    outlet = db.channel(Channel.OUTLET_TEMPERATURE).across_racks()
    flow = db.total_flow_gpm()

    print(f"\nSamples collected : {db.num_samples} x {db.num_racks} racks")
    print(f"Jobs completed    : {result.jobs_completed}")
    print(f"Jobs killed       : {result.jobs_killed}")

    print("\nChannel summary (mean over the month):")
    print(f"  system power      {power.overall_mean():8.2f} MW    {sparkline(power.values)}")
    print(f"  utilization       {utilization.overall_mean():8.3f}       {sparkline(utilization.values)}")
    print(f"  total flow        {flow.overall_mean():8.0f} GPM   {sparkline(flow.values)}")
    print(f"  inlet coolant     {inlet.overall_mean():8.1f} F     {sparkline(inlet.values)}")
    print(f"  outlet coolant    {outlet.overall_mean():8.1f} F     {sparkline(outlet.values)}")

    if result.schedule is not None and result.schedule.events:
        print(f"\nCoolant monitor failures in the month: {len(result.schedule.events)}")
        for event in result.schedule.events[:5]:
            print(
                f"  rack {event.rack_id.label}  reason={event.reason}  "
                f"severity={event.severity:.2f}"
            )
        print(f"Raw RAS messages logged (storms!): {len(result.ras_log)}")
    else:
        print("\nNo coolant monitor failures in this window.")

    print("\nDone.  See examples/six_year_study.py for the full paper reproduction.")


if __name__ == "__main__":
    main()
