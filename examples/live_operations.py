"""Live operations: replay telemetry as a stream and query it.

The paper's operators did not read the environmental database as a
file — telemetry arrived continuously, analytics rode the stream, and
dashboards asked aggregate questions at interactive latency.  This
example rebuilds that loop over a simulated year with sensor faults
injected:

1. train the streaming CMF predictor on the first half of the year's
   failures,
2. replay the second half through the :class:`ReplayBus` at high
   speedup, with the rollup store, the live predictor + alert engine,
   and the CUSUM change detector riding as subscribers under explicit
   backpressure policies,
3. show what each subscriber saw (delivered / dropped / coalesced) and
   the alerts the predictor raised *from the stream*,
4. answer dashboard queries from the multi-resolution rollups through
   the cached :class:`QueryEngine`, and
5. demonstrate the windowed cache invalidation: appending fresh
   samples invalidates "today's" queries while history stays cached.

Run with::

    python examples/live_operations.py
"""

import dataclasses

import numpy as np

from repro import timeutil
from repro.faults import FaultConfig
from repro.monitoring import AlertPolicy, train_online_predictor
from repro.service import (
    LiveOperationsService,
    Query,
    ServiceConfig,
)
from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer
from repro.telemetry.records import Channel


def main() -> None:
    print("Simulating one year with calibrated sensor faults...")
    config = dataclasses.replace(
        MiraScenario.demo(days=365, seed=5), faults=FaultConfig()
    )
    result = FacilityEngine(config).run()
    db = result.database
    print(
        f"  {db.num_samples} snapshots x {db.num_racks} racks, "
        f"{len(result.schedule.events)} CMF events"
    )

    synthesizer = WindowSynthesizer(result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    half = len(positives) // 2
    print(f"\nTraining the streaming predictor on {half} failures...")
    model = train_online_predictor(positives[:half], negatives[:half])

    # Replay the second half of the year live: rollups must see every
    # sample (block), the analytics may shed load (drop_oldest).
    midyear = result.start_epoch_s + 183 * timeutil.DAY_S
    print("Replaying the second half-year through the service stack...")
    service = LiveOperationsService(
        db,
        model=model,
        alert_policy=AlertPolicy(),
        cusum=True,
        config=ServiceConfig(analytics_policy="drop_oldest"),
        start_epoch_s=midyear,
    )
    report = service.run()
    print(
        f"  published {report.bus.published} rows in "
        f"{report.bus.duration_s:.2f}s wall "
        f"(~{report.bus.achieved_speedup:,.0f}x real time)"
    )
    for name, counters in report.bus.subscribers.items():
        print(
            f"  {name:>9}: delivered {counters.delivered}, "
            f"dropped {counters.dropped}, coalesced {counters.coalesced}, "
            f"max lag {counters.max_lag}"
        )
    print(f"  rollup buckets per level: {report.rollup_buckets}")
    print(
        f"  predictor evaluated {report.predictions} rack-samples "
        f"and raised {len(report.alerts)} alerts from the stream"
    )
    for alert in report.alerts[:5]:
        when = timeutil.from_epoch(alert.epoch_s)
        print(
            f"    {when:%Y-%m-%d %H:%M}  rack {alert.rack_id.label}  "
            f"p={alert.probability:.2f}"
        )
    if report.alarms:
        print(f"  CUSUM alarms raised from the stream: {len(report.alarms)}")

    print("\nDashboard queries over the rollups:")
    start, end = midyear, result.end_epoch_s
    engine = service.engine
    mean_power = engine.execute(
        Query("aggregate", Channel.POWER, start, end, stat="mean")
    )
    print(
        f"  half-year mean rack power: {mean_power.value:.1f} kW "
        f"(answered from the {mean_power.resolution_s:.0f}s level)"
    )
    week = engine.execute(
        Query(
            "series",
            Channel.POWER,
            start,
            start + 7 * timeutil.DAY_S,
            stat="mean",
        )
    )
    daily = ", ".join(f"{v:.1f}" for v in week.values)
    print(f"  first-week daily means (kW): {daily}")
    coverage = engine.execute(
        Query("aggregate", Channel.FLOW, start, end, stat="coverage")
    )
    print(f"  flow-sensor coverage under faults: {coverage.value:.4f}")
    hottest = engine.execute(
        Query(
            "aggregate",
            Channel.OUTLET_TEMPERATURE,
            start,
            end,
            stat="max",
            scope="row",
            row=1,
        )
    )
    print(f"  hottest outlet in row R1: {hottest.value:.1f} F")

    # Run the headline query again: served from cache this time.
    engine.execute(Query("aggregate", Channel.POWER, start, end, stat="mean"))
    info = engine.cache_info()
    print(
        f"  cache: {info['hits']} hits / {info['misses']} misses, "
        f"{info['entries']} entries"
    )

    print("\nLive append and windowed invalidation:")
    closed = Query("aggregate", Channel.POWER, start, end, stat="mean")
    live = Query(
        "aggregate", Channel.POWER, start, end + timeutil.DAY_S, stat="mean"
    )
    engine.execute(closed)
    engine.execute(live)
    # A fresh sample lands *after* the closed half-year but inside the
    # still-open live window.
    fresh = {Channel.POWER: np.full(db.num_racks, 60.0)}
    service.rollups.add(end + 300.0, fresh)
    engine.execute(closed)
    engine.execute(live)
    info = engine.cache_info()
    print(
        "  after appending one fresh sample: "
        f"{info['revalidations']} closed-window entries kept, "
        f"{info['invalidations']} live-window entries recomputed"
    )


if __name__ == "__main__":
    main()
