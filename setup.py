"""Setuptools entry point.

Metadata lives here (rather than only in pyproject.toml) so that
editable installs work in offline environments whose pip cannot build
PEP 517 wheels (no `wheel` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.6.0",
    description=(
        "Reproduction of 'Operating Liquid-Cooled Large-Scale Systems' "
        "(HPCA 2021): synthetic Mira facility simulator, telemetry store, "
        "failure models, and the paper's analysis/prediction pipeline"
    ),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
