"""High-resolution lead-up window synthesis."""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.simulation import WindowSynthesizer
from repro.simulation.engine import FacilityEngine
from repro.simulation.scenarios import MiraScenario
from repro.simulation.config import SimulationConfig
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

HOUR = timeutil.HOUR_S


class TestGeometry:
    def test_positive_count_matches_schedule(self, year_result, year_windows):
        positives, _ = year_windows
        eligible = [
            e
            for e in year_result.schedule.events
            if e.epoch_s >= year_result.start_epoch_s + 12.5 * HOUR
        ]
        assert len(positives) == len(eligible)

    def test_grid_cadence_is_monitor_native(self, year_windows):
        positives, _ = year_windows
        window = positives[0]
        assert np.allclose(np.diff(window.epoch_s), constants.MONITOR_SAMPLE_PERIOD_S)

    def test_window_ends_at_event(self, year_result, year_windows):
        positives, _ = year_windows
        event_times = {e.epoch_s for e in year_result.schedule.events}
        for window in positives[:10]:
            assert window.epoch_s[-1] == pytest.approx(window.end_epoch_s)
            assert window.end_epoch_s in event_times

    def test_all_predictor_channels_present(self, year_windows):
        positives, negatives = year_windows
        for window in (positives[0], negatives[0]):
            assert set(window.channels) == set(PREDICTOR_CHANNELS)


class TestSignatureContent:
    def test_positive_flow_collapses_at_end(self, year_windows):
        positives, _ = year_windows
        drops = []
        for window in positives:
            flow = window.channels[Channel.FLOW]
            baseline = window.lead_value(Channel.FLOW, 8 * HOUR)
            drops.append(flow[-1] / baseline)
        assert np.median(drops) < 0.5

    def test_positive_inlet_sags_then_rises(self, year_windows):
        positives, _ = year_windows
        sags = []
        finals = []
        for window in positives:
            baseline = window.lead_value(Channel.INLET_TEMPERATURE, 11 * HOUR)
            sags.append(
                window.lead_value(Channel.INLET_TEMPERATURE, 4 * HOUR) / baseline
            )
            finals.append(
                window.lead_value(Channel.INLET_TEMPERATURE, 0.0) / baseline
            )
        assert np.mean(sags) < 0.97
        assert np.mean(finals) > 1.02

    def test_negative_channels_stay_near_baseline(self, year_windows):
        _, negatives = year_windows
        ratios = []
        for window in negatives:
            baseline = window.lead_value(Channel.FLOW, 11 * HOUR)
            if baseline > 1.0:
                ratios.append(window.lead_value(Channel.FLOW, 0.0) / baseline)
        assert 0.9 < np.median(ratios) < 1.1

    def test_negatives_avoid_cmf_neighbourhoods(self, year_result, year_windows):
        _, negatives = year_windows
        for window in negatives:
            events = year_result.schedule.events_for_rack(window.rack_id)
            for event in events:
                assert abs(event.epoch_s - window.end_epoch_s) >= 24 * HOUR


class TestValidation:
    def test_requires_failure_injection(self):
        config = SimulationConfig(
            start=MiraScenario.demo(days=20).start,
            end=MiraScenario.demo(days=20).end,
            inject_failures=False,
        )
        result = FacilityEngine(config).run()
        with pytest.raises(ValueError):
            WindowSynthesizer(result)

    def test_bad_geometry_rejected(self, year_result):
        with pytest.raises(ValueError):
            WindowSynthesizer(year_result, dt_s=0.0)
        with pytest.raises(ValueError):
            WindowSynthesizer(year_result, dt_s=300.0, history_s=100.0)

    def test_value_interpolation(self, year_windows):
        positives, _ = year_windows
        window = positives[0]
        mid = (window.epoch_s[0] + window.epoch_s[-1]) / 2.0
        value = window.value_at(Channel.POWER, mid)
        assert np.isfinite(value)
