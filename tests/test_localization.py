"""CMF localization (the paper's stated follow-up)."""

import numpy as np
import pytest

from repro.core.prediction import build_dataset
from repro.facility.topology import RackId
from repro.ml.network import NeuralNetwork
from repro.ml.train import TrainConfig, train_classifier
from repro.monitoring.localization import (
    CmfLocalizer,
    evaluate_localization,
)


@pytest.fixture(scope="module")
def localizer(year_windows):
    positives, negatives = year_windows
    half = len(positives) // 2
    dataset = build_dataset(positives[:half], negatives[:half], lead_h=2.0)
    rng = np.random.default_rng(11)
    network = NeuralNetwork.mlp(dataset.features.shape[1], (12, 12, 6), rng=rng)
    model = train_classifier(
        network, dataset.features, dataset.labels,
        config=TrainConfig(epochs=50), rng=rng,
    )
    return CmfLocalizer(model)


@pytest.fixture(scope="module")
def holdout(year_windows):
    positives, negatives = year_windows
    half = len(positives) // 2
    return positives[half:], negatives[half:]


class TestRanking:
    def test_failing_rack_ranked_first(self, localizer, holdout):
        positives, negatives = holdout
        target = positives[0]
        floor = {w.rack_id: w for w in negatives if w.rack_id != target.rack_id}
        floor = dict(list(floor.items())[:11])
        floor[target.rack_id] = target
        ranking = localizer.rank_windows(floor, lead_h=2.0)
        assert ranking.rank_of(target.rack_id) <= 3

    def test_ranking_covers_all_racks_given(self, localizer, holdout):
        _, negatives = holdout
        floor = {w.rack_id: w for w in negatives}
        floor = dict(list(floor.items())[:8])
        ranking = localizer.rank_windows(floor, lead_h=2.0)
        assert len(ranking.ranked) == len(floor)

    def test_rank_of_absent_rack(self, localizer, holdout):
        _, negatives = holdout
        floor = {negatives[0].rack_id: negatives[0]}
        ranking = localizer.rank_windows(floor, lead_h=2.0)
        absent = RackId(2, 15) if negatives[0].rack_id != RackId(2, 15) else RackId(0, 0)
        assert ranking.rank_of(absent) == 49

    def test_empty_floor_rejected(self, localizer):
        with pytest.raises(ValueError):
            localizer.rank_windows({}, lead_h=2.0)


class TestEvaluation:
    def test_localization_quality(self, localizer, holdout):
        positives, negatives = holdout
        report = evaluate_localization(
            localizer, positives, negatives, lead_h=2.0
        )
        assert report.top1_accuracy > 0.6
        assert report.top3_accuracy >= report.top1_accuracy
        assert report.top3_accuracy > 0.75
        assert report.mean_reciprocal_rank > 0.6

    def test_false_suspicion_moderate(self, localizer, holdout):
        positives, negatives = holdout
        report = evaluate_localization(
            localizer, positives, negatives, lead_h=2.0
        )
        assert report.false_suspicion_rate < 0.5

    def test_longer_lead_harder(self, localizer, holdout):
        positives, negatives = holdout
        near = evaluate_localization(localizer, positives, negatives, lead_h=1.0)
        far = evaluate_localization(localizer, positives, negatives, lead_h=6.0)
        assert near.top1_accuracy >= far.top1_accuracy - 0.05

    def test_insufficient_pools_rejected(self, localizer, holdout):
        positives, negatives = holdout
        with pytest.raises(ValueError):
            evaluate_localization(localizer, positives, negatives[:3], floor_size=12)
        with pytest.raises(ValueError):
            evaluate_localization(localizer, [], negatives)

    def test_report_renders(self, localizer, holdout):
        positives, negatives = holdout
        report = evaluate_localization(
            localizer, positives[:10], negatives, lead_h=2.0
        )
        assert "top1=" in report.as_row()
