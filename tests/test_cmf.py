"""The CMF schedule and precursor signatures."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil
from repro.facility.topology import RackId
from repro.failures.cmf import (
    CmfSchedule,
    CmfScheduleConfig,
    PrecursorSignature,
    REASON_CONDENSATION,
    REASON_FLOW,
)

HOUR = timeutil.HOUR_S


@pytest.fixture(scope="module")
def schedule():
    return CmfSchedule.generate(np.random.default_rng(17))


class TestScheduleTotals:
    def test_total_events_matches_paper(self, schedule):
        assert len(schedule.events) == constants.TOTAL_CMFS

    def test_rack_extremes_match_fig11(self, schedule):
        counts = schedule.rack_counts()
        most = RackId(*constants.MOST_CMF_RACK).flat_index
        fewest = RackId(*constants.FEWEST_CMF_RACK).flat_index
        assert counts[most] == constants.MOST_CMF_COUNT
        assert counts[fewest] == constants.FEWEST_CMF_COUNT

    def test_no_other_rack_exceeds_nine(self, schedule):
        counts = schedule.rack_counts()
        most = RackId(*constants.MOST_CMF_RACK).flat_index
        others = np.delete(counts, most)
        assert others.max() <= constants.OTHER_RACK_MAX_CMFS

    def test_2016_fraction(self, schedule):
        years = timeutil.years(np.array([e.epoch_s for e in schedule.events]))
        fraction = np.mean(years == 2016)
        assert 0.30 < fraction < 0.50

    def test_quiet_period_empty(self, schedule):
        quiet = schedule.events_between(
            timeutil.to_epoch(constants.CMF_QUIET_START),
            timeutil.to_epoch(constants.CMF_QUIET_END),
        )
        assert len(quiet) == 0

    def test_events_inside_production_period(self, schedule):
        start = timeutil.to_epoch(constants.PRODUCTION_START)
        end = timeutil.to_epoch(constants.PRODUCTION_END)
        for event in schedule.events:
            assert start <= event.epoch_s < end


class TestScheduleStructure:
    def test_events_sorted(self, schedule):
        times = [e.epoch_s for e in schedule.events]
        assert times == sorted(times)

    def test_incidents_spaced_beyond_dedup_window(self, schedule):
        times = sorted(i.epoch_s for i in schedule.incidents)
        gaps = np.diff(times)
        assert gaps.min() >= constants.CMF_DEDUP_WINDOW_S

    def test_incident_sizes_sum_to_total(self, schedule):
        assert sum(i.size for i in schedule.incidents) == constants.TOTAL_CMFS

    def test_incident_racks_distinct(self, schedule):
        for incident in schedule.incidents:
            racks = incident.affected_racks
            assert len(set(racks)) == len(racks)

    def test_first_event_is_epicenter(self, schedule):
        for incident in schedule.incidents:
            assert incident.events[0].is_epicenter
            assert incident.events[0].rack_id == incident.epicenter

    def test_recovery_in_paper_band(self, schedule):
        for event in schedule.events:
            assert 3 * HOUR <= event.recovery_s <= 6 * HOUR

    def test_reasons_valid(self, schedule):
        reasons = {e.reason for e in schedule.events}
        assert reasons <= {REASON_FLOW, REASON_CONDENSATION}
        assert REASON_FLOW in reasons

    def test_severity_in_band(self, schedule):
        for event in schedule.events:
            assert 0.3 <= event.severity <= 1.3

    def test_events_for_rack(self, schedule):
        rack = RackId(*constants.MOST_CMF_RACK)
        events = schedule.events_for_rack(rack)
        assert len(events) == constants.MOST_CMF_COUNT
        assert all(e.rack_id == rack for e in events)

    def test_deterministic(self):
        s1 = CmfSchedule.generate(np.random.default_rng(4))
        s2 = CmfSchedule.generate(np.random.default_rng(4))
        assert [e.epoch_s for e in s1.events] == [e.epoch_s for e in s2.events]


class TestPartialWindows:
    def test_short_window_thins_schedule(self):
        start = timeutil.to_epoch(dt.datetime(2015, 3, 1))
        end = timeutil.to_epoch(dt.datetime(2015, 6, 1))
        schedule = CmfSchedule.generate(np.random.default_rng(2), start, end)
        assert 0 < len(schedule.events) < 60
        for event in schedule.events:
            assert start <= event.epoch_s < end

    def test_window_in_quiet_period_empty(self):
        start = timeutil.to_epoch(dt.datetime(2017, 6, 1))
        end = timeutil.to_epoch(dt.datetime(2017, 9, 1))
        schedule = CmfSchedule.generate(np.random.default_rng(2), start, end)
        assert len(schedule.events) == 0


class TestPrecursorSignature:
    def test_factors_flat_outside_window(self):
        tau = np.array([11 * HOUR, 24 * HOUR])
        assert np.allclose(PrecursorSignature.inlet_factor(tau), 1.0)
        assert np.allclose(PrecursorSignature.outlet_factor(tau), 1.0)
        assert np.allclose(PrecursorSignature.flow_factor(tau), 1.0)

    def test_inlet_shape_matches_fig12(self):
        # Deepest sag around 4 h out, rise at the event.
        sag = float(PrecursorSignature.inlet_factor(4 * HOUR))
        final = float(PrecursorSignature.inlet_factor(0.0))
        assert sag == pytest.approx(1.0 - constants.LEADUP_INLET_DROP, abs=0.005)
        assert final == pytest.approx(1.0 + constants.LEADUP_INLET_RISE, abs=0.005)

    def test_outlet_sag_at_three_hours(self):
        sag = float(PrecursorSignature.outlet_factor(3 * HOUR))
        assert sag == pytest.approx(1.0 - constants.LEADUP_OUTLET_DROP, abs=0.005)

    def test_flow_stable_then_collapses(self):
        assert float(PrecursorSignature.flow_factor(1 * HOUR)) == pytest.approx(1.0)
        assert float(PrecursorSignature.flow_factor(0.0)) < 0.5

    def test_flow_collapse_trips_alarm_threshold(self):
        # 26 GPM collapsing at the event must cross the 10 GPM fatal
        # threshold even for the weakest severity.
        collapsed = 26.0 * float(PrecursorSignature.flow_factor(0.0, amplitude=0.45))
        assert collapsed < 10.0

    def test_severity_scales_amplitude(self):
        strong = float(PrecursorSignature.inlet_factor(4 * HOUR, amplitude=1.0))
        weak = float(PrecursorSignature.inlet_factor(4 * HOUR, amplitude=0.5))
        assert abs(1.0 - weak) == pytest.approx(0.5 * abs(1.0 - strong))

    def test_humidity_only_for_condensation_events(self):
        tau = np.array([HOUR])
        plain = PrecursorSignature.humidity_factor(tau, condensation_triggered=False)
        triggered = PrecursorSignature.humidity_factor(tau, condensation_triggered=True)
        assert plain[0] == 1.0
        assert triggered[0] > 1.0

    def test_negative_tau_flat(self):
        # After the event the signature no longer applies.
        assert float(PrecursorSignature.inlet_factor(-100.0)) == 1.0
