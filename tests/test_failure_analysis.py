"""The CMF dedup methodology and Figs 10-11 statistics."""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.core.failure_analysis import (
    analyze_cmfs,
    deduplicate_cmf_events,
    deduplicate_noncmf_events,
)
from repro.facility.topology import RackId
from repro.telemetry.ras import CMF_CATEGORY, RasEvent, RasLog, Severity


def _cmf(epoch, rack=(0, 0), severity=Severity.FATAL):
    return RasEvent(
        epoch_s=epoch,
        rack_id=RackId(*rack),
        severity=severity,
        category=CMF_CATEGORY,
    )


class TestDedupRule:
    def test_storm_on_one_rack_is_one_failure(self):
        log = RasLog([_cmf(float(t)) for t in range(0, 3000, 30)])
        assert deduplicate_cmf_events(log).count == 1

    def test_separated_events_both_kept(self):
        log = RasLog([_cmf(0.0), _cmf(7 * 3600.0)])
        assert deduplicate_cmf_events(log).count == 2

    def test_window_boundary_exact(self):
        window = float(constants.CMF_DEDUP_WINDOW_S)
        log = RasLog([_cmf(0.0), _cmf(window)])
        assert deduplicate_cmf_events(log).count == 2
        log2 = RasLog([_cmf(0.0), _cmf(window - 1.0)])
        assert deduplicate_cmf_events(log2).count == 1

    def test_per_rack_not_system_wide(self):
        # Eight racks storming together = eight failures (the paper's
        # explicit methodology point).
        events = [_cmf(float(i * 60), rack=(0, i)) for i in range(8)]
        log = RasLog(events)
        assert deduplicate_cmf_events(log).count == 8

    def test_warns_not_counted(self):
        log = RasLog([_cmf(0.0, severity=Severity.WARN)])
        assert deduplicate_cmf_events(log).count == 0

    def test_chained_storm_collapses_from_first(self):
        # Events at 0, 5h, 10h on one rack: the 5h event merges into
        # the first, the 10h one is a new failure (>= 6h from the
        # first *kept* event).
        hours = timeutil.HOUR_S
        log = RasLog([_cmf(0.0), _cmf(5 * hours), _cmf(10 * hours)])
        assert deduplicate_cmf_events(log).count == 2

    def test_noncmf_uses_one_hour_window(self):
        event = RasEvent(0.0, RackId(0, 0), Severity.FATAL, "bqc")
        event2 = RasEvent(1800.0, RackId(0, 0), Severity.FATAL, "bqc")
        event3 = RasEvent(4000.0, RackId(0, 0), Severity.FATAL, "bqc")
        dedup = deduplicate_noncmf_events(RasLog([event, event2, event3]))
        assert dedup.count == 2

    def test_raw_count_recorded(self):
        log = RasLog([_cmf(float(t)) for t in range(0, 300, 30)])
        dedup = deduplicate_cmf_events(log)
        assert dedup.raw_count == 10
        assert dedup.count == 1


class TestAnalysisOnSimulation:
    def test_recovers_schedule_exactly(self, year_result):
        analysis = analyze_cmfs(year_result.ras_log, year_result.database)
        assert analysis.total == len(year_result.schedule.events)

    def test_rack_counts_match_schedule(self, year_result):
        analysis = analyze_cmfs(year_result.ras_log, year_result.database)
        assert np.array_equal(
            analysis.rack_counts, year_result.schedule.rack_counts()
        )

    def test_correlations_are_weak(self, year_result):
        # The paper's Section VI-A finding: CMF locations do not track
        # utilization, outlet temperature, or humidity.
        analysis = analyze_cmfs(year_result.ras_log, year_result.database)
        assert abs(analysis.utilization_correlation) < 0.45
        assert abs(analysis.outlet_correlation) < 0.45
        assert abs(analysis.humidity_correlation) < 0.45

    def test_yearly_histogram_sums_to_total(self, year_result):
        analysis = analyze_cmfs(year_result.ras_log, year_result.database)
        assert sum(analysis.yearly.values()) == analysis.total

    def test_without_database_correlations_nan(self, year_result):
        analysis = analyze_cmfs(year_result.ras_log)
        assert np.isnan(analysis.utilization_correlation)


class TestBathtub:
    def test_edge_concentrated_is_bathtub(self):
        hours = timeutil.HOUR_S
        early = [_cmf(i * 7 * hours, rack=(0, i % 16)) for i in range(10)]
        late = [
            _cmf(1000 * hours + i * 7 * hours, rack=(1, i % 16)) for i in range(10)
        ]
        log = RasLog(early + late)
        analysis = analyze_cmfs(log)
        assert analysis.is_bathtub()

    def test_uniform_is_not_bathtub(self):
        hours = timeutil.HOUR_S
        events = [_cmf(i * 50 * hours, rack=(i % 3, i % 16)) for i in range(40)]
        analysis = analyze_cmfs(RasLog(events))
        assert not analysis.is_bathtub()
