"""End-to-end: calibrated faults through the full hardened pipeline.

The issue's acceptance scenario: inject faults at calibrated rates
(~1 % dropout, ~0.1 % stuck/spike, skew bounded by two sample periods)
into the small dataset and show that

* ingest never raises and the delivered stream is ordered,
* quality masks account for the injected faults,
* headline aggregates stay within tight bands of the clean run, and
* the streaming predictor digests the degraded stream and still fires
  inside precursor windows.
"""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultConfig
from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer
from repro.telemetry.quality import scrub_database
from repro.telemetry.records import CHANNELS, Channel, Quality

SMALL_DAYS = 120
SMALL_SEED = 11


@pytest.fixture(scope="module")
def faulted_result():
    config = dataclasses.replace(
        MiraScenario.demo(days=SMALL_DAYS, seed=SMALL_SEED), faults=FaultConfig()
    )
    return FacilityEngine(config).run()


@pytest.fixture(scope="module")
def online_model(year_windows):
    from repro.monitoring.online import train_online_predictor

    positives, negatives = year_windows
    half = len(positives) // 2
    return train_online_predictor(positives[:half], negatives[:half])


class TestFaultedRealization:
    def test_clean_path_byte_identical_when_faults_off(self, demo_result):
        config = MiraScenario.demo(days=SMALL_DAYS, seed=SMALL_SEED)
        rerun = FacilityEngine(config).run()
        assert np.array_equal(rerun.database.epoch_s, demo_result.database.epoch_s)
        for ch in CHANNELS:
            assert np.array_equal(
                rerun.database.channel(ch).values,
                demo_result.database.channel(ch).values,
                equal_nan=True,
            )

    def test_ingest_survives_and_orders_the_stream(self, faulted_result):
        truth = faulted_result.fault_truth
        db = faulted_result.database
        assert truth is not None
        assert db.num_samples == len(truth.epoch_s) - int(truth.floor_gap.sum())
        assert (np.diff(db.epoch_s) > 0).all()
        assert db.counters.dropped_late_rows == 0
        assert db.counters.duplicate_rows == int(
            (truth.duplicated & ~truth.floor_gap).sum()
        )

    def test_quality_masks_account_for_missing_cells(
        self, faulted_result, demo_result
    ):
        truth = faulted_result.fault_truth
        db = faulted_result.database
        kept = np.flatnonzero(~truth.floor_gap)
        missing = truth.missing_mask()[kept]
        assert np.array_equal(
            truth.epoch_s[kept], np.asarray(db.epoch_s)
        )
        for ch in CHANNELS:
            if not ch.is_sensor:
                continue
            quality = db.quality(ch)
            # The clean simulator never emits NaN, so delivered MISSING
            # cells are exactly the injected missing cells.
            assert np.array_equal(quality == Quality.MISSING, missing)

    def test_scrubber_recovers_injected_corruption(self, faulted_result):
        truth = faulted_result.fault_truth
        db = faulted_result.database
        scrub_database(db)
        kept = np.flatnonzero(~truth.floor_gap)
        for masks, verdicts in (
            (truth.stuck, (Quality.SUSPECT,)),
            (truth.spike, (Quality.SCRUBBED,)),
        ):
            injected = 0
            recovered = 0
            for ch, mask in masks.items():
                detectable = (mask & ~truth.missing_mask())[kept]
                injected += int(detectable.sum())
                quality = db.quality(ch)
                flagged = np.isin(quality, [int(v) for v in verdicts])
                recovered += int((detectable & flagged).sum())
            assert injected > 0
            assert recovered / injected > 0.7

    def test_headline_aggregates_stay_in_bands(self, faulted_result, demo_result):
        clean_db = demo_result.database
        dirty_db = faulted_result.database
        clean_power = clean_db.system_power_mw().values
        dirty_power = dirty_db.system_power_mw().values
        assert np.nanmean(dirty_power) == pytest.approx(
            np.nanmean(clean_power), rel=0.01
        )
        clean_util = clean_db.system_utilization().values
        dirty_util = dirty_db.system_utilization().values
        assert np.nanmean(dirty_util) == pytest.approx(
            np.nanmean(clean_util), rel=0.01
        )
        clean_out = clean_db.channel(Channel.OUTLET_TEMPERATURE).overall_mean()
        dirty_out = dirty_db.channel(Channel.OUTLET_TEMPERATURE).overall_mean()
        assert dirty_out == pytest.approx(clean_out, abs=0.25)
        # Coverage reflects the injected missingness, not a silent 100%.
        coverage = dirty_db.coverage(Channel.FLOW).values.mean()
        assert 0.95 < coverage < 1.0

    def test_trend_analysis_survives_faults(self, faulted_result, demo_result):
        clean = demo_result.database.channel(Channel.INLET_TEMPERATURE).trend()
        dirty = faulted_result.database.channel(Channel.INLET_TEMPERATURE).trend()
        assert dirty.intercept_at_start == pytest.approx(
            clean.intercept_at_start, abs=0.2
        )


class TestPredictorUnderFaults:
    def test_predictor_digests_faulted_windows_and_fires(
        self, faulted_result, online_model
    ):
        from repro.monitoring.online import OnlineCmfPredictor

        synthesizer = WindowSynthesizer(faulted_result)
        positives = synthesizer.positive_windows()
        assert positives, "expected CMF events in the faulted 120-day run"
        predictor = OnlineCmfPredictor(online_model)
        fired = 0
        for window in positives:
            predictor.reset()
            predictions = predictor.consume_window(window)
            assert predictions, "history must fill despite degraded samples"
            if max(p.probability for p in predictions) > 0.9:
                fired += 1
        assert fired / len(positives) >= 0.5
        assert predictor.counters.consumed > 0
