"""Figs 14-15: the post-CMF analysis."""

import numpy as np
import pytest

from repro import constants
from repro.core.aftermath import analyze_aftermath
from repro.facility.topology import RackId
from repro.telemetry.ras import CMF_CATEGORY, RasEvent, RasLog, Severity


@pytest.fixture(scope="module")
def analysis(year_result):
    return analyze_aftermath(year_result.ras_log)


class TestRates:
    def test_first_bucket_normalized_to_one(self, analysis):
        assert analysis.relative_rates[3.0] == pytest.approx(1.0)

    def test_rate_decays_with_lag(self, analysis):
        rates = [analysis.relative_rates[h] for h in sorted(analysis.relative_rates)]
        assert rates[0] == max(rates)
        assert rates[-1] == min(rates)

    def test_six_hour_rate_below_paper_bound(self, analysis):
        # Paper: the 6 h rate is less than 75 % of the 3 h rate.
        assert analysis.rate_6h < 0.9
        assert analysis.rate_6h > 0.3

    def test_48_hour_rate_near_ten_percent(self, analysis):
        # Paper: drops to 10 %.
        assert analysis.rate_48h < 0.3


class TestCategoryMix:
    def test_ac_dc_dominates(self, analysis):
        # Paper: "AC to DC power" is 50 % of post-CMF failures.
        assert analysis.dominant_category == "ac_dc_power"
        assert 0.35 < analysis.category_mix["ac_dc_power"] < 0.65

    def test_process_failures_rare(self, analysis):
        assert analysis.category_mix.get("process", 0.0) < 0.08

    def test_mix_sums_to_one(self, analysis):
        assert sum(analysis.category_mix.values()) == pytest.approx(1.0)


class TestStormSpread:
    def test_examples_extracted(self, analysis):
        assert len(analysis.examples) >= 1
        for example in analysis.examples:
            assert len(example.follower_racks) >= 3

    def test_followers_not_local_to_epicenter(self, analysis):
        # Paper Fig 15: post-CMF failures land anywhere on the system.
        assert analysis.nonlocal_fraction(radius=2.0) > 0.5

    def test_counts_recorded(self, analysis, year_result):
        assert analysis.cmf_count == len(year_result.schedule.events)
        assert analysis.followup_count > 0


class TestValidation:
    def test_no_cmfs_rejected(self):
        log = RasLog(
            [RasEvent(0.0, RackId(0, 0), Severity.FATAL, "bqc")]
        )
        with pytest.raises(ValueError):
            analyze_aftermath(log)

    def test_nonincreasing_buckets_rejected(self, year_result):
        with pytest.raises(ValueError):
            analyze_aftermath(year_result.ras_log, lag_buckets_h=(3.0, 3.0))
