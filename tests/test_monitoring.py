"""The online monitoring stack: streaming predictor, alerts, mitigation."""

import numpy as np
import pytest

from repro import timeutil
from repro.facility.topology import RackId
from repro.monitoring.alerts import Alert, AlertEngine, AlertLog, AlertPolicy
from repro.monitoring.mitigation import (
    CheckpointPolicy,
    evaluate_mitigation,
    sweep_thresholds,
)
from repro.monitoring.online import OnlineCmfPredictor, Prediction, train_online_predictor
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

HOUR = timeutil.HOUR_S


@pytest.fixture(scope="module")
def online_model(year_windows):
    positives, negatives = year_windows
    half = len(positives) // 2
    return train_online_predictor(positives[:half], negatives[:half])


@pytest.fixture(scope="module")
def holdout(year_windows):
    positives, negatives = year_windows
    half = len(positives) // 2
    return positives[half:], negatives[half:]


def _healthy_sample():
    return {
        Channel.FLOW: 26.0,
        Channel.OUTLET_TEMPERATURE: 79.0,
        Channel.INLET_TEMPERATURE: 64.0,
        Channel.POWER: 55.0,
        Channel.DC_TEMPERATURE: 80.0,
        Channel.DC_HUMIDITY: 33.0,
    }


class TestOnlinePredictor:
    def test_not_ready_without_history(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        prediction = predictor.consume(0.0, RackId(0, 0), _healthy_sample())
        assert prediction is None
        assert not predictor.ready(RackId(0, 0))

    def test_ready_after_six_hours(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        prediction = None
        for i in range(80):
            prediction = predictor.consume(
                i * 300.0, RackId(0, 0), _healthy_sample()
            )
        assert prediction is not None
        assert 0.0 <= prediction.probability <= 1.0

    def test_healthy_stream_low_probability(self, online_model, rng):
        predictor = OnlineCmfPredictor(online_model)
        last = None
        for i in range(90):
            sample = {
                ch: v * (1.0 + 0.003 * rng.standard_normal())
                for ch, v in _healthy_sample().items()
            }
            last = predictor.consume(i * 300.0, RackId(1, 1), sample)
        assert last is not None
        assert last.probability < 0.5

    def test_positive_window_fires(self, online_model, holdout):
        positives, _ = holdout
        predictor = OnlineCmfPredictor(online_model)
        predictions = predictor.consume_window(positives[0])
        assert predictions, "expected predictions once history filled"
        final = predictions[-1]
        assert final.probability > 0.9

    def test_missing_channel_rejected_in_strict_mode(self, online_model):
        predictor = OnlineCmfPredictor(online_model, strict=True)
        sample = _healthy_sample()
        del sample[Channel.FLOW]
        with pytest.raises(ValueError):
            predictor.consume(0.0, RackId(0, 0), sample)

    def test_out_of_order_rejected_in_strict_mode(self, online_model):
        predictor = OnlineCmfPredictor(online_model, strict=True)
        predictor.consume(1000.0, RackId(0, 0), _healthy_sample())
        with pytest.raises(ValueError):
            predictor.consume(500.0, RackId(0, 0), _healthy_sample())

    def test_missing_channel_filled_by_carry_forward(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        predictor.consume(0.0, RackId(0, 0), _healthy_sample())
        sample = _healthy_sample()
        del sample[Channel.FLOW]
        sample[Channel.POWER] = float("nan")
        predictor.consume(300.0, RackId(0, 0), sample)
        assert predictor.counters.locf_fills == 2
        assert predictor.counters.dropped_incomplete == 0
        assert predictor.history_span_s(RackId(0, 0)) == 300.0

    def test_incomplete_sample_without_history_dropped(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        sample = _healthy_sample()
        del sample[Channel.FLOW]
        assert predictor.consume(0.0, RackId(0, 0), sample) is None
        assert predictor.counters.dropped_incomplete == 1
        assert predictor.history_span_s(RackId(0, 0)) == 0.0

    def test_stale_carry_forward_refused(self, online_model):
        predictor = OnlineCmfPredictor(
            online_model, locf_staleness_s=600.0, gap_reset_s=10 * HOUR
        )
        predictor.consume(0.0, RackId(0, 0), _healthy_sample())
        sample = _healthy_sample()
        del sample[Channel.FLOW]
        assert predictor.consume(5000.0, RackId(0, 0), sample) is None
        assert predictor.counters.dropped_incomplete == 1
        assert predictor.counters.locf_fills == 0

    def test_late_and_duplicate_dropped_with_counters(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        predictor.consume(1000.0, RackId(0, 0), _healthy_sample())
        assert predictor.consume(500.0, RackId(0, 0), _healthy_sample()) is None
        assert predictor.consume(1000.0, RackId(0, 0), _healthy_sample()) is None
        assert predictor.counters.dropped_late == 1
        assert predictor.counters.dropped_duplicate == 1
        assert predictor.history_span_s(RackId(0, 0)) == 0.0

    def test_large_gap_resets_history(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        for i in range(80):
            predictor.consume(i * 300.0, RackId(0, 0), _healthy_sample())
        assert predictor.ready(RackId(0, 0))
        predictor.consume(80 * 300.0 + 3 * HOUR, RackId(0, 0), _healthy_sample())
        assert predictor.counters.gap_resets == 1
        assert not predictor.ready(RackId(0, 0))
        assert predictor.history_span_s(RackId(0, 0)) == 0.0

    def test_online_agrees_with_offline_features(self, online_model, holdout):
        from repro.core.prediction import window_features

        positives, _ = holdout
        window = positives[0]
        predictor = OnlineCmfPredictor(online_model)
        predictions = predictor.consume_window(window)
        assert predictions
        final = predictions[-1]
        offline = window_features(window, lead_h=0.0)
        streamed = predictor._features(
            predictor._history[window.rack_id], float(window.epoch_s[-1])
        )
        np.testing.assert_allclose(streamed, offline, rtol=1e-9, atol=1e-12)
        offline_probability = float(
            online_model.predict_proba(offline[None, :])[0]
        )
        assert final.probability == pytest.approx(offline_probability, abs=1e-9)

    def test_reset_clears_history(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        for i in range(80):
            predictor.consume(i * 300.0, RackId(0, 0), _healthy_sample())
        assert predictor.ready(RackId(0, 0))
        predictor.reset(RackId(0, 0))
        assert not predictor.ready(RackId(0, 0))

    def test_racks_independent(self, online_model):
        predictor = OnlineCmfPredictor(online_model)
        for i in range(80):
            predictor.consume(i * 300.0, RackId(0, 0), _healthy_sample())
        assert predictor.ready(RackId(0, 0))
        assert not predictor.ready(RackId(2, 5))

    def test_training_requires_both_classes(self, year_windows):
        positives, _ = year_windows
        with pytest.raises(ValueError):
            train_online_predictor(positives, [])


class TestAlertEngine:
    def _prediction(self, epoch, probability, rack=(0, 0)):
        return Prediction(epoch_s=epoch, rack_id=RackId(*rack), probability=probability)

    def test_persistence_required(self):
        engine = AlertEngine(AlertPolicy(threshold=0.8, persistence=3))
        assert engine.process(self._prediction(0.0, 0.9)) is None
        assert engine.process(self._prediction(300.0, 0.9)) is None
        alert = engine.process(self._prediction(600.0, 0.9))
        assert alert is not None

    def test_streak_resets_below_threshold(self):
        engine = AlertEngine(AlertPolicy(threshold=0.8, persistence=2))
        engine.process(self._prediction(0.0, 0.9))
        engine.process(self._prediction(300.0, 0.1))
        assert engine.process(self._prediction(600.0, 0.9)) is None

    def test_cooldown_suppresses_realerts(self):
        engine = AlertEngine(
            AlertPolicy(threshold=0.8, persistence=1, cooldown_s=3600.0)
        )
        assert engine.process(self._prediction(0.0, 0.9)) is not None
        assert engine.process(self._prediction(300.0, 0.9)) is None
        assert engine.process(self._prediction(4000.0, 0.9)) is not None

    def test_racks_tracked_separately(self):
        engine = AlertEngine(AlertPolicy(threshold=0.8, persistence=1))
        assert engine.process(self._prediction(0.0, 0.9, rack=(0, 0))) is not None
        assert engine.process(self._prediction(0.0, 0.9, rack=(1, 1))) is not None

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            AlertPolicy(threshold=1.5)
        with pytest.raises(ValueError):
            AlertPolicy(persistence=0)


class TestAlertMatching:
    def test_detection_and_lead(self, year_result):
        failures = year_result.schedule.events[:3]
        log = AlertLog()
        target = failures[0]
        log.record(
            Alert(
                epoch_s=target.epoch_s - 4 * HOUR,
                rack_id=target.rack_id,
                probability=0.95,
            )
        )
        report = log.match(failures, observation_rack_days=100.0)
        assert report.detected == 1
        assert report.missed == 2
        assert report.false_alerts == 0
        assert report.median_lead_h == pytest.approx(4.0)

    def test_false_alert_counted(self, year_result):
        failures = year_result.schedule.events[:2]
        log = AlertLog()
        log.record(Alert(epoch_s=0.0, rack_id=RackId(0, 0), probability=0.9))
        report = log.match(failures, observation_rack_days=10.0)
        assert report.false_alerts == 1
        assert report.false_alerts_per_rack_day == pytest.approx(0.1)

    def test_realerts_in_leadup_not_false(self, year_result):
        failure = year_result.schedule.events[0]
        log = AlertLog()
        for lead_h in (5.0, 3.0, 1.0):
            log.record(
                Alert(
                    epoch_s=failure.epoch_s - lead_h * HOUR,
                    rack_id=failure.rack_id,
                    probability=0.95,
                )
            )
        report = log.match([failure])
        assert report.detected == 1
        assert report.false_alerts == 0
        assert report.median_lead_h == pytest.approx(5.0)


class TestMitigation:
    def test_ledger_arithmetic(self):
        policy = CheckpointPolicy()
        assert policy.checkpoint_overhead_node_h > 0

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(residual_loss_h=5.0, mean_inflight_loss_h=1.0)

    def test_evaluation_end_to_end(self, year_result, online_model):
        predictor = OnlineCmfPredictor(online_model)
        ledger = evaluate_mitigation(year_result, predictor)
        assert ledger.match.recall > 0.8
        assert ledger.baseline_loss_core_h > 0
        assert ledger.mitigated_loss_core_h < ledger.baseline_loss_core_h
        assert ledger.worthwhile

    def test_sweep_produces_tradeoff(self, year_result, online_model):
        predictor = OnlineCmfPredictor(online_model)
        ledgers = sweep_thresholds(
            year_result, predictor, thresholds=(0.6, 0.95)
        )
        assert len(ledgers) == 2
        # A stricter threshold never raises the false-alert rate much.
        loose, strict = ledgers
        assert (
            strict.match.false_alerts_per_rack_day
            <= loose.match.false_alerts_per_rack_day + 0.05
        )

    def test_requires_failures(self, online_model):
        import datetime as dt

        from repro.simulation import FacilityEngine
        from repro.simulation.config import SimulationConfig

        clean = FacilityEngine(
            SimulationConfig(
                start=dt.datetime(2015, 3, 1),
                end=dt.datetime(2015, 4, 1),
                inject_failures=False,
            )
        ).run()
        predictor = OnlineCmfPredictor(online_model)
        with pytest.raises(ValueError):
            evaluate_mitigation(clean, predictor)
