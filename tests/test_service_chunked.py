"""Chunked columnar delivery: equivalence with per-sample streaming.

The bus publishes :class:`BusChunk` blocks (N timesteps x racks per
channel) and every first-class subscriber consumes them vectorized.
These tests pin the contract that makes that safe: **chunked delivery
is a pure transport optimization** — rollups, predictions, alarms, and
alerts are identical to per-sample delivery at any chunk size (rollup
totals to 1e-9 from re-association; everything else exactly), and the
backpressure counters reconcile in both units (samples and chunks).
"""

import dataclasses

import numpy as np
import pytest

from repro.facility.topology import RackId
from repro.faults import FaultConfig
from repro.monitoring.anomaly import CusumDetector
from repro.monitoring.online import OnlineCmfPredictor
from repro.service import (
    BusChunk,
    CountingSubscriber,
    CusumSubscriber,
    LiveOperationsService,
    Query,
    QueryEngine,
    ReplayBus,
    RollupStore,
    RollupSubscriber,
    ServiceConfig,
)
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.quality import scrub_database
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

_RACKS = 4


def _rows(n, dt_s=300.0, start=0.0):
    """A synthetic source: n whole-floor rows, value == sample index."""
    rows = []
    for i in range(n):
        values = {Channel.POWER: np.full(_RACKS, float(i))}
        rows.append((start + i * dt_s, values, {}))
    return rows


class _StubModel:
    """Deterministic classifier: fixed affine score through a sigmoid.

    Cheap enough to run tens of thousands of single-row inferences,
    and a pure function of the feature vector — so identical features
    imply bit-identical probabilities.
    """

    def predict_proba(self, features):
        features = np.asarray(features, dtype="float64")
        weights = np.sin(np.arange(features.shape[1]) + 1.0)
        return 1.0 / (1.0 + np.exp(-features @ weights))


@pytest.fixture(scope="module")
def stream_result():
    """A small faulted realization: quality masks and NaN cells set."""
    config = dataclasses.replace(
        MiraScenario.demo(days=6, seed=7), faults=FaultConfig()
    )
    result = FacilityEngine(config).run()
    scrub_database(result.database)
    return result


class TestChunkTransport:
    def test_chunks_partition_the_stream(self):
        chunks = []
        bus = ReplayBus(_rows(50), chunk_size=7)
        bus.subscribe("collect", chunks.append, delivery="chunks")
        report = bus.run()
        assert report.published == 50
        assert report.published_chunks == 8
        assert [len(c) for c in chunks] == [7] * 7 + [1]
        seq = 0
        for chunk in chunks:
            assert isinstance(chunk, BusChunk)
            assert chunk.start_seq == seq
            assert chunk.end_seq == seq + len(chunk) - 1
            np.testing.assert_array_equal(
                chunk.values[Channel.POWER][:, 0],
                np.arange(seq, seq + len(chunk), dtype="float64"),
            )
            seq += len(chunk)
        assert seq == 50

    def test_shim_reproduces_per_sample_stream(self):
        """Default delivery over a chunked bus: the exact legacy stream."""
        bus = ReplayBus(_rows(40), chunk_size=16)
        counter = CountingSubscriber(keep_seqs=True)
        bus.subscribe("counter", counter)  # delivery="samples"
        report = bus.run()
        assert report.published == 40
        assert counter.received == 40
        assert counter.seqs == list(range(40))
        assert counter.monotonic
        assert counter.gaps == 0 and counter.missing == 0

    def test_chunk_samples_iterator_matches_per_sample_delivery(self):
        rows = _rows(23)
        baseline = []
        bus = ReplayBus(rows, chunk_size=1)
        bus.subscribe(
            "collect",
            lambda s: baseline.append(
                (s.seq, s.epoch_s, s.values[Channel.POWER].copy())
            ),
        )
        bus.run()

        chunks = []
        bus = ReplayBus(rows, chunk_size=6)
        bus.subscribe("collect", chunks.append, delivery="chunks")
        bus.run()
        unrolled = [s for chunk in chunks for s in chunk.samples()]
        assert len(unrolled) == len(baseline)
        for sample, (seq, epoch, power) in zip(unrolled, baseline):
            assert sample.seq == seq
            assert sample.epoch_s == epoch
            np.testing.assert_array_equal(sample.values[Channel.POWER], power)

    def test_database_chunks_are_readonly_views(self, stream_result):
        """Chunk payloads alias the database columns — no copies."""
        db = stream_result.database
        first = {}

        def grab(chunk):
            if not first:
                first["chunk"] = chunk

        bus = ReplayBus(db, chunk_size=64)
        bus.subscribe("grab", grab, delivery="chunks")
        bus.run()
        chunk = first["chunk"]
        for channel in (Channel.POWER, Channel.INLET_TEMPERATURE):
            block = chunk.values[channel]
            assert not block.flags.writeable
            assert np.shares_memory(block, db.channel(channel).values)

    def test_invalid_chunk_size_and_delivery_rejected(self):
        with pytest.raises(ValueError):
            ReplayBus(_rows(1), chunk_size=0)
        bus = ReplayBus(_rows(1))
        with pytest.raises(ValueError):
            bus.subscribe("bad", CountingSubscriber(), delivery="rows")


class TestRollupBlockEquivalence:
    @pytest.fixture(scope="class")
    def per_sample_store(self, stream_result):
        store = RollupStore(num_racks=stream_result.database.num_racks)
        bus = ReplayBus(stream_result.database, chunk_size=1)
        bus.subscribe("rollups", RollupSubscriber(store), policy="block")
        bus.run()
        return store

    @pytest.mark.parametrize("chunk_size", [7, 64, 256, 5000])
    def test_streamed_rollups_identical(
        self, stream_result, per_sample_store, chunk_size
    ):
        db = stream_result.database
        store = RollupStore(num_racks=db.num_racks)
        bus = ReplayBus(db, chunk_size=chunk_size)
        bus.subscribe(
            "rollups", RollupSubscriber(store), policy="block", delivery="chunks"
        )
        bus.run()
        for ours, baseline in zip(store._levels, per_sample_store._levels):
            assert ours.size == baseline.size
            n = ours.size
            np.testing.assert_array_equal(ours.epoch[:n], baseline.epoch[:n])
            np.testing.assert_array_equal(ours.samples[:n], baseline.samples[:n])
            for channel, buckets in ours.channels.items():
                expect = baseline.channels[channel]
                np.testing.assert_array_equal(
                    buckets.count[:n], expect.count[:n]
                )
                np.testing.assert_array_equal(
                    buckets.usable[:n], expect.usable[:n]
                )
                # Extrema fold in the same order: exactly equal.
                np.testing.assert_array_equal(
                    buckets.minimum[:n], expect.minimum[:n]
                )
                np.testing.assert_array_equal(
                    buckets.maximum[:n], expect.maximum[:n]
                )
                # Totals re-associate once per merged bucket: 1e-9.
                np.testing.assert_allclose(
                    buckets.total[:n], expect.total[:n], rtol=1e-9, atol=1e-9
                )

    def test_out_of_order_block_falls_back_to_per_row(self, rng):
        """A block with internally decreasing epochs still lands right."""
        epochs = np.arange(50, dtype="float64") * 60.0
        rng.shuffle(epochs)
        values = rng.normal(size=(50, _RACKS))
        values[rng.random(size=values.shape) < 0.1] = np.nan

        blocked = RollupStore(num_racks=_RACKS, resolutions_s=(300.0,))
        blocked.add_block(epochs, {Channel.POWER: values})
        rowwise = RollupStore(num_racks=_RACKS, resolutions_s=(300.0,))
        for i, epoch in enumerate(epochs):
            rowwise.add(float(epoch), {Channel.POWER: values[i]})

        ours, expect = blocked._levels[0], rowwise._levels[0]
        assert ours.size == expect.size
        n = ours.size
        np.testing.assert_array_equal(ours.epoch[:n], expect.epoch[:n])
        mine = ours.channels[Channel.POWER]
        theirs = expect.channels[Channel.POWER]
        np.testing.assert_array_equal(mine.count[:n], theirs.count[:n])
        np.testing.assert_array_equal(
            mine.minimum[:n], theirs.minimum[:n]
        )
        np.testing.assert_allclose(
            mine.total[:n], theirs.total[:n], rtol=1e-9, atol=1e-9
        )

    def test_version_bumps_once_per_block(self):
        store = RollupStore(num_racks=_RACKS)
        epochs = np.arange(120, dtype="float64") * 300.0
        values = {Channel.POWER: np.ones((120, _RACKS))}
        before = store.version
        store.add_block(epochs, values)
        assert store.version == before + 1


class TestPredictorBlockEquivalence:
    """consume_block == consume, decision for decision, bit for bit."""

    _RACK = RackId.from_flat_index(0)

    def _degraded_stream(self):
        """One rack's stream exercising every repair/drop path: holes
        (LOCF-fillable and not), duplicates, late arrivals, and one
        silence long enough to force a gap reset."""
        rng = np.random.default_rng(42)
        dt = 300.0
        epochs = list(np.arange(600) * dt)
        epochs[100:100] = [epochs[99]]  # duplicate
        epochs[200:200] = [epochs[199] - 2 * dt]  # late arrival
        epochs = np.array(epochs)
        epochs[400:] += 4 * 3600.0  # a four-hour silence: gap reset
        values = rng.normal(size=(len(epochs), len(PREDICTOR_CHANNELS))) + 20.0
        holes = rng.random(size=values.shape) < 0.05
        values[holes] = np.nan
        values[0, :] = np.nan  # first row: no LOCF donor -> dropped
        return epochs, values

    @pytest.mark.parametrize("chunk_size", [1, 7, 50, 10_000])
    def test_block_matches_per_sample(self, chunk_size):
        epochs, values = self._degraded_stream()
        scalar = OnlineCmfPredictor(_StubModel())
        expected = []
        for i, epoch in enumerate(epochs):
            row = {
                ch: float(values[i, k])
                for k, ch in enumerate(PREDICTOR_CHANNELS)
            }
            prediction = scalar.consume(float(epoch), self._RACK, row)
            if prediction is not None:
                expected.append(prediction)

        chunked = OnlineCmfPredictor(_StubModel())
        produced = []
        for i in range(0, len(epochs), chunk_size):
            produced.extend(
                chunked.consume_block(
                    epochs[i : i + chunk_size],
                    self._RACK,
                    values[i : i + chunk_size],
                )
            )

        # Every degraded-stream path was actually exercised...
        counters = scalar.counters
        assert counters.dropped_duplicate > 0
        assert counters.dropped_late > 0
        assert counters.gap_resets > 0
        assert counters.locf_fills > 0
        assert counters.dropped_incomplete > 0
        # ...and the block path made the identical decisions.
        assert chunked.counters == scalar.counters
        assert len(produced) == len(expected)
        for ours, theirs in zip(produced, expected):
            assert ours.epoch_s == theirs.epoch_s
            assert ours.rack_id == theirs.rack_id
            assert ours.probability == theirs.probability  # bit-exact


class TestCusumChunkEquivalence:
    @pytest.mark.parametrize("chunk_size", [17, 256])
    def test_streamed_alarms_identical(self, stream_result, chunk_size):
        db = stream_result.database

        def alarms_at(size, delivery):
            subscriber = CusumSubscriber(CusumDetector())
            bus = ReplayBus(db, chunk_size=size)
            bus.subscribe("cusum", subscriber, policy="block", delivery=delivery)
            bus.run()
            return subscriber.alarms

        expected = alarms_at(1, "samples")
        produced = alarms_at(chunk_size, "chunks")
        assert len(expected) > 0, "faulted stream raised no alarms"
        assert produced == expected  # exact: epoch, rack, channel, statistic


class TestChunkedBackpressure:
    """Backpressure acts on whole chunks; counters reconcile both units."""

    N = 60
    CHUNK = 5

    def _run_slow(self, policy, delay_s=0.004):
        bus = ReplayBus(_rows(self.N), chunk_size=self.CHUNK)
        slow = CountingSubscriber(delay_s=delay_s, keep_seqs=True)
        bus.subscribe(
            "slow", slow, capacity=2, policy=policy, delivery="chunks"
        )
        report = bus.run()
        return report, slow, report.subscribers["slow"]

    def test_block_loses_nothing(self):
        report, slow, counters = self._run_slow("block")
        assert counters.enqueued == counters.delivered == self.N
        assert counters.enqueued_chunks == counters.delivered_chunks == 12
        assert counters.dropped == counters.dropped_chunks == 0
        assert slow.seqs == list(range(self.N))
        assert slow.gaps == 0 and slow.missing == 0

    def test_drop_oldest_evicts_whole_chunks(self):
        report, slow, counters = self._run_slow("drop_oldest")
        assert counters.enqueued == self.N
        assert counters.enqueued_chunks == 12
        # Both units reconcile exactly.
        assert counters.delivered + counters.dropped == self.N
        assert counters.delivered_chunks + counters.dropped_chunks == 12
        assert counters.dropped_chunks > 0
        # Eviction is chunk-granular: sample drops in chunk multiples.
        assert counters.dropped % self.CHUNK == 0
        assert counters.dropped == counters.dropped_chunks * self.CHUNK
        # Ordered, gap-counted, and the freshest chunk survives.
        assert slow.monotonic
        assert slow.last_seq == self.N - 1
        # Consecutive evictions may merge into one observed gap, but
        # every dropped sample is accounted for.
        assert 1 <= slow.gaps <= counters.dropped_chunks
        assert slow.missing == counters.dropped

    def test_coalesce_supersedes_whole_chunks(self):
        report, slow, counters = self._run_slow("coalesce")
        assert counters.delivered + counters.coalesced == self.N
        assert (
            counters.delivered_chunks + counters.coalesced_chunks == 12
        )
        assert counters.coalesced_chunks > 0
        assert counters.dropped == counters.dropped_chunks == 0
        assert slow.monotonic
        assert slow.last_seq == self.N - 1
        assert slow.missing == counters.coalesced

    def test_slow_chunked_subscriber_never_stalls_fast_peer(self):
        bus = ReplayBus(_rows(self.N), chunk_size=self.CHUNK)
        slow = CountingSubscriber(delay_s=0.01)
        fast = CountingSubscriber(keep_seqs=True)
        bus.subscribe(
            "slow", slow, capacity=2, policy="drop_oldest", delivery="chunks"
        )
        bus.subscribe("fast", fast, capacity=self.N, delivery="samples")
        report = bus.run()
        assert fast.seqs == list(range(self.N))
        assert fast.gaps == 0
        assert report.subscribers["slow"].delivered < self.N
        # 12 chunks x 10 ms of slow-consumer work never throttled the bus.
        assert report.duration_s < 0.5 * 12 * 0.01


class TestInvalidationBatching:
    """Cache invalidation scales with chunks, not samples."""

    def test_store_version_advances_per_chunk(self):
        rows = _rows(240)

        def version_after(chunk_size, delivery):
            store = RollupStore(num_racks=_RACKS)
            bus = ReplayBus(rows, chunk_size=chunk_size)
            bus.subscribe(
                "rollups",
                RollupSubscriber(store),
                policy="block",
                delivery=delivery,
            )
            report = bus.run()
            return store, report

        store, report = version_after(48, "chunks")
        assert report.published_chunks == 5
        assert store.version == 5  # one invalidation per chunk...
        per_sample, _ = version_after(1, "samples")
        assert per_sample.version == 240  # ...not one per sample

    def test_queries_warm_across_chunked_replay(self, stream_result):
        """Post-replay, repeated dashboard queries hit the cache."""
        db = stream_result.database
        store = RollupStore(num_racks=db.num_racks)
        bus = ReplayBus(db, chunk_size=128)
        bus.subscribe(
            "rollups", RollupSubscriber(store), policy="block", delivery="chunks"
        )
        bus.run()
        engine = QueryEngine(store)
        query = Query(
            "aggregate",
            Channel.POWER,
            stream_result.start_epoch_s,
            stream_result.end_epoch_s,
            stat="mean",
        )
        first = engine.execute(query)
        second = engine.execute(query)
        assert first.value == second.value
        assert engine.cache_info()["hits"] >= 1


class TestLiveServiceChunkedEquivalence:
    """The assembled service: chunk size changes nothing but speed."""

    def _run(self, database, chunk_size):
        service = LiveOperationsService(
            database,
            model=_StubModel(),
            cusum=True,
            config=ServiceConfig(
                analytics_policy="block", chunk_size=chunk_size
            ),
        )
        return service, service.run()

    def test_reports_identical_across_chunk_sizes(self, stream_result):
        db = stream_result.database
        _, baseline = self._run(db, chunk_size=1)
        service, chunked = self._run(db, chunk_size=97)
        assert chunked.bus.published == baseline.bus.published
        assert chunked.predictions == baseline.predictions
        assert chunked.alarms == baseline.alarms
        assert chunked.alerts == baseline.alerts
        assert chunked.rollup_buckets == baseline.rollup_buckets
        assert baseline.predictions > 0
        # The chunked run covered the stream in far fewer deliveries.
        rollups = chunked.bus.subscribers["rollups"]
        assert rollups.delivered_chunks < chunked.bus.published
        assert rollups.delivered == chunked.bus.published
