"""The process-pool helpers: worker resolution, seeding, pmap."""

import os

import numpy as np
import pytest

from repro.parallel import (
    WORKERS_ENV,
    pmap,
    pstarmap,
    require_generator,
    resolve_workers,
    spawn_seeds,
    task_rngs,
)


def _square(x):
    return x * x


def _fail_on_seven(x):
    if x == 7:
        raise ValueError("seven is right out")
    return x


def _add(a, b):
    return a + b


class TestResolveWorkers:
    def test_explicit_wins_even_above_core_count(self):
        assert resolve_workers(3) == 3
        assert resolve_workers((os.cpu_count() or 1) + 5) == (os.cpu_count() or 1) + 5

    def test_env_var_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert resolve_workers(None) == 1

    def test_env_var_capped_at_cores(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "9999")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_default_is_core_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_task_count_caps(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(8, max_tasks=3) == 3
        assert resolve_workers(None, max_tasks=0) == 1

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestSeeding:
    def test_spawned_seeds_deterministic(self):
        a = [s.generate_state(4).tolist() for s in spawn_seeds(42, 5)]
        b = [s.generate_state(4).tolist() for s in spawn_seeds(42, 5)]
        assert a == b

    def test_spawned_streams_distinct(self):
        rngs = task_rngs(7, 4)
        draws = [r.standard_normal(8).tolist() for r in rngs]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert draws[i] != draws[j]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_require_generator(self):
        rng = np.random.default_rng(0)
        assert require_generator(rng) is rng
        with pytest.raises(TypeError):
            require_generator(1234)
        with pytest.raises(TypeError):
            require_generator(np.random.RandomState(0))


class TestPmap:
    def test_serial_matches_parallel(self):
        items = list(range(20))
        assert pmap(_square, items, workers=1) == pmap(_square, items, workers=3)

    def test_order_preserved(self):
        assert pmap(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_empty(self):
        assert pmap(_square, [], workers=4) == []

    def test_error_propagates_serial(self):
        with pytest.raises(ValueError, match="seven"):
            pmap(_fail_on_seven, range(10), workers=1)

    def test_error_propagates_parallel(self):
        with pytest.raises(ValueError, match="seven"):
            pmap(_fail_on_seven, range(10), workers=2)

    def test_chunked(self):
        items = list(range(37))
        assert pmap(_square, items, workers=2, chunksize=5) == [
            x * x for x in items
        ]

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert pmap(_square, range(6)) == [x * x for x in range(6)]

    def test_pstarmap(self):
        assert pstarmap(_add, [(1, 2), (3, 4)], workers=2) == [3, 7]
