"""The process-pool helpers: worker resolution, seeding, pmap."""

import os
import time

import numpy as np
import pytest

from repro.chaos import WorkerCrasher
from repro.parallel import (
    WORKERS_ENV,
    pmap,
    pstarmap,
    require_generator,
    resolve_workers,
    spawn_seeds,
    task_rngs,
)


def _square(x):
    return x * x


def _fail_on_seven(x):
    if x == 7:
        raise ValueError("seven is right out")
    return x


def _add(a, b):
    return a + b


def _sleepy(x):
    time.sleep(1.2)
    return x


class TestResolveWorkers:
    def test_explicit_wins_even_above_core_count(self):
        assert resolve_workers(3) == 3
        assert resolve_workers((os.cpu_count() or 1) + 5) == (os.cpu_count() or 1) + 5

    def test_env_var_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert resolve_workers(None) == 1

    def test_env_var_capped_at_cores(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "9999")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_default_is_core_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_task_count_caps(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(8, max_tasks=3) == 3
        assert resolve_workers(None, max_tasks=0) == 1

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestSeeding:
    def test_spawned_seeds_deterministic(self):
        a = [s.generate_state(4).tolist() for s in spawn_seeds(42, 5)]
        b = [s.generate_state(4).tolist() for s in spawn_seeds(42, 5)]
        assert a == b

    def test_spawned_streams_distinct(self):
        rngs = task_rngs(7, 4)
        draws = [r.standard_normal(8).tolist() for r in rngs]
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                assert draws[i] != draws[j]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_require_generator(self):
        rng = np.random.default_rng(0)
        assert require_generator(rng) is rng
        with pytest.raises(TypeError):
            require_generator(1234)
        with pytest.raises(TypeError):
            require_generator(np.random.RandomState(0))


class TestPmap:
    def test_serial_matches_parallel(self):
        items = list(range(20))
        assert pmap(_square, items, workers=1) == pmap(_square, items, workers=3)

    def test_order_preserved(self):
        assert pmap(_square, [3, 1, 2], workers=2) == [9, 1, 4]

    def test_empty(self):
        assert pmap(_square, [], workers=4) == []

    def test_error_propagates_serial(self):
        with pytest.raises(ValueError, match="seven"):
            pmap(_fail_on_seven, range(10), workers=1)

    def test_error_propagates_parallel(self):
        with pytest.raises(ValueError, match="seven"):
            pmap(_fail_on_seven, range(10), workers=2)

    def test_chunked(self):
        items = list(range(37))
        assert pmap(_square, items, workers=2, chunksize=5) == [
            x * x for x in items
        ]

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert pmap(_square, range(6)) == [x * x for x in range(6)]

    def test_pstarmap(self):
        assert pstarmap(_add, [(1, 2), (3, 4)], workers=2) == [3, 7]

    def test_negative_pool_retries_rejected(self):
        with pytest.raises(ValueError, match="pool_retries"):
            pmap(_square, range(4), workers=2, pool_retries=-1)


class TestPmapHardening:
    """Killed workers and wedged tasks degrade, not corrupt."""

    def test_killed_worker_resubmitted_to_fresh_pool(self, tmp_path):
        """A SIGKILLed worker breaks the pool; the retry completes the
        batch in order, including the chunk the dead worker held."""
        crasher = WorkerCrasher(_square, (3,), tmp_path)
        items = list(enumerate(range(12)))
        out = pstarmap(crasher, items, workers=3, chunksize=2)
        assert out == [x * x for x in range(12)]
        assert (tmp_path / "crashed-3").exists()

    def test_retry_budget_exhausted_falls_back_to_serial(self, tmp_path):
        """With zero pool retries the surviving chunks finish
        in-process (the marker makes the re-run side-effect free)."""
        crasher = WorkerCrasher(_square, (1,), tmp_path)
        items = list(enumerate(range(8)))
        out = pstarmap(
            crasher, items, workers=2, chunksize=1, pool_retries=0
        )
        assert out == [x * x for x in range(8)]

    def test_task_exception_beats_broken_pool(self, tmp_path):
        """A task that *raised* before a peer died still propagates —
        retries are for infrastructure failures, not bad inputs."""
        crasher = WorkerCrasher(_fail_on_seven, (2,), tmp_path)
        with pytest.raises(ValueError, match="seven"):
            pstarmap(
                crasher,
                list(enumerate(range(10))),
                workers=2,
                chunksize=1,
                pool_retries=2,
            )

    def test_timeout_raises_instead_of_hanging(self):
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="deadline"):
            pmap(_sleepy, range(4), workers=2, chunksize=1, timeout_s=0.1)
        # The pool was abandoned, not awaited: well under the 1.2s nap.
        assert time.monotonic() - start < 1.0

    def test_deadline_above_task_cost_passes(self):
        # 1.5s/task deadline comfortably covers the 1.2s nap, so the
        # same shape that times out above completes when given room.
        out = pmap(_sleepy, [1, 2], workers=2, chunksize=1, timeout_s=1.5)
        assert out == [1, 2]

    def test_serial_path_ignores_timeout(self):
        assert pmap(_sleepy, [5], workers=1, timeout_s=0.01) == [5]
