"""ROC curve and AUC."""

import numpy as np
import pytest

from repro.ml.metrics import auc_score, roc_curve


class TestRocCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, _ = roc_curve(y, s)
        assert auc_score(y, s) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[-1] == 1.0

    def test_inverted_scores_auc_zero(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, s) == pytest.approx(0.0)

    def test_random_scores_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        s = rng.uniform(0, 1, 5000)
        assert auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_monotone_curve(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 300)
        s = rng.uniform(0, 1, 300)
        fpr, tpr, _ = roc_curve(y, s)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_endpoints(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, 100)
        s = rng.uniform(0, 1, 100)
        fpr, tpr, _ = roc_curve(y, s)
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)

    def test_ties_handled(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_score(y, s) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([1, 1]), np.array([0.5, 0.6]))

    def test_predictor_auc_high(self, year_windows):
        from repro.core.prediction import build_dataset
        from repro.ml.network import NeuralNetwork
        from repro.ml.train import TrainConfig, train_classifier

        positives, negatives = year_windows
        dataset = build_dataset(positives, negatives, lead_h=2.0)
        rng = np.random.default_rng(3)
        network = NeuralNetwork.mlp(dataset.features.shape[1], (12, 12, 6), rng=rng)
        model = train_classifier(
            network, dataset.features, dataset.labels,
            config=TrainConfig(epochs=40), rng=rng,
        )
        scores = model.predict_proba(dataset.features)
        assert auc_score(dataset.labels, scores) > 0.97
