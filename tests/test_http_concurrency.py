"""Concurrent-correctness pins for the HTTP API.

The acceptance pin: reader threads hammering the series/aggregate
routes **while a collector stream ingests concurrently** must receive
responses bit-identical to direct :class:`QueryEngine` calls carrying
the same store-version stamp.  Floats cross the wire via ``repr``
round-trip, so "bit-identical" is literal: the decoded JSON must
``==`` the encoded direct answer, element by element.

Also here: the pre-forked multi-worker server smoke test (forked
workers reopening the archive memory-mapped and answering exactly like
an in-process engine).
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.service import Query, QueryEngine
from repro.service.http import (
    IngestClient,
    IngestServerConfig,
    OperationsApp,
    OperationsHttpServer,
    encode_result,
    query_path,
)
from repro.service.http.server import bind_listening_socket, serve_prefork
from repro.service.rollup import RollupStore
from repro.telemetry.archive import TelemetryArchive
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS, Channel

NUM_RACKS = 8
CADENCE_S = 300.0
SEED_SAMPLES = 48


def _database(samples=SEED_SAMPLES) -> EnvironmentalDatabase:
    rng = np.random.default_rng(31)
    db = EnvironmentalDatabase(num_racks=NUM_RACKS)
    epochs = np.arange(samples) * CADENCE_S
    db.append_block(
        epochs,
        {ch: rng.normal(50.0, 5.0, size=(samples, NUM_RACKS)) for ch in CHANNELS},
    )
    return db


def _query_mix():
    """A deterministic set of series/aggregate queries over the data."""
    queries = []
    for lo in (0, 4, 8):
        for width in (4, 12):
            start = lo * CADENCE_S
            end = (lo + width) * CADENCE_S
            queries.append(
                Query("series", Channel.POWER, start, end, stat="mean")
            )
            queries.append(
                Query(
                    "aggregate",
                    Channel.FLOW,
                    start,
                    end,
                    stat="max",
                    scope="rack",
                    rack=lo % NUM_RACKS,
                )
            )
            queries.append(
                Query("aggregate", Channel.OUTLET_TEMPERATURE, start, end)
            )
    return queries


class TestConcurrentBitIdentity:
    def test_http_matches_direct_engine_during_live_ingest(self):
        served = _database()
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        engine = app.engine
        queries = _query_mix()
        matched = []
        mismatches = []
        ingest_done = threading.Event()
        passes_per_reader = 4

        with OperationsHttpServer(app) as server:
            host, port = server.address

            def reader(worker: int) -> None:
                conn = http.client.HTTPConnection(host, port, timeout=30)
                try:
                    total = passes_per_reader * len(queries)
                    for i in range(worker, worker + total):
                        query = queries[i % len(queries)]
                        path = query_path(query.kind, query)
                        conn.request("GET", path)
                        reply = conn.getresponse()
                        payload = json.loads(reply.read())
                        assert reply.status == 200, payload
                        result, version = engine.execute_versioned(query)
                        if payload["store_version"] != version:
                            # The store moved between the two calls —
                            # stamps differ, no comparison possible.
                            continue
                        expected = encode_result(result, version)
                        if payload != expected:
                            mismatches.append((path, payload, expected))
                        else:
                            matched.append(path)
                finally:
                    conn.close()

            def ingester() -> None:
                # Paced so batches keep landing while readers read.
                client = IngestClient(server.url, "replayer")
                rng = np.random.default_rng(77)
                try:
                    for batch in range(12):
                        n = 4
                        epochs = (
                            SEED_SAMPLES + batch * n + np.arange(n)
                        ) * CADENCE_S
                        client.post_batch(
                            epochs,
                            {
                                ch: rng.normal(50.0, 5.0, size=(n, NUM_RACKS))
                                for ch in CHANNELS
                            },
                        )
                        time.sleep(0.02)
                finally:
                    ingest_done.set()

            readers = [
                threading.Thread(target=reader, args=(w,)) for w in range(4)
            ]
            for thread in readers:
                thread.start()
            ingest_thread = threading.Thread(target=ingester)
            ingest_thread.start()
            ingest_thread.join()
            for thread in readers:
                thread.join()

            assert mismatches == []
            # The race can skip comparisons, but most must have matched.
            assert len(matched) > 50

            # Quiesced: every query now compares exactly, stamps and all.
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                for query in queries:
                    conn.request("GET", query_path(query.kind, query))
                    reply = conn.getresponse()
                    payload = json.loads(reply.read())
                    result, version = engine.execute_versioned(query)
                    assert payload == encode_result(result, version)
            finally:
                conn.close()

    def test_post_ingest_state_equals_rebuilt_store(self):
        """After the stream ends, the served store == a fresh rebuild."""
        served = _database()
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        rng = np.random.default_rng(5)
        with OperationsHttpServer(app) as server:
            client = IngestClient(server.url, "replayer")
            for batch in range(6):
                epochs = (SEED_SAMPLES + batch * 3 + np.arange(3)) * CADENCE_S
                client.post_batch(
                    epochs,
                    {
                        ch: rng.normal(50.0, 5.0, size=(3, NUM_RACKS))
                        for ch in CHANNELS
                    },
                )
        rebuilt = QueryEngine(RollupStore.from_database(served))
        for query in _query_mix():
            live = app.engine.execute(query)
            fresh = rebuilt.execute(query)
            if query.kind == "series":
                np.testing.assert_array_equal(live.epoch_s, fresh.epoch_s)
                np.testing.assert_array_equal(live.values, fresh.values)
            else:
                assert (live.value == fresh.value) or (
                    np.isnan(live.value) and np.isnan(fresh.value)
                )


class TestPreforkServer:
    def test_prefork_workers_answer_like_direct_engine(self, tmp_path):
        database = _database()
        archive_dir = tmp_path / "archive"
        TelemetryArchive.save(database, archive_dir)
        engine = QueryEngine(RollupStore.from_database(database))
        queries = _query_mix()

        address = {}
        ready = threading.Event()
        stop = threading.Event()

        def on_ready(host, port):
            address["host"], address["port"] = host, port
            ready.set()

        babysitter = threading.Thread(
            target=serve_prefork,
            args=(archive_dir,),
            kwargs={
                "workers": 2,
                "duration_s": 60.0,
                "ready_callback": on_ready,
                "stop_event": stop,
            },
            daemon=True,
        )
        babysitter.start()
        assert ready.wait(timeout=10)
        conn = http.client.HTTPConnection(
            address["host"], address["port"], timeout=30
        )
        try:
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
            assert health["status"] == "ok"
            assert health["ingest_enabled"] is False
            for query in queries:
                conn.request("GET", query_path(query.kind, query))
                reply = conn.getresponse()
                payload = json.loads(reply.read())
                assert reply.status == 200, payload
                result, version = engine.execute_versioned(query)
                assert payload == encode_result(result, version)
            # Read-only replicas refuse ingest with a structured 503.
            body = json.dumps({"api_version": 1}).encode()
            conn.request(
                "POST",
                "/v1/ingest",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            reply = conn.getresponse()
            refusal = json.loads(reply.read())
            assert reply.status == 503
            assert refusal["error"]["type"] == "read_only"
        finally:
            conn.close()
            # Wind the pool down without waiting out the duration.
            stop.set()
        babysitter.join(timeout=20)
        assert not babysitter.is_alive()

    def test_bind_listening_socket_picks_free_port(self):
        sock = bind_listening_socket()
        try:
            host, port = sock.getsockname()[:2]
            assert host == "127.0.0.1" and port > 0
        finally:
            sock.close()
