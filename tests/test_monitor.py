"""The coolant monitor: readings, calibration, alarm thresholds."""

import pytest

from repro import constants
from repro.cooling.monitor import (
    AlarmThresholds,
    CoolantMonitor,
    SensorCalibration,
    SensorReading,
)
from repro.facility.topology import RackId


def _reading(**overrides):
    defaults = dict(
        epoch_s=0.0,
        rack_id=RackId(0, 0),
        dc_temperature_f=80.0,
        dc_humidity_rh=33.0,
        flow_gpm=26.0,
        inlet_temperature_f=64.0,
        outlet_temperature_f=79.0,
        power_kw=55.0,
    )
    defaults.update(overrides)
    return SensorReading(**defaults)


class TestSensorReading:
    def test_dewpoint_well_below_coolant_normally(self):
        reading = _reading()
        assert reading.dewpoint_f < reading.inlet_temperature_f
        assert reading.condensation_margin_f > 10.0

    def test_margin_collapses_with_humidity(self):
        humid = _reading(dc_humidity_rh=70.0)
        dry = _reading(dc_humidity_rh=25.0)
        assert humid.condensation_margin_f < dry.condensation_margin_f


class TestAlarmThresholds:
    def test_healthy_reading_no_alarm(self):
        thresholds = AlarmThresholds()
        assert thresholds.fatal_reason(_reading()) is None
        assert thresholds.warn_reason(_reading()) is None

    def test_flow_loss_is_fatal(self):
        thresholds = AlarmThresholds()
        assert thresholds.fatal_reason(_reading(flow_gpm=5.0)) == "coolant_flow_loss"

    def test_overtemperature_is_fatal(self):
        thresholds = AlarmThresholds()
        reason = thresholds.fatal_reason(_reading(outlet_temperature_f=100.0))
        assert reason == "overtemperature"

    def test_condensation_risk_is_fatal(self):
        thresholds = AlarmThresholds()
        # Cold inlet + hot humid air: dewpoint meets the coolant.
        reading = _reading(inlet_temperature_f=50.0, dc_humidity_rh=65.0)
        assert reading.condensation_margin_f < thresholds.min_condensation_margin_f
        assert thresholds.fatal_reason(reading) == "condensation_risk"

    def test_warn_band_below_fatal(self):
        thresholds = AlarmThresholds()
        reading = _reading(flow_gpm=11.0)
        assert thresholds.fatal_reason(reading) is None
        assert thresholds.warn_reason(reading) == "coolant_flow_low"

    def test_warn_suppressed_when_fatal(self):
        thresholds = AlarmThresholds()
        assert thresholds.warn_reason(_reading(flow_gpm=5.0)) is None


class TestSensorCalibration:
    def test_nominal_identity(self):
        calibration = SensorCalibration()
        assert calibration.apply(64.0) == 64.0
        assert calibration.is_nominal

    def test_drift_and_recalibrate(self):
        calibration = SensorCalibration()
        calibration.drift(gain_error=0.02, offset_error=0.5)
        assert not calibration.is_nominal
        assert calibration.apply(64.0) != 64.0
        calibration.recalibrate()
        assert calibration.is_nominal
        assert calibration.apply(64.0) == 64.0


class TestCoolantMonitor:
    def test_default_cadence_is_300s(self):
        monitor = CoolantMonitor(RackId(1, 8))
        assert monitor.sample_period_s == constants.MONITOR_SAMPLE_PERIOD_S

    def test_reading_carries_rack(self):
        monitor = CoolantMonitor(RackId(1, 8))
        reading = monitor.make_reading(0.0, 80.0, 33.0, 26.0, 64.0, 79.0, 55.0)
        assert reading.rack_id == RackId(1, 8)

    def test_calibration_applied_to_coolant_channels(self):
        monitor = CoolantMonitor(RackId(0, 0))
        monitor.calibration.drift(gain_error=0.05, offset_error=0.0)
        reading = monitor.make_reading(0.0, 80.0, 33.0, 26.0, 64.0, 79.0, 55.0)
        assert reading.inlet_temperature_f == pytest.approx(64.0 * 1.05)
        assert reading.dc_temperature_f == 80.0  # uncalibrated channel

    def test_check_delegates_to_thresholds(self):
        monitor = CoolantMonitor(RackId(0, 0))
        healthy = monitor.make_reading(0.0, 80.0, 33.0, 26.0, 64.0, 79.0, 55.0)
        failing = monitor.make_reading(0.0, 80.0, 33.0, 4.0, 64.0, 79.0, 55.0)
        assert monitor.check(healthy) is None
        assert monitor.check(failing) == "coolant_flow_loss"

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            CoolantMonitor(RackId(0, 0), sample_period_s=0.0)
