"""Probability calibration diagnostics."""

import numpy as np
import pytest

from repro.ml.calibration import brier_score, reliability_curve


class TestBrierScore:
    def test_perfect_predictions(self):
        assert brier_score(np.array([0.0, 1.0]), np.array([0, 1])) == 0.0

    def test_constant_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 1000)
        assert brier_score(np.full(1000, 0.5), y) == pytest.approx(0.25)

    def test_confidently_wrong_is_worst(self):
        wrong = brier_score(np.array([1.0]), np.array([0]))
        assert wrong == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            brier_score(np.array([1.5]), np.array([1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            brier_score(np.array([0.5, 0.5]), np.array([1]))


class TestReliabilityCurve:
    def test_calibrated_predictor_small_ece(self):
        rng = np.random.default_rng(1)
        p = rng.uniform(0, 1, 20_000)
        y = (rng.uniform(0, 1, 20_000) < p).astype(int)
        curve = reliability_curve(p, y)
        assert curve.expected_calibration_error < 0.02
        assert np.allclose(curve.predicted_mean, curve.observed_frequency, atol=0.05)

    def test_overconfident_predictor_large_ece(self):
        rng = np.random.default_rng(2)
        # Predicts 0.95 but the true rate is 0.5.
        p = np.full(5000, 0.95)
        y = rng.integers(0, 2, 5000)
        curve = reliability_curve(p, y)
        assert curve.expected_calibration_error > 0.3

    def test_counts_sum_to_samples(self):
        rng = np.random.default_rng(3)
        p = rng.uniform(0, 1, 500)
        y = rng.integers(0, 2, 500)
        curve = reliability_curve(p, y, bins=8)
        assert curve.counts.sum() == 500

    def test_empty_bins_dropped(self):
        p = np.array([0.05, 0.05, 0.95, 0.95])
        y = np.array([0, 0, 1, 1])
        curve = reliability_curve(p, y, bins=10)
        assert len(curve.bin_centers) == 2

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            reliability_curve(np.array([0.5]), np.array([1]), bins=0)


class TestOnPredictor:
    def test_cmf_predictor_reasonably_calibrated(self, year_windows):
        from repro.core.prediction import build_dataset
        from repro.ml.network import NeuralNetwork
        from repro.ml.train import TrainConfig, train_classifier

        positives, negatives = year_windows
        dataset = build_dataset(positives, negatives, lead_h=3.0)
        rng = np.random.default_rng(4)
        half = len(dataset.labels) // 2
        order = rng.permutation(len(dataset.labels))
        train_idx, test_idx = order[:half], order[half:]
        network = NeuralNetwork.mlp(dataset.features.shape[1], (12, 12, 6), rng=rng)
        model = train_classifier(
            network,
            dataset.features[train_idx],
            dataset.labels[train_idx],
            config=TrainConfig(epochs=50),
            rng=rng,
        )
        probabilities = model.predict_proba(dataset.features[test_idx])
        score = brier_score(probabilities, dataset.labels[test_idx])
        assert score < 0.1  # strong, well-calibrated separation
