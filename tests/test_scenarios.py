"""Scenario presets and dataset caching."""

import datetime as dt

import pytest

from repro import constants
from repro.simulation import MiraScenario
from repro.simulation.datasets import small_dataset


class TestScenarios:
    def test_full_study_covers_production_period(self):
        config = MiraScenario.full_study()
        assert config.start == constants.PRODUCTION_START
        assert config.end == constants.PRODUCTION_END

    def test_single_year(self):
        config = MiraScenario.single_year(2016)
        assert config.start == dt.datetime(2016, 1, 1)
        assert config.end == dt.datetime(2017, 1, 1)

    def test_single_year_outside_period_rejected(self):
        with pytest.raises(ValueError):
            MiraScenario.single_year(2013)
        with pytest.raises(ValueError):
            MiraScenario.single_year(2020)

    def test_demo_duration(self):
        config = MiraScenario.demo(days=10)
        assert (config.end - config.start).days == 10

    def test_demo_bad_days_rejected(self):
        with pytest.raises(ValueError):
            MiraScenario.demo(days=0)


class TestDatasetCache:
    def test_small_dataset_memoized(self):
        assert small_dataset() is small_dataset()
