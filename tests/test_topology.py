"""Rack topology, naming, and airflow factors."""

import numpy as np
import pytest

from repro import constants
from repro.facility.topology import MiraTopology, Rack, RackId


class TestRackId:
    def test_label_is_hex(self):
        assert RackId(0, 13).label == "(0, D)"
        assert RackId(1, 8).label == "(1, 8)"
        assert RackId(2, 15).label == "(2, F)"

    def test_flat_index_roundtrip(self):
        for index in range(constants.NUM_RACKS):
            assert RackId.from_flat_index(index).flat_index == index

    def test_flat_index_row_major(self):
        assert RackId(0, 0).flat_index == 0
        assert RackId(1, 0).flat_index == 16
        assert RackId(2, 15).flat_index == 47

    def test_parse_variants(self):
        assert RackId.parse("(0, D)") == RackId(0, 13)
        assert RackId.parse("1,8") == RackId(1, 8)
        assert RackId.parse("(2,f)") == RackId(2, 15)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            RackId.parse("nope")

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError):
            RackId(3, 0)
        with pytest.raises(ValueError):
            RackId(-1, 0)

    def test_bad_col_rejected(self):
        with pytest.raises(ValueError):
            RackId(0, 16)

    def test_bad_flat_index_rejected(self):
        with pytest.raises(ValueError):
            RackId.from_flat_index(48)

    def test_ordering_is_row_major(self):
        assert RackId(0, 5) < RackId(1, 0)
        assert sorted([RackId(2, 0), RackId(0, 1)])[0] == RackId(0, 1)

    def test_hashable(self):
        assert len({RackId(0, 1), RackId(0, 1), RackId(0, 2)}) == 2


class TestRack:
    def test_node_count_matches_paper(self):
        rack = Rack(RackId(0, 0))
        assert rack.num_nodes == 1024

    def test_core_count(self):
        rack = Rack(RackId(0, 0))
        assert rack.num_cores == 16_384


class TestMiraTopology:
    def test_rack_count(self):
        assert len(MiraTopology()) == 48

    def test_total_nodes_matches_paper(self):
        assert MiraTopology().total_nodes == 49_152

    def test_total_cores_constant(self):
        assert constants.TOTAL_COMPUTE_CORES == 786_432

    def test_rows(self):
        topology = MiraTopology()
        row = topology.row(1)
        assert len(row) == 16
        assert all(r.row == 1 for r in row)

    def test_bad_row_rejected(self):
        with pytest.raises(ValueError):
            MiraTopology().row(3)

    def test_rack_lookup(self):
        topology = MiraTopology()
        rack = topology.rack(RackId(2, 7))
        assert rack.rack_id == RackId(2, 7)

    def test_airflow_lower_at_row_ends(self):
        topology = MiraTopology()
        end = topology.airflow_factor(RackId(0, 0))
        center = topology.airflow_factor(RackId(0, 7))
        assert end < center
        assert center == pytest.approx(1.0)

    def test_airflow_symmetric_about_row_center(self):
        topology = MiraTopology()
        left = topology.airflow_factor(RackId(0, 1))
        right = topology.airflow_factor(RackId(0, 14))
        assert left == pytest.approx(right)

    def test_default_hotspot_is_rack_1_8(self):
        topology = MiraTopology()
        assert RackId(1, 8) in topology.hotspots
        # The hotspot sits in the row center yet has blocked airflow.
        assert topology.airflow_factor(RackId(1, 8)) < topology.airflow_factor(
            RackId(0, 8)
        )

    def test_custom_hotspots(self):
        topology = MiraTopology(hotspots=((0, 5), (2, 9)))
        assert topology.hotspots == {RackId(0, 5), RackId(2, 9)}

    def test_airflow_vector_matches_scalar(self):
        topology = MiraTopology()
        vector = topology.airflow_factors()
        for rack_id in topology.rack_ids:
            assert vector[rack_id.flat_index] == pytest.approx(
                topology.airflow_factor(rack_id)
            )

    def test_airflow_in_unit_range(self):
        factors = MiraTopology().airflow_factors()
        assert np.all(factors > 0.0)
        assert np.all(factors <= 1.0)
