"""The post-CMF (aftermath) failure process."""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.facility.dependencies import DependencyGraph
from repro.facility.topology import MiraTopology, RackId
from repro.failures.cmf import CmfSchedule
from repro.failures.noncmf import AftermathConfig, AftermathProcess


@pytest.fixture(scope="module")
def schedule():
    return CmfSchedule.generate(np.random.default_rng(21))


@pytest.fixture(scope="module")
def process():
    topology = MiraTopology()
    graph = DependencyGraph(topology, rng=np.random.default_rng(2))
    return AftermathProcess(graph)


class TestHazardShape:
    def test_rate_decays(self, process):
        hours = np.array([1.0, 3.0, 6.0, 12.0, 24.0, 48.0])
        rates = process.relative_rate(hours)
        assert np.all(np.diff(rates) < 0)

    def test_rate_zero_outside_window(self, process):
        assert process.relative_rate(np.array([-1.0]))[0] == 0.0
        assert process.relative_rate(np.array([49.0]))[0] == 0.0

    def test_paper_decay_ratios(self, process):
        # The mixture is calibrated so the 6 h trailing rate is ~70 %
        # of the 3 h rate and the 48 h rate is ~10 % of it.
        r_early = float(process.relative_rate(np.array([1.5]))[0])
        r_six = float(process.relative_rate(np.array([4.5]))[0])
        r_late = float(process.relative_rate(np.array([42.0]))[0])
        assert 0.55 < r_six / r_early < 0.85
        assert r_late / r_early < 0.2

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            AftermathConfig(fast_weight=1.5)
        with pytest.raises(ValueError):
            AftermathConfig(fast_tau_h=0.0)


class TestInducedFailures:
    def test_counts_scale_with_incidents(self, process, schedule):
        rng = np.random.default_rng(3)
        failures = process.induced_failures(rng, schedule.incidents)
        expected = process.config.expected_per_incident * len(schedule.incidents)
        assert 0.6 * expected < len(failures) < 1.4 * expected

    def test_failures_sorted_and_linked(self, process, schedule):
        rng = np.random.default_rng(3)
        failures = process.induced_failures(rng, schedule.incidents)
        times = [f.epoch_s for f in failures]
        assert times == sorted(times)
        incident_ids = {i.incident_id for i in schedule.incidents}
        assert all(f.incident_id in incident_ids for f in failures)

    def test_lags_within_window(self, process, schedule):
        rng = np.random.default_rng(3)
        failures = process.induced_failures(rng, schedule.incidents)
        by_incident = {i.incident_id: i.epoch_s for i in schedule.incidents}
        for failure in failures:
            lag_h = (failure.epoch_s - by_incident[failure.incident_id]) / 3600.0
            assert 0.0 <= lag_h <= process.config.window_h

    def test_category_mix_close_to_paper(self, process, schedule):
        rng = np.random.default_rng(3)
        failures = process.induced_failures(rng, schedule.incidents)
        categories = [f.category for f in failures]
        ac_dc = categories.count("ac_dc_power") / len(categories)
        process_failures = categories.count("process") / len(categories)
        assert 0.40 < ac_dc < 0.60  # paper: 50 %
        assert process_failures < 0.06  # paper: < 2 %

    def test_locations_span_the_machine(self, process, schedule):
        rng = np.random.default_rng(3)
        failures = process.induced_failures(rng, schedule.incidents)
        rows = {f.rack_id.row for f in failures}
        assert rows == {0, 1, 2}


class TestBackgroundFailures:
    def test_rate_matches_config(self, process):
        rng = np.random.default_rng(5)
        year = 365.0 * timeutil.DAY_S
        failures = process.background_failures(rng, 0.0, year)
        expected = process.config.background_rate_per_day * 365.0
        assert 0.5 * expected < len(failures) < 1.6 * expected

    def test_background_has_no_incident(self, process):
        rng = np.random.default_rng(5)
        failures = process.background_failures(rng, 0.0, 30 * timeutil.DAY_S)
        assert all(f.is_background for f in failures)

    def test_empty_interval_rejected(self, process):
        with pytest.raises(ValueError):
            process.background_failures(np.random.default_rng(1), 10.0, 10.0)
