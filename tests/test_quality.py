"""The telemetry scrubber and NaN-silent statistics."""

import warnings

import numpy as np
import pytest

from repro import constants
from repro.telemetry import nanstats
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.quality import (
    ScrubPolicy,
    find_gaps,
    scrub_database,
    spike_mask,
    stuck_mask,
)
from repro.telemetry.records import CHANNELS, Channel, Quality


class TestNanStats:
    def test_all_nan_slice_is_silent(self):
        values = np.full((4, 3), np.nan)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert np.isnan(nanstats.nanmean(values))
            assert np.isnan(nanstats.nanmedian(values))
            assert np.isnan(nanstats.nanstd(values))
            assert np.isnan(nanstats.nanmean(values, axis=1)).all()

    def test_matches_numpy_on_finite_data(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(50, 4))
        assert nanstats.nanmean(values) == np.nanmean(values)
        assert nanstats.nanmedian(values) == np.nanmedian(values)
        assert nanstats.nanstd(values) == np.nanstd(values)

    def test_partial_nan_columns(self):
        values = np.array([[1.0, np.nan], [3.0, np.nan]])
        per_column = nanstats.nanmean(values, axis=0)
        assert per_column[0] == 2.0
        assert np.isnan(per_column[1])


class TestStuckMask:
    def test_flags_whole_run_including_start(self):
        values = np.ones(20)
        values[:] = np.linspace(0, 1, 20)
        values[5:12] = values[5]
        mask = stuck_mask(values, min_run=6)
        assert mask[5:12].all()
        assert not mask[:5].any()
        assert not mask[12:].any()

    def test_short_runs_not_flagged(self):
        values = np.linspace(0, 1, 20)
        values[3:7] = values[3]  # 4-run < min_run 6
        assert not stuck_mask(values, min_run=6).any()

    def test_nan_breaks_runs(self):
        values = np.full(11, 5.0)
        values[5] = np.nan
        mask = stuck_mask(values, min_run=6)
        # Two five-sample identical segments split by the NaN: neither
        # side alone reaches six samples.
        assert not mask.any()

    def test_per_rack_independence(self):
        values = np.random.default_rng(1).normal(size=(30, 2))
        values[10:20, 1] = values[10, 1]
        mask = stuck_mask(values, min_run=6)
        assert mask[10:20, 1].all()
        assert not mask[:, 0].any()


class TestSpikeMask:
    def test_single_spike_detected(self):
        rng = np.random.default_rng(2)
        values = rng.normal(50.0, 1.0, 200)
        values[100] += 30.0
        mask = spike_mask(values, threshold_sigma=6.0)
        assert mask[100]
        assert mask.sum() == 1

    def test_step_change_not_flagged(self):
        values = np.concatenate([np.zeros(50), np.ones(50) * 30.0])
        values += np.random.default_rng(3).normal(0, 0.5, 100)
        mask = spike_mask(values, threshold_sigma=6.0)
        # A level shift deviates from one neighbor only.
        assert not mask.any()

    def test_endpoints_never_flagged(self):
        values = np.zeros(10)
        values[0] = 100.0
        values[-1] = 100.0
        assert not spike_mask(values, threshold_sigma=3.0).any()

    def test_constant_channel_guarded_by_min_sigma(self):
        values = np.zeros(50)
        values[25] = 1e-9
        assert not spike_mask(values, threshold_sigma=6.0).any()


class TestFindGaps:
    def test_no_gaps_on_regular_grid(self):
        assert find_gaps(np.arange(10) * 300.0) == []

    def test_gap_detected_and_sized(self):
        t = np.concatenate([np.arange(5) * 300.0, 3000.0 + np.arange(5) * 300.0])
        gaps = find_gaps(t, nominal_dt_s=300.0)
        assert len(gaps) == 1
        gap = gaps[0]
        assert gap.start_epoch_s == 1200.0
        assert gap.end_epoch_s == 3000.0
        assert gap.missing_samples == 5
        assert gap.duration_s == 1800.0

    def test_short_vector_no_gaps(self):
        assert find_gaps(np.array([0.0])) == []


class TestScrubDatabase:
    def _database(self, values):
        n = values.shape[0]
        db = EnvironmentalDatabase(capacity_hint=n)
        t = np.arange(n) * 300.0
        block = {
            ch: np.array(values, copy=True) for ch in CHANNELS if ch.is_sensor
        }
        db.append_block(t, block)
        db.compact()
        return db

    def test_verdicts_written_to_masks(self):
        rng = np.random.default_rng(4)
        values = rng.normal(60.0, 1.0, (120, constants.NUM_RACKS))
        values[40:50, 7] = values[40, 7]  # stuck run
        values[80, 11] += 40.0  # spike
        db = self._database(values)
        report = scrub_database(db)
        assert report.stuck_cells >= 10 * 6  # every sensor channel
        quality = db.quality(Channel.FLOW)
        assert (quality[40:50, 7] == Quality.SUSPECT).all()
        assert quality[80, 11] == Quality.SCRUBBED

    def test_missing_cells_not_relabelled(self):
        rng = np.random.default_rng(5)
        values = rng.normal(60.0, 1.0, (60, constants.NUM_RACKS))
        values[10:30, 3] = np.nan
        db = self._database(values)
        scrub_database(db)
        assert (db.quality(Channel.POWER)[10:30, 3] == Quality.MISSING).all()

    def test_clean_noise_rarely_flagged(self):
        rng = np.random.default_rng(6)
        values = rng.normal(60.0, 1.0, (500, constants.NUM_RACKS))
        db = self._database(values)
        report = scrub_database(db)
        cells = 500 * constants.NUM_RACKS * 6  # six sensor channels
        false_positives = report.stuck_cells + report.spike_cells
        assert false_positives / cells < 1e-3

    def test_utilization_not_scrubbed_by_default(self):
        values = np.zeros((60, constants.NUM_RACKS))  # constant: max stuck
        db = EnvironmentalDatabase(capacity_hint=60)
        t = np.arange(60) * 300.0
        db.append_block(t, {Channel.UTILIZATION: values})
        report = scrub_database(db)
        assert Channel.UTILIZATION not in report.per_channel

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ScrubPolicy(stuck_min_run=1)
        with pytest.raises(ValueError):
            ScrubPolicy(gap_factor=0.5)
        with pytest.raises(ValueError):
            ScrubPolicy(spike_threshold_sigma=0.0)
