"""The command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestSimulate:
    def test_simulate_exports_files(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--days", "3",
                "--seed", "3",
                "--dt", "3600",
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out" / "telemetry.csv").exists()
        assert (tmp_path / "out" / "ras.jsonl").exists()
        output = capsys.readouterr().out
        assert "telemetry rows" in output

    def test_exported_telemetry_reimports(self, tmp_path):
        from repro.telemetry.export import import_telemetry_csv

        main(
            [
                "simulate",
                "--days", "2",
                "--seed", "1",
                "--dt", "3600",
                "--out", str(tmp_path),
            ]
        )
        database = import_telemetry_csv(tmp_path / "telemetry.csv")
        assert database.num_samples == 48  # 2 days hourly


class TestReport:
    def test_report_prints_tables(self, capsys):
        code = main(["report", "--days", "120", "--seed", "11"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Fig 2" in output
        assert "paper=" in output
        assert "Fig 14" in output

    def test_report_stats_flag(self, tmp_path, monkeypatch, capsys):
        from repro.simulation.datasets import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        code = main(["report", "--days", "20", "--seed", "11", "--stats"])
        assert code == 0
        output = capsys.readouterr().out
        assert "dataset digest:" in output
        # The conftest env gate keeps the default store off in tests.
        assert "section cache: disabled" in output

    def test_report_no_section_cache_flag(self, capsys):
        code = main(
            ["report", "--days", "20", "--seed", "11",
             "--no-section-cache", "--stats"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "section cache: disabled" in output


class TestServeReplay:
    def test_unpaced_replay_prints_report(self, capsys):
        code = main(
            [
                "serve-replay",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "published 48 rows" in output
        assert "rollups:" in output
        assert "rollup buckets" in output
        assert "query cache" in output

    def test_faulted_replay_with_policy(self, capsys):
        code = main(
            [
                "serve-replay",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--inject-faults",
                "--policy", "coalesce",
                "--no-cusum",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "published 48 rows" in output
        assert "cusum" not in output


class TestQuery:
    def test_aggregate_query(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "power_kw",
                "--stat", "mean",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean(power_kw) [facility] =" in output
        assert "hits': 1" in output or '"hits": 1' in output or "'hits': 1" in output

    def test_series_query_scoped_to_row(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "inlet_temperature_f",
                "--kind", "series",
                "--scope", "row",
                "--row", "1",
                "--start-day", "0",
                "--end-day", "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "resolution: 86400s" in output

    def test_unknown_channel_fails_cleanly(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "warp_core_temp",
            ]
        )
        assert code == 1
        assert "unknown channel" in capsys.readouterr().out

class TestChaos:
    def test_matrix_reports_ok_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        code = main(
            [
                "chaos",
                "--days", "2",
                "--dt", "3600",
                "--chunk-sizes", "8",
                "--scenarios", "crash",
                "--out", str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "chaos matrix: OK" in output
        import json

        summary = json.loads(out.read_text())
        assert summary["ok"] is True
        assert summary["cells"][0]["scenario"] == "crash"


class TestCache:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        from repro.simulation.datasets import CACHE_DIR_ENV, CACHE_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(CACHE_ENV, raising=False)
        return tmp_path

    def test_info_on_empty_cache(self, cache_dir, capsys):
        assert main(["cache", "info"]) == 0
        assert "no dataset-cache entries" in capsys.readouterr().out

    def test_info_lists_entries(self, cache_dir, capsys):
        from repro.simulation import MiraScenario
        from repro.simulation.datasets import build_dataset

        build_dataset(MiraScenario.demo(days=3, seed=5))
        assert main(["cache", "info"]) == 0
        output = capsys.readouterr().out
        assert "digest" in output
        assert "MB total" in output

    def test_clear_empties_cache(self, cache_dir, capsys):
        from repro.simulation import MiraScenario
        from repro.simulation.datasets import build_dataset, cache_entries

        build_dataset(MiraScenario.demo(days=3, seed=5))
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert cache_entries() == []

    def test_info_lists_section_memos(self, cache_dir, capsys):
        from repro.analytics.incremental import SectionMemoStore

        store = SectionMemoStore(enabled=True)
        store.store_rows(store.key("a" * 64, "fig2_rows", "b" * 16), [("r",)])
        assert main(["cache", "info"]) == 0
        output = capsys.readouterr().out
        assert "section memos at" in output
        assert "fig2_rows" in output
        assert "kB total" in output

    def test_clear_sweeps_section_memos(self, cache_dir, capsys):
        from repro.analytics.incremental import SectionMemoStore

        store = SectionMemoStore(enabled=True)
        store.store_rows(store.key("a" * 64, "fig2_rows", "b" * 16), [("r",)])
        store.store_state("system-series", "b" * 16, {"rows": 1})
        assert main(["cache", "clear"]) == 0
        output = capsys.readouterr().out
        assert "removed 2 section-memo entries" in output
        assert store.entries() == []

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])


class TestReportWorkers:
    def test_parallel_report_output_matches_serial(self, capsys):
        assert main(["report", "--days", "90", "--seed", "11", "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["report", "--days", "90", "--seed", "11", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # The banner names the worker count; everything below it must
        # be byte-identical.
        assert serial.split(" ...\n", 2)[2] == parallel.split(" ...\n", 2)[2]
