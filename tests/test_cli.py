"""The command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestSimulate:
    def test_simulate_exports_files(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--days", "3",
                "--seed", "3",
                "--dt", "3600",
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out" / "telemetry.csv").exists()
        assert (tmp_path / "out" / "ras.jsonl").exists()
        output = capsys.readouterr().out
        assert "telemetry rows" in output

    def test_exported_telemetry_reimports(self, tmp_path):
        from repro.telemetry.export import import_telemetry_csv

        main(
            [
                "simulate",
                "--days", "2",
                "--seed", "1",
                "--dt", "3600",
                "--out", str(tmp_path),
            ]
        )
        database = import_telemetry_csv(tmp_path / "telemetry.csv")
        assert database.num_samples == 48  # 2 days hourly


class TestReport:
    def test_report_prints_tables(self, capsys):
        code = main(["report", "--days", "120", "--seed", "11"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Fig 2" in output
        assert "paper=" in output
        assert "Fig 14" in output


class TestServeReplay:
    def test_unpaced_replay_prints_report(self, capsys):
        code = main(
            [
                "serve-replay",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "published 48 rows" in output
        assert "rollups:" in output
        assert "rollup buckets" in output
        assert "query cache" in output

    def test_faulted_replay_with_policy(self, capsys):
        code = main(
            [
                "serve-replay",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--inject-faults",
                "--policy", "coalesce",
                "--no-cusum",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "published 48 rows" in output
        assert "cusum" not in output


class TestQuery:
    def test_aggregate_query(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "power_kw",
                "--stat", "mean",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean(power_kw) [facility] =" in output
        assert "hits': 1" in output or '"hits": 1' in output or "'hits': 1" in output

    def test_series_query_scoped_to_row(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "inlet_temperature_f",
                "--kind", "series",
                "--scope", "row",
                "--row", "1",
                "--start-day", "0",
                "--end-day", "1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "resolution: 86400s" in output

    def test_unknown_channel_fails_cleanly(self, capsys):
        code = main(
            [
                "query",
                "--days", "2",
                "--seed", "3",
                "--dt", "3600",
                "--channel", "warp_core_temp",
            ]
        )
        assert code == 1
        assert "unknown channel" in capsys.readouterr().out
