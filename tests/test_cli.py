"""The command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestSimulate:
    def test_simulate_exports_files(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--days", "3",
                "--seed", "3",
                "--dt", "3600",
                "--out", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out" / "telemetry.csv").exists()
        assert (tmp_path / "out" / "ras.jsonl").exists()
        output = capsys.readouterr().out
        assert "telemetry rows" in output

    def test_exported_telemetry_reimports(self, tmp_path):
        from repro.telemetry.export import import_telemetry_csv

        main(
            [
                "simulate",
                "--days", "2",
                "--seed", "1",
                "--dt", "3600",
                "--out", str(tmp_path),
            ]
        )
        database = import_telemetry_csv(tmp_path / "telemetry.csv")
        assert database.num_samples == 48  # 2 days hourly


class TestReport:
    def test_report_prints_tables(self, capsys):
        code = main(["report", "--days", "120", "--seed", "11"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Fig 2" in output
        assert "paper=" in output
        assert "Fig 14" in output
