"""QueryEngine: offline equivalence, cache correctness, concurrency.

Acceptance contracts exercised here:

* streamed/rolled-up answers equal the offline
  ``EnvironmentalDatabase`` aggregates to 1e-9 — including the
  coverage-corrected facility totals on faulted data,
* cached answers are identical to uncached ones, and new data
  invalidates exactly the entries whose window it touches.
"""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.service import Query, QueryEngine, RollupStore
from repro.telemetry import nanstats
from repro.telemetry.records import Channel, Quality

DAY = float(timeutil.DAY_S)


@pytest.fixture(scope="module")
def faulted_store(faulted_result):
    return RollupStore.from_database(faulted_result.database)


@pytest.fixture
def engine(faulted_store):
    return QueryEngine(faulted_store)


def _span(result):
    return result.start_epoch_s, result.end_epoch_s


class TestOfflineEquivalence:
    @pytest.mark.parametrize(
        "channel", [Channel.POWER, Channel.FLOW, Channel.INLET_TEMPERATURE]
    )
    def test_facility_mean_matches_offline(
        self, faulted_result, engine, channel
    ):
        start, end = _span(faulted_result)
        answer = engine.execute(
            Query("aggregate", channel, start, end, stat="mean")
        )
        offline = nanstats.nanmean(faulted_result.database.channel(channel).values)
        np.testing.assert_allclose(answer.value, offline, rtol=1e-9)

    @pytest.mark.parametrize("stat", ["min", "max"])
    def test_facility_extrema_match_offline(self, faulted_result, engine, stat):
        start, end = _span(faulted_result)
        answer = engine.execute(
            Query("aggregate", Channel.POWER, start, end, stat=stat)
        )
        values = faulted_result.database.channel(Channel.POWER).values
        offline = nanstats.nanmin(values) if stat == "min" else nanstats.nanmax(values)
        np.testing.assert_allclose(answer.value, offline, rtol=1e-9)

    def test_covered_sum_series_matches_offline_faulted(
        self, faulted_result, engine
    ):
        """Coverage-corrected facility totals, streamed vs batch, 1e-9."""
        start, end = _span(faulted_result)
        answer = engine.execute(
            Query(
                "series",
                Channel.POWER,
                start,
                end,
                stat="covered_sum",
                resolution_s=300.0,
            )
        )
        _, offline_total = faulted_result.database._covered_sum(Channel.POWER)
        assert len(answer.values) == faulted_result.database.num_samples
        np.testing.assert_allclose(
            answer.values, offline_total, rtol=1e-9, equal_nan=True
        )

    def test_coverage_series_matches_offline(self, faulted_result, engine):
        start, end = _span(faulted_result)
        answer = engine.execute(
            Query(
                "series",
                Channel.POWER,
                start,
                end,
                stat="coverage",
                resolution_s=300.0,
            )
        )
        offline = faulted_result.database.coverage(Channel.POWER).values
        np.testing.assert_allclose(answer.values, offline, rtol=1e-9)
        # The faulted run actually exercises partial coverage.
        assert offline.min() < 1.0

    def test_raw_series_mean_matches_per_sample(self, faulted_result, engine):
        start = faulted_result.start_epoch_s
        end = start + 2 * DAY
        answer = engine.execute(
            Query(
                "series",
                Channel.POWER,
                start,
                end,
                stat="mean",
                resolution_s=300.0,
            )
        )
        db = faulted_result.database
        n = np.searchsorted(db.epoch_s, end)
        offline = nanstats.nanmean(db.channel(Channel.POWER).values[:n], axis=1)
        np.testing.assert_allclose(
            answer.values, offline, rtol=1e-9, equal_nan=True
        )

    def test_rack_scope_matches_offline_column(self, faulted_result, engine):
        start, end = _span(faulted_result)
        rack = 17
        answer = engine.execute(
            Query(
                "aggregate",
                Channel.OUTLET_TEMPERATURE,
                start,
                end,
                stat="mean",
                scope="rack",
                rack=rack,
            )
        )
        column = faulted_result.database.channel(
            Channel.OUTLET_TEMPERATURE
        ).values[:, rack]
        np.testing.assert_allclose(
            answer.value, nanstats.nanmean(column), rtol=1e-9
        )

    def test_row_scope_matches_offline_block(self, faulted_result, engine):
        start, end = _span(faulted_result)
        row = 1
        answer = engine.execute(
            Query(
                "aggregate",
                Channel.POWER,
                start,
                end,
                stat="mean",
                scope="row",
                row=row,
            )
        )
        lo = row * constants.RACKS_PER_ROW
        block = faulted_result.database.channel(Channel.POWER).values[
            :, lo : lo + constants.RACKS_PER_ROW
        ]
        np.testing.assert_allclose(
            answer.value, nanstats.nanmean(block), rtol=1e-9
        )

    def test_point_query_hits_the_raw_cell(self, faulted_result, engine):
        db = faulted_result.database
        index, rack = 100, 5
        epoch = float(db.epoch_s[index])
        answer = engine.execute(
            Query("point", Channel.POWER, epoch, stat="mean", scope="rack", rack=rack)
        )
        assert answer.resolution_s == 300.0
        cell = db.channel(Channel.POWER).values[index, rack]
        if np.isnan(cell):
            assert np.isnan(answer.value)
        else:
            np.testing.assert_allclose(answer.value, cell, rtol=1e-9)

    def test_window_snaps_to_coarsest_tiling_level(self, faulted_result, engine):
        start = faulted_result.start_epoch_s
        daily = engine.execute(
            Query("aggregate", Channel.POWER, start, start + 7 * DAY)
        )
        assert daily.resolution_s == 86_400.0
        hourly = engine.execute(
            Query("aggregate", Channel.POWER, start, start + 6 * 3600.0)
        )
        assert hourly.resolution_s == 3600.0

    def test_empty_window_is_nan_not_an_error(self, faulted_result, engine):
        end = faulted_result.end_epoch_s
        for stat in ("mean", "min", "max", "coverage", "covered_sum"):
            answer = engine.execute(
                Query(
                    "aggregate",
                    Channel.POWER,
                    end + DAY,
                    end + 2 * DAY,
                    stat=stat,
                )
            )
            assert np.isnan(answer.value)


class TestCaching:
    def test_cached_answer_identical_to_uncached(self, faulted_result, faulted_store):
        start, end = _span(faulted_result)
        query = Query("series", Channel.POWER, start, end, stat="mean")
        warm = QueryEngine(faulted_store)
        first = warm.execute(query)
        second = warm.execute(query)
        assert second is first  # the literal cached object
        cold = QueryEngine(faulted_store).execute(query)
        np.testing.assert_array_equal(first.values, cold.values)
        np.testing.assert_array_equal(first.epoch_s, cold.epoch_s)
        assert warm.counters.hits == 1
        assert warm.counters.misses == 1

    def test_lru_eviction_counted(self, faulted_result, faulted_store):
        start, _ = _span(faulted_result)
        engine = QueryEngine(faulted_store, cache_size=2)
        queries = [
            Query("aggregate", Channel.POWER, start, start + (i + 1) * DAY)
            for i in range(3)
        ]
        for query in queries:
            engine.execute(query)
        assert engine.counters.evictions == 1
        engine.execute(queries[0])  # evicted: recomputed, not served
        assert engine.counters.misses == 4
        assert engine.counters.hits == 0

    def test_new_data_invalidates_touched_windows_only(self):
        store = RollupStore(num_racks=4, resolutions_s=(300.0,))
        for i in range(12):
            store.add(i * 300.0, {Channel.POWER: np.full(4, 10.0)}, None)
        engine = QueryEngine(store)
        old = Query("aggregate", Channel.POWER, 0.0, 1800.0)
        live = Query("aggregate", Channel.POWER, 0.0, 7200.0)
        assert engine.execute(old).value == pytest.approx(10.0)
        assert engine.execute(live).value == pytest.approx(10.0)

        # Appending beyond the old window must keep it cached ...
        store.add(12 * 300.0, {Channel.POWER: np.full(4, 99.0)}, None)
        engine.execute(old)
        assert engine.counters.revalidations == 1
        assert engine.counters.invalidations == 0
        assert engine.counters.hits == 1

        # ... while the window covering the mutation recomputes.
        refreshed = engine.execute(live)
        assert engine.counters.invalidations == 1
        np.testing.assert_allclose(
            refreshed.value, (12 * 10.0 + 99.0) / 13.0, rtol=1e-12
        )

    def test_stale_beyond_history_recomputes(self):
        store = RollupStore(num_racks=4, resolutions_s=(300.0,))
        store.add(0.0, {Channel.POWER: np.full(4, 1.0)}, None)
        engine = QueryEngine(store)
        query = Query("aggregate", Channel.POWER, 0.0, 300.0)
        engine.execute(query)
        store.add(600.0, {Channel.POWER: np.full(4, 2.0)}, None)
        store._mutations.clear()  # history lost: must assume stale
        engine.execute(query)
        assert engine.counters.invalidations == 1

    def test_series_results_are_read_only(self, faulted_result, engine):
        start, end = _span(faulted_result)
        answer = engine.execute(
            Query("series", Channel.FLOW, start, end, stat="max")
        )
        with pytest.raises(ValueError):
            answer.values[0] = 0.0
        with pytest.raises(ValueError):
            answer.epoch_s[0] = 0.0

    def test_cache_info_shape(self, engine):
        info = engine.cache_info()
        assert set(info.as_dict()) == {
            "hits",
            "misses",
            "evictions",
            "invalidations",
            "revalidations",
            "entries",
            "capacity",
            "hit_rate",
        }
        # The legacy mapping-style read keeps working.
        assert info["hits"] == info.hits
        assert info.capacity == engine.cache_size

    def test_cache_info_hit_rate(self, faulted_result, engine):
        start, end = _span(faulted_result)
        query = Query("aggregate", Channel.POWER, start, end)
        engine.execute(query)
        engine.execute(query)
        info = engine.cache_info()
        assert info.hits == 1 and info.misses == 1
        assert info.hit_rate == pytest.approx(0.5)

    def test_execute_versioned_stamps_store_version(self, faulted_result, engine):
        start, end = _span(faulted_result)
        query = Query("aggregate", Channel.POWER, start, end)
        result, version = engine.execute_versioned(query)
        assert version == engine.store.version
        again, version_again = engine.execute_versioned(query)
        assert again is result and version_again == version


class TestConcurrency:
    def test_serve_many_matches_sequential(self, faulted_result, faulted_store):
        start, end = _span(faulted_result)
        queries = []
        for day in range(20):
            queries.append(
                Query(
                    "aggregate",
                    Channel.POWER,
                    start + day * DAY,
                    start + (day + 1) * DAY,
                    stat=("mean", "max", "coverage")[day % 3],
                )
            )
        concurrent = QueryEngine(faulted_store).serve_many(queries, workers=6)
        sequential = [QueryEngine(faulted_store).execute(q) for q in queries]
        assert len(concurrent) == len(queries)
        for got, want, query in zip(concurrent, sequential, queries):
            assert got.query == query
            np.testing.assert_allclose(
                got.value, want.value, rtol=1e-12, equal_nan=True
            )

    def test_serve_many_single_worker_and_empty(self, faulted_store):
        engine = QueryEngine(faulted_store)
        assert engine.serve_many([]) == []
        query = Query("aggregate", Channel.POWER, 0.0, 300.0)
        assert len(engine.serve_many([query], workers=1)) == 1


class TestValidation:
    def test_bad_queries_rejected(self):
        with pytest.raises(ValueError):
            Query("glance", Channel.POWER, 0.0, 1.0)
        with pytest.raises(ValueError):
            Query("aggregate", Channel.POWER, 0.0, 1.0, stat="mode")
        with pytest.raises(ValueError):
            Query("aggregate", Channel.POWER, 0.0, 1.0, scope="cabinet")
        with pytest.raises(ValueError):
            Query("aggregate", Channel.POWER, 0.0, 1.0, scope="rack")
        with pytest.raises(ValueError):
            Query("aggregate", Channel.POWER, 0.0, 1.0, scope="row")
        with pytest.raises(ValueError):
            Query("aggregate", Channel.POWER, 300.0, 300.0)

    def test_unknown_resolution_raises(self, engine):
        with pytest.raises(KeyError):
            engine.execute(
                Query("aggregate", Channel.POWER, 0.0, 600.0, resolution_s=123.0)
            )

    def test_bad_cache_size_rejected(self, faulted_store):
        with pytest.raises(ValueError):
            QueryEngine(faulted_store, cache_size=0)
