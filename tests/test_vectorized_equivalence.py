"""Vectorized analysis paths vs straightforward loop references.

The report-pipeline optimisation rewrote the per-rack / per-day /
per-event loops in the core analyses as group-by reductions and
searchsorted passes.  Each test here re-implements the original loop
in the most obvious way and checks the library path against it within
1e-12 relative (the reduceat summation order may differ from Python's
left-to-right accumulation by a few ULPs, never more).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import timeutil
from repro.core.aftermath import (
    analyze_aftermath,
    deduplicate_cmf_events,
    deduplicate_noncmf_events,
)
from repro.core.environment import ambient_spatial
from repro.core.leadup import (
    _AGGREGATE_CHANNELS,
    _summed_changes_batch,
    _summed_changes_loop,
)
from repro.core.spatial import row_means
from repro.core.trends import monthly_profiles, weekday_profiles
from repro.telemetry import nanstats
from repro.telemetry.series import _reduce_by_key, reduce_by_calendar

RTOL = 1e-12


def _loop_reduce(keys, values, reducer):
    """The pre-refactor per-key boolean-mask scan."""
    fn = {
        "mean": nanstats.nanmean,
        "median": nanstats.nanmedian,
        "sum": nanstats.nansum,
        "min": nanstats.nanmin,
        "max": nanstats.nanmax,
    }[reducer]
    out = {}
    for key in np.unique(keys):
        out[int(key)] = fn(values[keys == key], axis=0)
    return out


class TestGroupReduce:
    @pytest.fixture(scope="class")
    def noisy_matrix(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 9, size=400)
        values = rng.normal(50.0, 5.0, size=(400, 3))
        values[rng.random(values.shape) < 0.15] = np.nan
        values[keys == 7] = np.nan  # an all-NaN group
        return keys, values

    @pytest.mark.parametrize("reducer", ["mean", "median", "sum", "min", "max"])
    def test_matches_mask_scan(self, noisy_matrix, reducer):
        keys, values = noisy_matrix
        unique_keys, reduced = _reduce_by_key(keys, values, reducer)
        reference = _loop_reduce(keys, values, reducer)
        assert list(unique_keys) == sorted(reference)
        for i, key in enumerate(unique_keys):
            np.testing.assert_allclose(
                reduced[i], reference[int(key)], rtol=RTOL, equal_nan=True
            )

    def test_unknown_reducer_rejected(self, noisy_matrix):
        with pytest.raises(KeyError):
            _reduce_by_key(*noisy_matrix, reducer="mode")

    def test_unsorted_keys(self):
        keys = np.array([3, 1, 3, 2, 1, 3])
        values = np.arange(6, dtype="float64")
        unique_keys, reduced = _reduce_by_key(keys, values, "sum")
        assert list(unique_keys) == [1, 2, 3]
        np.testing.assert_allclose(reduced, [5.0, 3.0, 7.0])


class TestCalendarProfiles:
    def test_reduce_by_calendar_matches_loop(self, demo_result):
        series = demo_result.database.system_power_mw()
        by_month = reduce_by_calendar(series.epoch_s, series.values, "month", "median")
        months = np.array(
            [timeutil.from_epoch(t).month for t in series.epoch_s]
        )
        reference = _loop_reduce(months, series.values, "median")
        assert set(by_month) == set(reference)
        for key, value in by_month.items():
            np.testing.assert_allclose(value, reference[key], rtol=RTOL)

    def test_batched_profiles_match_single_channel(self, demo_result):
        from repro.telemetry.records import Channel

        channels = (None, Channel.UTILIZATION, Channel.FLOW)
        monthly = monthly_profiles(demo_result.database, channels)
        weekday = weekday_profiles(demo_result.database, channels)
        for j, channel in enumerate(channels):
            solo_m = monthly_profiles(demo_result.database, (channel,))[0]
            solo_w = weekday_profiles(demo_result.database, (channel,))[0]
            assert monthly[j].by_month == solo_m.by_month
            assert weekday[j].by_weekday == solo_w.by_weekday


class TestSpatial:
    def test_row_means_matches_loop(self):
        from repro import constants

        rng = np.random.default_rng(3)
        profile = rng.normal(90.0, 4.0, constants.NUM_RACKS)
        expected = []
        for row in range(constants.NUM_ROWS):
            lo = row * constants.RACKS_PER_ROW
            expected.append(float(np.mean(profile[lo : lo + constants.RACKS_PER_ROW])))
        np.testing.assert_allclose(row_means(profile), expected, rtol=RTOL)


class TestEnvironment:
    def test_row_end_effect_matches_loop(self, demo_result):
        from repro import constants
        from repro.facility.topology import RackId

        spatial = ambient_spatial(demo_result.database)
        edge_racks = 3

        def _delta(per_rack):
            end_vals, center_vals = [], []
            for flat, value in enumerate(per_rack):
                col = RackId.from_flat_index(flat).col
                is_end = (
                    col < edge_racks
                    or col >= constants.RACKS_PER_ROW - edge_racks
                )
                (end_vals if is_end else center_vals).append(value)
            return np.mean(end_vals) - np.mean(center_vals)

        got_temp, got_humidity = spatial.row_end_effect(edge_racks)
        np.testing.assert_allclose(got_temp, _delta(spatial.temperature_f), rtol=RTOL)
        np.testing.assert_allclose(
            got_humidity, _delta(spatial.humidity_rh), rtol=RTOL
        )

    def test_hotspots_match_loop(self, demo_result):
        from repro import constants
        from repro.facility.topology import RackId

        spatial = ambient_spatial(demo_result.database)
        threshold = 0.10
        grid = np.asarray(spatial.humidity_rh).reshape(
            constants.NUM_ROWS, constants.RACKS_PER_ROW
        )
        expected = []
        for row in range(constants.NUM_ROWS):
            center = grid[row, 4 : constants.RACKS_PER_ROW - 4]
            median = float(np.median(center))
            for j, value in enumerate(center):
                if value < median * (1.0 - threshold):
                    expected.append(RackId(row, j + 4))
        assert list(spatial.hotspots(threshold)) == expected


class TestAftermath:
    def test_matches_event_loop(self, year_result):
        ras_log = year_result.ras_log
        analysis = analyze_aftermath(ras_log)

        # The original event-at-a-time reference.
        cmfs = deduplicate_cmf_events(ras_log)
        noncmfs = deduplicate_noncmf_events(ras_log)
        cmf_times = cmfs.times()
        buckets = sorted(analysis.relative_rates)
        max_window_h = max(buckets)
        lags, categories = [], {}
        for event in noncmfs.events:
            i = int(np.searchsorted(cmf_times, event.epoch_s, side="right")) - 1
            if i < 0:
                continue
            lag_h = (event.epoch_s - cmf_times[i]) / timeutil.HOUR_S
            if lag_h <= 0 or lag_h > max_window_h:
                continue
            lags.append(lag_h)
            categories[event.category] = categories.get(event.category, 0) + 1

        previous = 0.0
        raw_rates = []
        for window_h in buckets:
            in_bucket = sum(1 for lag in lags if previous < lag <= window_h)
            raw_rates.append(in_bucket / (window_h - previous))
            previous = window_h
        base = raw_rates[0] if raw_rates[0] > 0 else 1.0
        for window_h, raw in zip(buckets, raw_rates):
            np.testing.assert_allclose(
                analysis.relative_rates[window_h], raw / base, rtol=RTOL
            )

        total = max(1, sum(categories.values()))
        assert set(analysis.category_mix) == set(categories)
        for name, count in categories.items():
            np.testing.assert_allclose(
                analysis.category_mix[name], count / total, rtol=RTOL
            )


class TestLeadupBatch:
    def test_batch_matches_loop(self, year_windows):
        from repro.core.prediction import stack_windows

        positives, _ = year_windows
        leads_h = (12.0, 6.0, 3.0, 1.0, 0.5, 0.25, 0.0)
        baseline_lead_h = 12.0
        stack = stack_windows(positives)
        assert stack is not None
        batch = _summed_changes_batch(stack, leads_h, baseline_lead_h)
        loop = _summed_changes_loop(positives, leads_h, baseline_lead_h)
        assert set(batch) == set(_AGGREGATE_CHANNELS)
        for channel in _AGGREGATE_CHANNELS:
            np.testing.assert_allclose(
                batch[channel], loop[channel], rtol=1e-9, equal_nan=True
            )
