"""The midplane allocator."""

import numpy as np
import pytest

from repro import constants
from repro.scheduler.allocator import (
    MIDPLANES_PER_RACK,
    MidplaneAllocator,
    TOTAL_MIDPLANES,
    rack_of_midplane,
)
from repro.scheduler.jobs import Job
from repro.scheduler.queues import QueueName


def _job(job_id, midplanes, queue=QueueName.PROD_SHORT):
    return Job(
        job_id=job_id,
        project=None,
        queue=queue,
        midplanes=midplanes,
        walltime_s=3600.0,
        intensity=1.0,
        submit_epoch_s=0.0,
    )


@pytest.fixture
def allocator():
    return MidplaneAllocator(rng=np.random.default_rng(2))


class TestMapping:
    def test_rack_of_midplane(self):
        assert rack_of_midplane(0) == 0
        assert rack_of_midplane(1) == 0
        assert rack_of_midplane(2) == 1
        assert rack_of_midplane(95) == 47

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rack_of_midplane(96)

    def test_total_midplanes(self):
        assert TOTAL_MIDPLANES == 96


class TestAllocation:
    def test_allocate_and_release(self, allocator):
        job = _job(1, 4)
        placement = allocator.try_allocate(job)
        assert placement is not None and len(placement) == 4
        job.start(0.0, placement)
        assert allocator.free_count() == TOTAL_MIDPLANES - 4
        allocator.release(job)
        assert allocator.free_count() == TOTAL_MIDPLANES

    def test_full_machine_job(self, allocator):
        job = _job(1, 96)
        placement = allocator.try_allocate(job)
        assert placement is not None
        assert allocator.free_count() == 0

    def test_oversubscription_returns_none(self, allocator):
        first = _job(1, 96)
        first.start(0.0, allocator.try_allocate(first))
        assert allocator.try_allocate(_job(2, 1)) is None

    def test_no_double_allocation(self, allocator):
        a = _job(1, 48)
        b = _job(2, 48)
        pa = allocator.try_allocate(a)
        pb = allocator.try_allocate(b)
        assert set(pa).isdisjoint(set(pb))

    def test_release_requires_ownership(self, allocator):
        a = _job(1, 2)
        a.start(0.0, allocator.try_allocate(a))
        allocator.release(a)
        with pytest.raises(ValueError):
            allocator.release(a)  # double release

    def test_claim_specific(self, allocator):
        allocator.claim(99, (10, 11))
        assert allocator.midplane_owners()[10] == 99
        with pytest.raises(ValueError):
            allocator.claim(100, (10,))


class TestPlacementPolicy:
    def test_prod_long_lands_in_row_zero(self, allocator):
        job = _job(1, 8, queue=QueueName.PROD_LONG)
        placement = allocator.try_allocate(job)
        rows = {rack_of_midplane(mp) // constants.RACKS_PER_ROW for mp in placement}
        assert rows == {0}

    def test_prod_short_avoids_row_zero(self, allocator):
        job = _job(1, 8, queue=QueueName.PROD_SHORT)
        placement = allocator.try_allocate(job)
        rows = {rack_of_midplane(mp) // constants.RACKS_PER_ROW for mp in placement}
        assert 0 not in rows

    def test_prod_short_spills_into_row_zero_when_full(self, allocator):
        blocker = _job(1, 64, queue=QueueName.PROD_SHORT)
        blocker.start(0.0, allocator.try_allocate(blocker))
        job = _job(2, 8, queue=QueueName.PROD_SHORT)
        placement = allocator.try_allocate(job)
        assert placement is not None  # spilled into row 0

    def test_affinity_prefers_0A_for_long_jobs(self, allocator):
        # Across many fresh allocators, (0, A) appears in the first
        # long-job placement far more often than a baseline rack.
        hits_0a, hits_baseline = 0, 0
        target = constants.HIGHEST_UTILIZATION_RACK[0] * 16 + (
            constants.HIGHEST_UTILIZATION_RACK[1]
        )
        for seed in range(30):
            fresh = MidplaneAllocator(rng=np.random.default_rng(seed))
            job = _job(1, 8, queue=QueueName.PROD_LONG)
            racks = {rack_of_midplane(mp) for mp in fresh.try_allocate(job)}
            hits_0a += target in racks
            hits_baseline += 3 in racks  # rack (0, 3), no affinity
        assert hits_0a > hits_baseline


class TestBlocking:
    def test_blocked_racks_not_allocatable(self, allocator):
        allocator.block_racks(range(48))
        assert allocator.try_allocate(_job(1, 1)) is None

    def test_unblock_restores(self, allocator):
        allocator.block_racks([0, 1])
        allocator.unblock_racks([0, 1])
        assert allocator.free_count() == TOTAL_MIDPLANES

    def test_blocked_racks_listed(self, allocator):
        allocator.block_racks([5, 9])
        assert allocator.blocked_racks == (5, 9)

    def test_block_does_not_evict_running(self, allocator):
        job = _job(1, 2)
        job.start(0.0, allocator.try_allocate(job))
        allocator.block_racks([rack_of_midplane(job.assigned_midplanes[0])])
        # Still owned; release works normally.
        allocator.release(job)


class TestOccupancy:
    def test_rack_occupancy_fractions(self, allocator):
        allocator.claim(1, (0,))  # half of rack 0
        allocator.claim(2, (2, 3))  # all of rack 1
        occupancy = allocator.rack_occupancy()
        assert occupancy[0] == pytest.approx(0.5)
        assert occupancy[1] == pytest.approx(1.0)
        assert occupancy[2] == pytest.approx(0.0)
