"""The air-cooled ION racks."""

import numpy as np
import pytest

from repro import constants
from repro.facility.ion import IonPark, IonRack


class TestIonRack:
    def test_power_scales_with_utilization(self):
        rack = IonRack(row=0, position=0)
        assert rack.power_kw(1.0) > rack.power_kw(0.0)
        assert rack.power_kw(0.0) == rack.base_kw

    def test_bad_utilization_rejected(self):
        rack = IonRack(row=0, position=0)
        with pytest.raises(ValueError):
            rack.power_kw(1.5)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            IonRack(row=3, position=0)
        with pytest.raises(ValueError):
            IonRack(row=0, position=2)

    def test_label(self):
        assert IonRack(row=1, position=0).label == "ION(1, L)"
        assert IonRack(row=2, position=1).label == "ION(2, R)"


class TestIonPark:
    def test_six_racks_two_per_row(self):
        park = IonPark()
        assert len(park) == 6
        rows = [rack.row for rack in park.racks]
        for row in range(constants.NUM_ROWS):
            assert rows.count(row) == constants.ION_RACKS_PER_ROW

    def test_total_power_scalar(self):
        park = IonPark()
        idle = float(park.total_power_kw(0.0))
        busy = float(park.total_power_kw(0.9))
        assert busy > idle
        assert 100 < idle < 250

    def test_total_power_vectorized(self):
        park = IonPark()
        utilization = np.array([0.0, 0.5, 1.0])
        powers = park.total_power_kw(utilization)
        assert powers.shape == (3,)
        assert np.all(np.diff(powers) > 0)

    def test_heat_equals_power(self):
        park = IonPark()
        assert float(park.air_heat_load_kw(0.7)) == float(park.total_power_kw(0.7))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IonPark().total_power_kw(np.array([0.5, 1.2]))
