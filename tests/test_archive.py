"""The memory-mapped telemetry archive."""

import json

import numpy as np
import pytest

from repro.core.trends import coolant_trends, yearly_trends
from repro.telemetry.archive import ArchiveError, TelemetryArchive
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel


class TestRoundtrip:
    def test_values_identical(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch")
        assert restored.num_samples == demo_result.database.num_samples
        for channel in Channel:
            original = demo_result.database.channel(channel).values
            back = restored.channel(channel).values
            assert np.array_equal(original, back, equal_nan=True)

    def test_analyses_run_on_archive(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch")
        live = coolant_trends(demo_result.database)
        archived = coolant_trends(restored)
        assert archived.inlet_mean_f == pytest.approx(live.inlet_mean_f)
        assert archived.flow_std_gpm == pytest.approx(live.flow_std_gpm)

    def test_memory_mapped_by_default(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch")
        assert isinstance(
            restored.channel(Channel.POWER).values.base, np.memmap
        ) or isinstance(restored.channel(Channel.POWER).values, np.memmap)

    def test_eager_load_option(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch", mmap=False)
        values = restored.channel(Channel.POWER).values
        assert not isinstance(values, np.memmap)


class TestReadOnly:
    def test_append_rejected(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch")
        with pytest.raises(TypeError):
            restored.append_snapshot(0.0, {})

    def test_compact_is_noop(self, demo_result, tmp_path):
        TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        restored = TelemetryArchive.load(tmp_path / "arch")
        restored.compact()
        assert restored.num_samples == demo_result.database.num_samples


class TestValidation:
    def test_empty_database_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryArchive.save(EnvironmentalDatabase(), tmp_path / "arch")

    def test_missing_manifest_rejected(self, tmp_path):
        (tmp_path / "arch").mkdir()
        with pytest.raises(FileNotFoundError):
            TelemetryArchive.load(tmp_path / "arch")

    def test_version_mismatch_rejected(self, demo_result, tmp_path):
        root = TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            TelemetryArchive.load(root)

    def test_shape_mismatch_rejected(self, demo_result, tmp_path):
        root = TelemetryArchive.save(demo_result.database, tmp_path / "arch")
        np.save(root / "power_kw.npy", np.zeros((3, 3)))
        with pytest.raises(ValueError):
            TelemetryArchive.load(root)


class TestManifestChannelValidation:
    """Satellite: manifest-vs-disk cross-checks name the offending column."""

    def _saved(self, demo_result, tmp_path):
        return TelemetryArchive.save(demo_result.database, tmp_path / "arch")

    def test_channel_missing_from_manifest(self, demo_result, tmp_path):
        root = self._saved(demo_result, tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["channels"].remove("flow_gpm")
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="flow_gpm"):
            TelemetryArchive.load(root)

    def test_unknown_channel_in_manifest(self, demo_result, tmp_path):
        root = self._saved(demo_result, tmp_path)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["channels"].append("plasma_flux")
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="plasma_flux"):
            TelemetryArchive.load(root)

    def test_missing_column_file(self, demo_result, tmp_path):
        root = self._saved(demo_result, tmp_path)
        (root / "inlet_temperature_f.npy").unlink()
        with pytest.raises(ArchiveError, match="inlet_temperature_f"):
            TelemetryArchive.load(root)

    def test_missing_epoch_file(self, demo_result, tmp_path):
        root = self._saved(demo_result, tmp_path)
        (root / "epoch_s.npy").unlink()
        with pytest.raises(ArchiveError, match="epoch_s"):
            TelemetryArchive.load(root)

    def test_archive_error_is_value_error(self):
        # The dataset cache catches ValueError to rebuild corrupt
        # entries; ArchiveError must ride that path.
        assert issubclass(ArchiveError, ValueError)

    def test_source_dir_recorded(self, demo_result, tmp_path):
        root = self._saved(demo_result, tmp_path)
        restored = TelemetryArchive.load(root)
        assert restored.source_dir == root
