"""Canonical dataset contracts: caching, determinism, coverage."""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.simulation import FacilityEngine, MiraScenario
from repro.simulation.datasets import canonical_dataset, small_dataset
from repro.telemetry.records import Channel


class TestMemoization:
    def test_canonical_memoized(self, full_result):
        assert canonical_dataset() is full_result or canonical_dataset() is canonical_dataset()

    def test_small_memoized(self, demo_result):
        assert small_dataset() is demo_result or small_dataset() is small_dataset()


class TestCanonicalCoverage:
    def test_covers_full_production_period(self, full_result):
        assert full_result.config.start == constants.PRODUCTION_START
        assert full_result.config.end == constants.PRODUCTION_END
        years = set(timeutil.years(full_result.database.epoch_s))
        assert years == set(range(2014, 2020))

    def test_hourly_cadence(self, full_result):
        gaps = np.diff(full_result.database.epoch_s)
        assert np.allclose(gaps, 3600.0)

    def test_full_failure_schedule(self, full_result):
        assert len(full_result.schedule.events) == constants.TOTAL_CMFS

    def test_sample_count(self, full_result):
        expected = int(
            (full_result.end_epoch_s - full_result.start_epoch_s) / 3600.0
        )
        assert full_result.database.num_samples == expected


class TestDeterminism:
    def test_rebuild_matches_cached(self, full_result):
        """A fresh engine with the canonical config reproduces the
        cached realization bit-for-bit (the no-wall-clock guarantee)."""
        fresh = FacilityEngine(MiraScenario.full_study()).run()
        for channel in (Channel.POWER, Channel.FLOW, Channel.DC_HUMIDITY):
            assert np.array_equal(
                fresh.database.channel(channel).values,
                full_result.database.channel(channel).values,
                equal_nan=True,
            )
        assert len(fresh.ras_log) == len(full_result.ras_log)
        assert [e.epoch_s for e in fresh.schedule.events] == [
            e.epoch_s for e in full_result.schedule.events
        ]
