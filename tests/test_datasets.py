"""Canonical dataset contracts: caching, determinism, coverage."""

import json

import numpy as np
import pytest

from repro import constants, timeutil
from repro.simulation import FacilityEngine, MiraScenario
from repro import __version__
from repro.simulation.datasets import (
    CACHE_DIR_ENV,
    CACHE_ENV,
    _config_digest,
    build_dataset,
    cache_entries,
    cache_root,
    canonical_dataset,
    clear_cache,
    materialize_archive,
    result_from_archive,
    small_dataset,
)
from repro.telemetry.records import CHANNELS, Channel


class TestMemoization:
    def test_canonical_memoized(self, full_result):
        assert canonical_dataset() is full_result or canonical_dataset() is canonical_dataset()

    def test_small_memoized(self, demo_result):
        assert small_dataset() is demo_result or small_dataset() is small_dataset()


class TestCanonicalCoverage:
    def test_covers_full_production_period(self, full_result):
        assert full_result.config.start == constants.PRODUCTION_START
        assert full_result.config.end == constants.PRODUCTION_END
        years = set(timeutil.years(full_result.database.epoch_s))
        assert years == set(range(2014, 2020))

    def test_hourly_cadence(self, full_result):
        gaps = np.diff(full_result.database.epoch_s)
        assert np.allclose(gaps, 3600.0)

    def test_full_failure_schedule(self, full_result):
        assert len(full_result.schedule.events) == constants.TOTAL_CMFS

    def test_sample_count(self, full_result):
        expected = int(
            (full_result.end_epoch_s - full_result.start_epoch_s) / 3600.0
        )
        assert full_result.database.num_samples == expected


class TestDiskCache:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(CACHE_ENV, raising=False)
        return tmp_path

    @pytest.fixture
    def tiny_config(self):
        return MiraScenario.demo(days=3, seed=5)

    def test_cache_root_honors_env(self, cache_dir):
        assert cache_root() == cache_dir

    def test_second_build_loads_identical_telemetry(self, cache_dir, tiny_config):
        first = build_dataset(tiny_config)
        entry = cache_dir / _config_digest(tiny_config)
        assert (entry / "result.json").exists()
        second = build_dataset(tiny_config)
        assert np.array_equal(first.database.epoch_s, second.database.epoch_s)
        for channel in CHANNELS:
            assert np.array_equal(
                first.database.channel(channel).values,
                second.database.channel(channel).values,
                equal_nan=True,
            )
        assert second.jobs_completed == first.jobs_completed
        assert second.jobs_killed == first.jobs_killed
        # The failure schedule is rebuilt, not persisted, and must match.
        assert [e.epoch_s for e in second.schedule.events] == [
            e.epoch_s for e in first.schedule.events
        ]

    def test_opt_out_skips_disk(self, cache_dir, tiny_config, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "0")
        build_dataset(tiny_config)
        assert not any(cache_dir.iterdir())

    def test_corrupt_entry_falls_back_to_rebuild(self, cache_dir, tiny_config):
        build_dataset(tiny_config)
        entry = cache_dir / _config_digest(tiny_config)
        (entry / "result.json").write_text("{not json")
        rebuilt = build_dataset(tiny_config)
        # demo() runs at 30-minute cadence: 48 samples per day.
        assert rebuilt.database.num_samples == 3 * 48

    def test_manifest_written_with_entry(self, cache_dir, tiny_config):
        build_dataset(tiny_config)
        entry = cache_dir / _config_digest(tiny_config)
        meta = json.loads((entry / "result.json").read_text())
        files = meta["files"]
        assert files  # every telemetry column is covered
        for rel, digest in files.items():
            assert (entry / rel).is_file()
            assert len(digest) == 64  # sha256 hex

    def test_corrupt_column_quarantined_and_rematerialized(
        self, cache_dir, tiny_config
    ):
        first = build_dataset(tiny_config)
        entry = cache_dir / _config_digest(tiny_config)
        meta = json.loads((entry / "result.json").read_text())
        victim = entry / sorted(meta["files"])[0]
        victim.write_bytes(victim.read_bytes()[:-4] + b"\xde\xad\xbe\xef")
        rebuilt = build_dataset(tiny_config)
        # The bad entry moved aside; a clean one took its place.
        quarantined = [
            c for c in cache_dir.iterdir() if c.name.startswith(".quarantine-")
        ]
        assert len(quarantined) == 1
        assert (entry / "result.json").exists()
        assert np.array_equal(
            rebuilt.database.epoch_s, first.database.epoch_s
        )
        for channel in CHANNELS:
            assert np.array_equal(
                rebuilt.database.channel(channel).values,
                first.database.channel(channel).values,
                equal_nan=True,
            )

    def test_legacy_entry_without_manifest_still_loads(
        self, cache_dir, tiny_config
    ):
        first = build_dataset(tiny_config)
        entry = cache_dir / _config_digest(tiny_config)
        meta = json.loads((entry / "result.json").read_text())
        del meta["files"]  # what a pre-1.5 release wrote
        (entry / "result.json").write_text(json.dumps(meta))
        second = build_dataset(tiny_config)
        assert not any(
            c.name.startswith(".quarantine-") for c in cache_dir.iterdir()
        )
        assert np.array_equal(
            second.database.epoch_s, first.database.epoch_s
        )

    def test_digest_separates_configs_and_versions(self, tiny_config, monkeypatch):
        other = MiraScenario.demo(days=3, seed=6)
        before = _config_digest(tiny_config)
        assert before != _config_digest(other)
        import repro.simulation.datasets as datasets

        monkeypatch.setattr(datasets, "__version__", "0.0.0-test")
        assert _config_digest(tiny_config) != before


class TestDeterminism:
    def test_rebuild_matches_cached(self, full_result):
        """A fresh engine with the canonical config reproduces the
        cached realization bit-for-bit (the no-wall-clock guarantee)."""
        fresh = FacilityEngine(MiraScenario.full_study()).run()
        for channel in (Channel.POWER, Channel.FLOW, Channel.DC_HUMIDITY):
            assert np.array_equal(
                fresh.database.channel(channel).values,
                full_result.database.channel(channel).values,
                equal_nan=True,
            )
        assert len(fresh.ras_log) == len(full_result.ras_log)
        assert [e.epoch_s for e in fresh.schedule.events] == [
            e.epoch_s for e in full_result.schedule.events
        ]


class TestCacheManagement:
    """Satellite: the helpers behind ``repro cache info`` / ``clear``."""

    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(CACHE_ENV, raising=False)
        return tmp_path

    def test_empty_cache_lists_nothing(self, cache_dir):
        assert cache_entries() == []
        assert clear_cache() == 0

    def test_entries_describe_builds(self, cache_dir):
        result = build_dataset(MiraScenario.demo(days=3, seed=5))
        entries = cache_entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.digest == _config_digest(result.config)
        assert entry.version == __version__
        assert entry.size_bytes > 0
        assert entry.size_mb == pytest.approx(entry.size_bytes / 1e6)

    def test_clear_removes_entries(self, cache_dir):
        build_dataset(MiraScenario.demo(days=3, seed=5))
        build_dataset(MiraScenario.demo(days=3, seed=6))
        assert clear_cache() == 2
        assert cache_entries() == []

    def test_quarantined_entries_hidden_and_swept(self, cache_dir):
        config = MiraScenario.demo(days=3, seed=5)
        build_dataset(config)
        entry = cache_dir / _config_digest(config)
        entry.rename(cache_dir / f".quarantine-{entry.name}-test")
        # Not listed as a live entry, but clear_cache sweeps it.
        assert cache_entries() == []
        assert clear_cache() == 0
        assert not any(cache_dir.iterdir())

    def test_materialize_archive_spills_and_reuses(self, cache_dir):
        result = build_dataset(MiraScenario.demo(days=3, seed=5))
        archive = materialize_archive(result)
        assert archive is not None
        again = materialize_archive(result)
        assert again == archive

    def test_materialize_archive_refuses_faulted(self, cache_dir):
        import dataclasses as dc

        from repro.faults import FaultConfig

        config = dc.replace(MiraScenario.demo(days=3, seed=5), faults=FaultConfig())
        result = FacilityEngine(config).run()
        assert materialize_archive(result) is None

    def test_archive_roundtrip_is_bit_exact(self, cache_dir):
        result = build_dataset(MiraScenario.demo(days=3, seed=5))
        archive = materialize_archive(result)
        restored = result_from_archive(result.config, archive)
        assert np.array_equal(
            restored.database.epoch_s, result.database.epoch_s
        )
        for channel in CHANNELS:
            assert np.array_equal(
                restored.database.channel(channel).values,
                result.database.channel(channel).values,
                equal_nan=True,
            )
