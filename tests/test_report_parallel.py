"""The parallel figure pipeline: full_report fanned over a process pool.

The contract under test is bit-identity: the report assembled from any
worker count — including the zero-copy archive-path fan-out and the
sharded window synthesis — must equal the serial report row for row.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiments import (
    FIG12_TITLE,
    FIG13_TITLE,
    SECTION_BUILDERS,
    _chunk_bounds,
    _result_spec,
    full_report,
)
from repro.simulation.windows import WindowSynthesizer


def _assert_windows_equal(a, b):
    assert a.rack_id == b.rack_id
    assert a.end_epoch_s == b.end_epoch_s
    assert a.is_positive == b.is_positive
    assert np.array_equal(a.epoch_s, b.epoch_s)
    assert set(a.channels) == set(b.channels)
    for channel, values in a.channels.items():
        assert np.array_equal(values, b.channels[channel], equal_nan=True), channel


def _rows_equal(a, b):
    # Bit-identity with NaN treated as equal to itself (a NaN
    # measurement must stay NaN at every worker count).
    values_match = a.measured_value == b.measured_value or (
        np.isnan(a.measured_value) and np.isnan(b.measured_value)
    )
    return (
        values_match
        and a.figure == b.figure
        and a.metric == b.metric
        and a.paper_value == b.paper_value
        and a.unit == b.unit
    )


def _assert_reports_equal(reference, other):
    assert list(reference) == list(other)
    for title in reference:
        ref_rows, got_rows = reference[title], other[title]
        assert len(ref_rows) == len(got_rows), title
        for ref, got in zip(ref_rows, got_rows):
            assert _rows_equal(ref, got), f"{title}: {ref} != {got}"


class TestParallelEqualsSerial:
    def test_sections_identical_across_worker_counts(self, demo_result):
        serial = full_report(demo_result, workers=1)
        for workers in (2, 4):
            _assert_reports_equal(serial, full_report(demo_result, workers=workers))

    def test_synthesized_windows_identical(self, demo_result):
        serial = full_report(demo_result, workers=1, synthesize_windows=True)
        assert FIG12_TITLE in serial and FIG13_TITLE in serial
        parallel = full_report(demo_result, workers=4, synthesize_windows=True)
        _assert_reports_equal(serial, parallel)

    def test_faulted_result_falls_back_inline(self, faulted_result):
        # Fault-injected runs cannot be archived (quality masks are not
        # part of the format); the spec must degrade to inline pickling
        # and the report must still be worker-count invariant.
        assert _result_spec(faulted_result, workers=4)[0] == "inline"
        serial = full_report(faulted_result, workers=1)
        _assert_reports_equal(serial, full_report(faulted_result, workers=4))

    def test_section_order_is_canonical(self, demo_result):
        sections = full_report(demo_result, workers=2)
        assert list(sections) == [title for title, _ in SECTION_BUILDERS]

    def test_prebuilt_windows_still_accepted(self, year_result, year_windows):
        positives, negatives = year_windows
        serial = full_report(year_result, positives, negatives, workers=1)
        parallel = full_report(year_result, positives, negatives, workers=2)
        _assert_reports_equal(serial, parallel)


class TestResultSpec:
    def test_single_worker_is_inline(self, demo_result):
        kind, payload = _result_spec(demo_result, workers=1)
        assert kind == "inline"
        assert payload is demo_result

    def test_pool_gets_archive_path(self, demo_result):
        # small_dataset is disk-cached, so its telemetry already lives
        # in an archive directory — the spec carries the path, not the
        # matrices.
        spec = _result_spec(demo_result, workers=4)
        assert spec[0] == "archive"
        assert isinstance(spec[2], str)


class TestChunkBounds:
    def test_covers_range_without_overlap(self):
        for total, chunks in ((10, 3), (7, 7), (5, 16), (361, 8)):
            bounds = _chunk_bounds(total, chunks)
            flat = [i for lo, hi in bounds for i in range(lo, hi)]
            assert flat == list(range(total))

    def test_empty_range(self):
        assert _chunk_bounds(0, 4) == []

    def test_chunks_capped_at_total(self):
        assert len(_chunk_bounds(3, 100)) == 3


class TestSlicedSynthesis:
    """Window i's noise depends only on its index, so any sharding of
    the synthesis concatenates to the exact full-list output."""

    def test_positive_slices_concatenate(self, demo_result):
        synthesizer = WindowSynthesizer(demo_result)
        full = synthesizer.positive_windows()
        assert full, "demo dataset should have eligible CMFs"
        split = len(full) // 2
        halves = synthesizer.positive_windows(0, split) + synthesizer.positive_windows(
            split
        )
        assert len(halves) == len(full)
        for a, b in zip(full, halves):
            _assert_windows_equal(a, b)

    def test_negative_slices_concatenate(self, demo_result):
        synthesizer = WindowSynthesizer(demo_result)
        count = len(synthesizer.positive_windows())
        full = synthesizer.negative_windows(count)
        split = count // 2
        halves = synthesizer.negative_windows(
            count, lo=0, hi=split
        ) + synthesizer.negative_windows(count, lo=split)
        assert len(halves) == len(full)
        for a, b in zip(full, halves):
            _assert_windows_equal(a, b)

    def test_resynthesis_is_deterministic(self, demo_result):
        synthesizer = WindowSynthesizer(demo_result)
        first = synthesizer.positive_windows()
        second = WindowSynthesizer(demo_result).positive_windows()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            _assert_windows_equal(a, b)
