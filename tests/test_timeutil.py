"""Vectorized calendar helpers."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil


class TestEpochConversions:
    def test_epoch_zero(self):
        assert timeutil.to_epoch(dt.datetime(1970, 1, 1)) == 0.0

    def test_roundtrip(self):
        when = dt.datetime(2016, 7, 1, 9, 30)
        assert timeutil.from_epoch(timeutil.to_epoch(when)) == when

    def test_known_epoch(self):
        assert timeutil.to_epoch(dt.datetime(2014, 1, 1)) == 1_388_534_400.0


class TestCalendarFields:
    def test_years(self):
        epochs = [timeutil.to_epoch(dt.datetime(y, 6, 15)) for y in (2014, 2017, 2019)]
        assert list(timeutil.years(np.array(epochs))) == [2014, 2017, 2019]

    def test_months(self):
        epochs = [
            timeutil.to_epoch(dt.datetime(2015, m, 10)) for m in (1, 6, 12)
        ]
        assert list(timeutil.months(np.array(epochs))) == [1, 6, 12]

    def test_weekdays(self):
        # 2014-01-01 was a Wednesday (weekday 2); 2014-01-06 a Monday.
        wednesday = timeutil.to_epoch(dt.datetime(2014, 1, 1))
        monday = timeutil.to_epoch(dt.datetime(2014, 1, 6))
        assert int(timeutil.weekdays(wednesday)) == 2
        assert int(timeutil.weekdays(monday)) == 0

    def test_hours_of_day(self):
        epoch = timeutil.to_epoch(dt.datetime(2015, 3, 3, 14, 59))
        assert int(timeutil.hours_of_day(epoch)) == 14

    def test_days_of_year(self):
        assert int(timeutil.days_of_year(timeutil.to_epoch(dt.datetime(2015, 1, 1)))) == 1
        assert int(timeutil.days_of_year(timeutil.to_epoch(dt.datetime(2015, 12, 31)))) == 365
        # Leap year.
        assert int(timeutil.days_of_year(timeutil.to_epoch(dt.datetime(2016, 12, 31)))) == 366

    def test_fractional_year(self):
        start = timeutil.to_epoch(dt.datetime(2015, 1, 1))
        mid = timeutil.to_epoch(dt.datetime(2015, 7, 2))
        frac = timeutil.fractional_year(np.array([start, mid]))
        assert frac[0] == pytest.approx(2015.0)
        assert frac[1] == pytest.approx(2015.5, abs=0.01)


class TestTimeGrid:
    def test_grid_spacing(self):
        grid = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2014, 1, 2), 3600.0
        )
        assert len(grid) == 24
        assert np.allclose(np.diff(grid), 3600.0)

    def test_grid_starts_at_start(self):
        grid = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2014, 1, 2), 300.0
        )
        assert grid[0] == timeutil.to_epoch(dt.datetime(2014, 1, 1))

    def test_grid_excludes_end(self):
        grid = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2014, 1, 2), 3600.0
        )
        assert grid[-1] < timeutil.to_epoch(dt.datetime(2014, 1, 2))

    def test_monitor_cadence_count(self):
        # 300 s cadence over one day: 288 samples.
        grid = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2014, 1, 2), 300.0
        )
        assert len(grid) == 288

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            timeutil.time_grid(dt.datetime(2015, 1, 1), dt.datetime(2015, 1, 1), 60.0)

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            timeutil.time_grid(dt.datetime(2015, 1, 1), dt.datetime(2015, 1, 2), 0.0)
