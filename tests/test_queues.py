"""Queue routing policy."""

import pytest

from repro.scheduler.queues import QueueName, queue_for_walltime


class TestQueuePolicy:
    def test_prod_long_prefers_row_zero(self):
        assert QueueName.PROD_LONG.preferred_row == 0

    def test_short_queues_avoid_row_zero(self):
        assert QueueName.PROD_SHORT.preferred_row != 0
        assert QueueName.BACKFILL.preferred_row != 0

    def test_prod_long_walltime_band(self):
        assert QueueName.PROD_LONG.admits(12 * 3600.0)
        assert not QueueName.PROD_LONG.admits(3600.0)
        assert not QueueName.PROD_LONG.admits(48 * 3600.0)

    def test_prod_short_walltime_band(self):
        assert QueueName.PROD_SHORT.admits(3600.0)
        assert not QueueName.PROD_SHORT.admits(12 * 3600.0)


class TestRouting:
    def test_long_walltime_routes_to_prod_long(self):
        assert queue_for_walltime(10 * 3600.0) is QueueName.PROD_LONG

    def test_short_walltime_routes_to_prod_short(self):
        assert queue_for_walltime(2 * 3600.0) is QueueName.PROD_SHORT

    def test_boundary_is_long(self):
        assert queue_for_walltime(6 * 3600.0) is QueueName.PROD_LONG

    def test_negative_walltime_rejected(self):
        with pytest.raises(ValueError):
            queue_for_walltime(-1.0)
