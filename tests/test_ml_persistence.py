"""Model save/load roundtrips."""

import numpy as np
import pytest

from repro.ml.network import NeuralNetwork
from repro.ml.persistence import load_model, save_model
from repro.ml.train import TrainConfig, train_classifier


@pytest.fixture
def trained(rng):
    x = np.vstack(
        [rng.standard_normal((80, 4)) - 2.0, rng.standard_normal((80, 4)) + 2.0]
    )
    y = np.array([0] * 80 + [1] * 80)
    network = NeuralNetwork.mlp(4, (6, 4), rng=rng)
    return (
        train_classifier(network, x, y, config=TrainConfig(epochs=20), rng=rng),
        x,
    )


class TestRoundtrip:
    def test_predictions_identical(self, trained, tmp_path):
        model, x = trained
        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        assert np.allclose(restored.predict_proba(x), model.predict_proba(x))

    def test_architecture_preserved(self, trained, tmp_path):
        model, _ = trained
        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        assert restored.network.architecture() == model.network.architecture()
        for original, back in zip(model.network.layers, restored.network.layers):
            assert back.activation.name == original.activation.name
            assert np.allclose(back.weights, original.weights)

    def test_losses_preserved(self, trained, tmp_path):
        model, _ = trained
        restored = load_model(save_model(model, tmp_path / "m.npz"))
        assert restored.train_losses == pytest.approx(model.train_losses)

    def test_scaler_preserved(self, trained, tmp_path):
        model, _ = trained
        restored = load_model(save_model(model, tmp_path / "m.npz"))
        assert restored.scaler is not None
        assert np.allclose(restored.scaler.mean, model.scaler.mean)

    def test_suffix_added_when_missing(self, trained, tmp_path):
        model, _ = trained
        path = save_model(model, tmp_path / "model")
        assert str(path).endswith(".npz")
        load_model(path)

    def test_scalerless_model(self, rng, tmp_path):
        from repro.ml.train import TrainResult

        network = NeuralNetwork.mlp(3, (4,), rng=rng)
        bare = TrainResult(
            network=network, scaler=None, train_losses=[], validation_losses=[]
        )
        restored = load_model(save_model(bare, tmp_path / "bare.npz"))
        assert restored.scaler is None

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, nonsense=np.ones(3))
        with pytest.raises(ValueError):
            load_model(path)

    def test_online_predictor_accepts_restored_model(self, trained, tmp_path):
        """A restored model slots into the streaming stack unchanged."""
        model, _ = trained
        restored = load_model(save_model(model, tmp_path / "m.npz"))
        from repro.monitoring.online import OnlineCmfPredictor

        # Construction only: the feature width differs from the real
        # predictor's, but the interface contract is what matters here.
        OnlineCmfPredictor(restored)
