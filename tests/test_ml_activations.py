"""Activation functions and derivatives."""

import numpy as np
import pytest

from repro.ml.activations import by_name, identity, relu, sigmoid, tanh


class TestRelu:
    def test_forward(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(relu.forward(x), [0.0, 0.0, 3.0])

    def test_derivative(self):
        x = np.array([-2.0, 0.5, 3.0])
        assert np.allclose(relu.derivative(x), [0.0, 1.0, 1.0])


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid.forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_bounded(self):
        x = np.linspace(-30, 30, 101)
        y = sigmoid.forward(x)
        assert np.all(y > 0.0)
        assert np.all(y < 1.0)

    def test_numerically_stable_at_extremes(self):
        y = sigmoid.forward(np.array([-1000.0, 1000.0]))
        assert np.isfinite(y).all()
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1.0, abs=1e-12)

    def test_derivative_matches_finite_difference(self):
        x = np.array([-1.0, 0.0, 2.0])
        eps = 1e-6
        numeric = (sigmoid.forward(x + eps) - sigmoid.forward(x - eps)) / (2 * eps)
        assert np.allclose(sigmoid.derivative(x), numeric, atol=1e-6)


class TestTanh:
    def test_odd_function(self):
        x = np.array([0.7, 1.3])
        assert np.allclose(tanh.forward(-x), -tanh.forward(x))

    def test_derivative_matches_finite_difference(self):
        x = np.array([-0.5, 0.0, 1.5])
        eps = 1e-6
        numeric = (tanh.forward(x + eps) - tanh.forward(x - eps)) / (2 * eps)
        assert np.allclose(tanh.derivative(x), numeric, atol=1e-6)


class TestRegistry:
    def test_lookup(self):
        assert by_name("relu") is relu
        assert by_name("identity") is identity

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            by_name("swish")
