"""Transient utilization-drop detection (Section III-A)."""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.core.drops import analyze_drops, detect_drops
from repro.telemetry.series import TimeSeries


def _flat_series(n=24 * 30, level=0.9):
    epochs = np.arange(n) * 3600.0
    return epochs, np.full(n, level)


class TestDetectDrops:
    def test_no_drops_in_flat_series(self):
        epochs, values = _flat_series()
        drops = detect_drops(TimeSeries(epochs, values))
        assert drops == []

    def test_single_square_drop_detected(self):
        epochs, values = _flat_series()
        values[300:310] = 0.6
        drops = detect_drops(TimeSeries(epochs, values))
        assert len(drops) == 1
        drop = drops[0]
        assert drop.start_epoch_s == pytest.approx(epochs[300])
        assert drop.duration_h == pytest.approx(10.0, abs=1.5)
        assert drop.depth > 0.2

    def test_short_blips_ignored(self):
        epochs, values = _flat_series()
        values[500] = 0.5  # one hour only
        drops = detect_drops(
            TimeSeries(epochs, values), min_duration_s=2 * 3600.0
        )
        assert drops == []

    def test_multiple_drops_counted(self):
        epochs, values = _flat_series()
        for start in (200, 400, 600):
            values[start : start + 8] = 0.6
        drops = detect_drops(TimeSeries(epochs, values))
        assert len(drops) == 3

    def test_per_rack_series_rejected(self):
        epochs, _ = _flat_series(48)
        wide = TimeSeries(epochs, np.ones((48, 48)))
        with pytest.raises(ValueError):
            detect_drops(wide)


class TestAnalyzeOnSimulation:
    def test_drops_exist(self, year_result):
        analysis = analyze_drops(year_result.database)
        assert len(analysis.drops) > 10
        assert analysis.drops_per_week > 0.2

    def test_power_tracks_utilization(self, year_result):
        analysis = analyze_drops(year_result.database)
        # The paper: utilization swings cause power swings.
        assert analysis.power_utilization_tracking > 0.7

    def test_mondays_overrepresented(self, year_result):
        analysis = analyze_drops(year_result.database)
        monday_share = analysis.fraction_on_weekday(0)
        # Uniform would be 1/7 ~ 0.143.  Burner jobs keep Monday
        # utilization from cratering (the paper's +1.5 % finding), so
        # the overrepresentation is modest but real.
        assert monday_share > 0.148

    def test_some_drops_near_failures(self, year_result):
        analysis = analyze_drops(year_result.database)
        failure_times = [e.epoch_s for e in year_result.schedule.events]
        assert analysis.fraction_near_failures(failure_times) > 0.05

    def test_durations_reasonable(self, year_result):
        analysis = analyze_drops(year_result.database)
        assert 1.0 < analysis.median_duration_h < 48.0
