"""Service-layer smoke: a full live replay, end to end.

This is the CI "service smoke" module: it replays simulated telemetry
through the assembled :class:`LiveOperationsService` at high speedup
with fault injection, checks the streamed rollups agree with the
offline aggregates, and — the headline assertion — verifies the online
CMF predictor *fires from the stream* inside known precursor windows
(holdout positive lead-up windows whose failure times are ground
truth).
"""

import dataclasses

import numpy as np
import pytest

from repro import timeutil
from repro.faults import FaultConfig
from repro.monitoring.alerts import AlertEngine, AlertLog, AlertPolicy
from repro.monitoring.online import OnlineCmfPredictor, train_online_predictor
from repro.service import (
    LiveOperationsService,
    PredictorSubscriber,
    Query,
    ReplayBus,
    ServiceConfig,
)
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry import nanstats
from repro.telemetry.records import PREDICTOR_CHANNELS, Channel

from repro import constants


@pytest.fixture(scope="module")
def online_model(year_windows):
    positives, negatives = year_windows
    half = len(positives) // 2
    return train_online_predictor(positives[:half], negatives[:half])


@pytest.fixture(scope="module")
def holdout_positives(year_windows):
    positives, _ = year_windows
    return positives[len(positives) // 2 :]


def _window_rows(window):
    """Re-serve one synthesized lead-up window as whole-floor bus rows."""
    rack = window.rack_id.flat_index
    rows = []
    for i, epoch in enumerate(window.epoch_s):
        values = {}
        for channel in PREDICTOR_CHANNELS:
            vector = np.full(constants.NUM_RACKS, np.nan)
            vector[rack] = window.channels[channel][i]
            values[channel] = vector
        rows.append((float(epoch), values, {}))
    return rows


class TestPredictorFiresFromStream:
    def test_alert_inside_known_precursor_window(
        self, online_model, holdout_positives
    ):
        """Replaying a real precursor through the bus raises the alarm.

        The positive window ends at the (ground-truth) CMF time, so a
        valid alert must land inside the window and strictly before the
        failure — a positive lead time from streamed data alone.
        """
        policy = AlertPolicy()
        fired = 0
        for window in holdout_positives[:3]:
            subscriber = PredictorSubscriber(
                OnlineCmfPredictor(online_model),
                alert_engine=AlertEngine(policy),
                alert_log=AlertLog(),
            )
            bus = ReplayBus(_window_rows(window))
            bus.subscribe("predictor", subscriber, policy="block")
            report = bus.run()
            assert report.published == len(window.epoch_s)
            assert subscriber.predictions, "stream produced no predictions"
            for alert in subscriber.alerts:
                assert alert.rack_id == window.rack_id
                assert window.epoch_s[0] <= alert.epoch_s < window.end_epoch_s
                assert alert.probability >= policy.threshold
            fired += bool(subscriber.alerts)
        assert fired >= 2, "predictor failed to fire on known precursors"

    def test_streamed_probabilities_match_direct_consumption(
        self, online_model, holdout_positives
    ):
        """The bus adds transport, not distortion: same predictions."""
        window = holdout_positives[0]
        direct = OnlineCmfPredictor(online_model).consume_window(window)

        subscriber = PredictorSubscriber(OnlineCmfPredictor(online_model))
        bus = ReplayBus(_window_rows(window))
        bus.subscribe("predictor", subscriber, policy="block")
        bus.run()

        assert len(subscriber.predictions) == len(direct)
        for streamed, offline in zip(subscriber.predictions, direct):
            assert streamed.epoch_s == offline.epoch_s
            np.testing.assert_allclose(
                streamed.probability, offline.probability, rtol=1e-9
            )


class TestWeekReplayWithFaults:
    @pytest.fixture(scope="class")
    def week_service(self):
        config = dataclasses.replace(
            MiraScenario.demo(days=7, seed=11), faults=FaultConfig()
        )
        result = FacilityEngine(config).run()
        service = LiveOperationsService(
            result.database,
            cusum=True,
            config=ServiceConfig(speedup=2_000_000.0),
        )
        return result, service, service.run()

    def test_every_sample_reaches_the_rollups(self, week_service):
        result, service, report = week_service
        assert report.bus.published == result.database.num_samples
        rollups = report.bus.subscribers["rollups"]
        assert rollups.delivered == report.bus.published
        assert rollups.dropped == 0
        assert report.rollup_buckets[86_400.0] == 7

    def test_high_speedup_pacing(self, week_service):
        _, _, report = week_service
        # A simulated week replayed in wall-clock seconds.
        assert report.bus.duration_s < 30.0
        assert report.bus.achieved_speedup > 10_000.0

    def test_streamed_aggregates_match_offline(self, week_service):
        result, service, _ = week_service
        start, end = result.start_epoch_s, result.end_epoch_s
        answer = service.engine.execute(
            Query("aggregate", Channel.POWER, start, end, stat="mean")
        )
        offline = nanstats.nanmean(result.database.channel(Channel.POWER).values)
        np.testing.assert_allclose(answer.value, offline, rtol=1e-9)

        covered = service.engine.execute(
            Query(
                "series",
                Channel.POWER,
                start,
                end,
                stat="covered_sum",
                resolution_s=300.0,
            )
        )
        _, offline_total = result.database._covered_sum(Channel.POWER)
        np.testing.assert_allclose(
            covered.values, offline_total, rtol=1e-9, equal_nan=True
        )

    def test_queries_during_replay_are_safe(self):
        """Querying mid-stream must neither crash nor corrupt state."""
        config = MiraScenario.demo(days=2, seed=13)
        result = FacilityEngine(config).run()
        service = LiveOperationsService(result.database)
        seen = []

        def probe(sample):
            if sample.seq % 16 == 0:
                answer = service.engine.execute(
                    Query(
                        "aggregate",
                        Channel.POWER,
                        result.start_epoch_s,
                        result.start_epoch_s + 2 * timeutil.DAY_S,
                    )
                )
                seen.append(answer.value)

        service.bus.subscribe("probe", probe, policy="block")
        report = service.run()
        assert report.bus.published == result.database.num_samples
        assert seen, "mid-replay queries never ran"
        # The final post-replay answer matches the offline truth.
        final = service.engine.execute(
            Query(
                "aggregate",
                Channel.POWER,
                result.start_epoch_s,
                result.start_epoch_s + 2 * timeutil.DAY_S,
            )
        )
        offline = nanstats.nanmean(result.database.channel(Channel.POWER).values)
        np.testing.assert_allclose(final.value, offline, rtol=1e-9)
