"""Loss functions."""

import numpy as np
import pytest

from repro.ml.losses import BinaryCrossEntropy, MeanSquaredError


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = BinaryCrossEntropy()
        value = loss.value(np.array([1e-9, 1 - 1e-9]), np.array([0.0, 1.0]))
        assert value < 1e-6

    def test_worst_prediction_large(self):
        loss = BinaryCrossEntropy()
        value = loss.value(np.array([0.999]), np.array([0.0]))
        assert value > 5.0

    def test_uncertain_prediction(self):
        loss = BinaryCrossEntropy()
        value = loss.value(np.array([0.5]), np.array([1.0]))
        assert value == pytest.approx(np.log(2.0))

    def test_gradient_direction(self):
        loss = BinaryCrossEntropy()
        grad = loss.gradient(np.array([0.8]), np.array([1.0]))
        assert grad[0] < 0  # push prediction up toward 1

    def test_gradient_matches_finite_difference(self):
        loss = BinaryCrossEntropy()
        p = np.array([0.3, 0.7, 0.5])
        y = np.array([1.0, 0.0, 1.0])
        grad = loss.gradient(p, y)
        eps = 1e-7
        for i in range(3):
            bumped = p.copy()
            bumped[i] += eps
            numeric = (loss.value(bumped, y) - loss.value(p, y)) / eps
            assert grad[i] == pytest.approx(numeric, rel=1e-3)

    def test_clamps_out_of_range(self):
        loss = BinaryCrossEntropy()
        assert np.isfinite(loss.value(np.array([0.0, 1.0]), np.array([1.0, 0.0])))

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError):
            BinaryCrossEntropy(epsilon=0.6)


class TestMeanSquaredError:
    def test_zero_at_match(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([3.0]), np.array([1.0])) == pytest.approx(4.0)

    def test_gradient_matches_finite_difference(self):
        loss = MeanSquaredError()
        p = np.array([0.5, -1.0])
        y = np.array([1.0, 1.0])
        grad = loss.gradient(p, y)
        eps = 1e-7
        for i in range(2):
            bumped = p.copy()
            bumped[i] += eps
            numeric = (loss.value(bumped, y) - loss.value(p, y)) / eps
            assert grad[i] == pytest.approx(numeric, rel=1e-4)
