"""Threshold-alarm and logistic-regression baselines."""

import numpy as np
import pytest

from repro.ml.baselines import LogisticRegression, ThresholdAlarmDetector
from repro.ml.metrics import accuracy


class TestThresholdAlarm:
    def test_detects_level_excursions(self):
        rng = np.random.default_rng(0)
        healthy = rng.standard_normal((500, 3))
        detector = ThresholdAlarmDetector(k_sigma=3.0).fit(healthy)
        anomalous = np.array([[0.0, 0.0, 8.0], [10.0, 0.0, 0.0]])
        assert detector.predict(anomalous).tolist() == [1, 1]

    def test_healthy_rarely_alarms(self):
        rng = np.random.default_rng(0)
        healthy = rng.standard_normal((2000, 3))
        detector = ThresholdAlarmDetector(k_sigma=3.5).fit(healthy)
        fresh = rng.standard_normal((2000, 3))
        assert detector.predict(fresh).mean() < 0.02

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            ThresholdAlarmDetector().predict(np.ones((1, 3)))

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            ThresholdAlarmDetector(k_sigma=0.0)

    def test_misses_pure_change_signals(self):
        """The paper's Section VI-D point: a level detector cannot see
        an anomaly that stays inside the healthy band."""
        rng = np.random.default_rng(1)
        healthy = rng.normal(0.0, 2.0, size=(1000, 2))
        detector = ThresholdAlarmDetector(k_sigma=3.0).fit(healthy)
        # An anomalous *change* whose final level is still in-band.
        inside_band = np.array([[1.5, -1.5]])
        assert detector.predict(inside_band)[0] == 0


class TestLogisticRegression:
    def test_separable_blobs(self):
        rng = np.random.default_rng(2)
        x = np.vstack(
            [rng.standard_normal((100, 2)) - 2.5, rng.standard_normal((100, 2)) + 2.5]
        )
        y = np.array([0] * 100 + [1] * 100)
        model = LogisticRegression().fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.97

    def test_probabilities_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 3))
        y = rng.integers(0, 2, 50)
        model = LogisticRegression(epochs=50).fit(x, y)
        p = model.predict_proba(x)
        assert np.all(p >= 0.0)
        assert np.all(p <= 1.0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.ones((1, 2)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), np.ones(4))

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)

    def test_cannot_solve_xor(self):
        """A linear model fails on XOR — motivating the paper's MLP."""
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        model = LogisticRegression(epochs=400).fit(x, y)
        assert accuracy(y, model.predict(x)) < 0.7
