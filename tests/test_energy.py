"""Facility energy accounting and PUE."""

import numpy as np
import pytest

from repro.cooling.energy import EnergyModelConfig, FacilityEnergyModel


@pytest.fixture(scope="module")
def energy(year_result):
    return FacilityEnergyModel(year_result)


class TestComponentSeries:
    def test_it_power_magnitude(self, energy):
        it = energy.it_power_kw()
        # ~2.5-3 MW of IT load.
        assert 2000 < it.overall_mean() < 3500

    def test_chiller_below_it(self, energy):
        assert energy.chiller_power_kw().overall_mean() < 0.2 * energy.it_power_kw().overall_mean()

    def test_pump_power_tracks_flow(self, energy, year_result):
        pump = energy.pump_power_kw()
        flow = year_result.database.total_flow_gpm()
        assert np.allclose(
            pump.values, EnergyModelConfig().pump_kw_per_gpm * flow.values
        )

    def test_crac_tracks_it_and_ion_heat(self, energy):
        crac = energy.crac_power_kw()
        it = energy.it_power_kw()
        # CRAC = fraction of IT plus the air-side heat (compute leak +
        # ION racks) at the CRAC's air-side efficiency.
        ratio = crac.values / it.values
        assert np.all(ratio > EnergyModelConfig().crac_fraction)
        assert np.all(ratio < 0.2)

    def test_ion_power_present_and_bounded(self, energy):
        ion = energy.ion_power_kw()
        # Six racks at ~28-37 kW each.
        assert np.all(ion.values > 6 * 20.0)
        assert np.all(ion.values < 6 * 45.0)

    def test_ion_exclusion_zeroes_series(self, year_result):
        model = FacilityEnergyModel(
            year_result, EnergyModelConfig(include_ion=False)
        )
        assert np.allclose(model.ion_power_kw().values, 0.0)


class TestPue:
    def test_pue_in_liquid_cooled_band(self, energy):
        pue = energy.pue()
        mean = float(np.nanmean(pue.values))
        assert 1.05 < mean < 1.35

    def test_pue_above_one(self, energy):
        pue = energy.pue()
        assert np.nanmin(pue.values) > 1.0

    def test_winter_pue_lower(self, energy):
        # Free cooling displaces the chillers in winter.
        assert energy.seasonal_pue_swing() < 0.0


class TestLedger:
    def test_components_sum(self, energy):
        ledger = energy.ledger()
        assert ledger.total_kwh == pytest.approx(
            ledger.it_kwh
            + ledger.chiller_kwh
            + ledger.pump_kwh
            + ledger.crac_kwh
            + ledger.ion_kwh
            + ledger.overhead_kwh
        )

    def test_breakdown_fractions_sum_to_one(self, energy):
        breakdown = energy.ledger().breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["it"] > 0.75  # IT dominates a good facility

    def test_average_pue_consistent_with_series(self, energy):
        ledger = energy.ledger()
        series_mean = float(np.nanmean(energy.pue().values))
        assert ledger.average_pue == pytest.approx(series_mean, rel=0.05)

    def test_free_cooling_savings_positive(self, energy):
        assert energy.ledger().free_cooling_savings_kwh > 0

    def test_monthly_savings_peak_in_winter(self, energy):
        monthly = energy.monthly_free_cooling_kwh()
        winter = monthly.get(1, 0) + monthly.get(12, 0) + monthly.get(2, 0)
        summer = monthly.get(6, 0) + monthly.get(7, 0) + monthly.get(8, 0)
        assert winter > 10 * max(summer, 1.0)
