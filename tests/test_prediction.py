"""Fig 13: the CMF predictor pipeline."""

import numpy as np
import pytest

from repro import constants
from repro.core.prediction import (
    build_dataset,
    default_architecture_grid,
    evaluate_at_leads,
    tune_architecture,
    window_features,
    window_level_features,
)
from repro.telemetry.records import PREDICTOR_CHANNELS


@pytest.fixture(scope="module")
def dataset(year_windows):
    positives, negatives = year_windows
    return build_dataset(positives, negatives, lead_h=3.0)


class TestFeatures:
    def test_feature_vector_width(self, year_windows):
        positives, _ = year_windows
        features = window_features(positives[0], lead_h=3.0)
        # 6 channels x 3 lags.
        assert features.shape == (18,)

    def test_level_features_width(self, year_windows):
        positives, _ = year_windows
        features = window_level_features(positives[0], lead_h=3.0)
        assert features.shape == (len(PREDICTOR_CHANNELS),)

    def test_lead_too_long_rejected(self, year_windows):
        positives, _ = year_windows
        with pytest.raises(ValueError):
            window_features(positives[0], lead_h=10.0)

    def test_features_finite(self, year_windows):
        positives, negatives = year_windows
        for window in positives[:5] + negatives[:5]:
            assert np.isfinite(window_features(window, 1.0)).all()


class TestDataset:
    def test_balanced(self, dataset):
        assert dataset.positives == dataset.negatives

    def test_labels_binary(self, dataset):
        assert set(np.unique(dataset.labels)) == {0, 1}

    def test_empty_class_rejected(self, year_windows):
        positives, _ = year_windows
        with pytest.raises(ValueError):
            build_dataset(positives, [], lead_h=1.0)


class TestEvaluation:
    def test_accuracy_curve_shape(self, year_windows):
        positives, negatives = year_windows
        evaluations = evaluate_at_leads(
            positives, negatives, leads_h=(6.0, 3.0, 0.5)
        )
        acc = {e.lead_h: e.report.accuracy for e in evaluations}
        # Paper: 87 % at 6 h rising to 97 % at 30 min.
        assert 0.75 < acc[6.0] < 0.98
        assert acc[0.5] > acc[6.0]
        assert acc[0.5] > 0.90

    def test_fpr_improves_with_shorter_lead(self, year_windows):
        positives, negatives = year_windows
        evaluations = evaluate_at_leads(
            positives, negatives, leads_h=(6.0, 0.5)
        )
        fpr = {e.lead_h: e.report.false_positive_rate for e in evaluations}
        assert fpr[0.5] < fpr[6.0]
        assert fpr[0.5] < 0.08  # paper: 1.2 %

    def test_five_folds(self, year_windows):
        positives, negatives = year_windows
        evaluations = evaluate_at_leads(positives, negatives, leads_h=(1.0,))
        assert len(evaluations[0].cross_validation.fold_reports) == 5

    def test_level_features_underperform_changes_at_long_lead(self, year_windows):
        """Section VI-D: thresholds on levels lose to change features."""
        positives, negatives = year_windows
        change = evaluate_at_leads(positives, negatives, leads_h=(4.0,))[0]
        level = evaluate_at_leads(
            positives, negatives, leads_h=(4.0,), feature_fn=window_level_features
        )[0]
        assert change.report.accuracy > level.report.accuracy


class TestArchitectureTuning:
    def test_grid_contains_paper_architecture(self):
        assert constants.PREDICTOR_HIDDEN_LAYERS in default_architecture_grid()

    def test_grid_is_monotone_nonincreasing(self):
        for a, b, c in default_architecture_grid():
            assert a >= b >= c

    def test_tuning_returns_good_candidate(self, dataset):
        hidden, score = tune_architecture(dataset, budget=6, epochs=20)
        assert len(hidden) == 3
        assert score > 0.8
