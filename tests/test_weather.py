"""The synthetic Chicago weather model."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil
from repro.weather.chicago import ChicagoWeather


@pytest.fixture
def weather():
    return ChicagoWeather(seed=1)


def _epochs(year, month, day_count=28, per_day=4):
    start = timeutil.to_epoch(dt.datetime(year, month, 1))
    return start + np.arange(day_count * per_day) * (86_400 / per_day)


class TestTemperature:
    def test_summer_hotter_than_winter(self, weather):
        july = weather.temperature_f(_epochs(2015, 7)).mean()
        january = weather.temperature_f(_epochs(2015, 1)).mean()
        assert july - january > 30.0

    def test_afternoon_warmer_than_night(self, weather):
        day = timeutil.to_epoch(dt.datetime(2015, 6, 10))
        afternoon = float(weather.temperature_f(day + 15 * 3600))
        night = float(weather.temperature_f(day + 4 * 3600))
        assert afternoon > night

    def test_chicago_range_is_plausible(self, weather):
        epochs = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2016, 1, 1), 6 * 3600.0
        )
        temps = weather.temperature_f(epochs)
        assert temps.min() > -25.0
        assert temps.max() < 110.0
        assert 40.0 < temps.mean() < 60.0

    def test_deterministic_and_order_independent(self):
        w1 = ChicagoWeather(seed=5)
        w2 = ChicagoWeather(seed=5)
        epochs = _epochs(2015, 4)
        forward = w1.temperature_f(epochs)
        reverse = w2.temperature_f(epochs[::-1])[::-1]
        assert np.allclose(forward, reverse)

    def test_different_seed_different_weather(self):
        epochs = _epochs(2015, 4)
        assert not np.allclose(
            ChicagoWeather(seed=1).temperature_f(epochs),
            ChicagoWeather(seed=2).temperature_f(epochs),
        )


class TestHumidity:
    def test_summer_more_humid_than_winter(self, weather):
        july = weather.relative_humidity(_epochs(2015, 7)).mean()
        january = weather.relative_humidity(_epochs(2015, 1)).mean()
        assert july > january

    def test_bounded(self, weather):
        epochs = timeutil.time_grid(
            dt.datetime(2014, 1, 1), dt.datetime(2015, 1, 1), 3 * 3600.0
        )
        rh = weather.relative_humidity(epochs)
        assert rh.min() >= 15.0
        assert rh.max() <= 100.0


class TestFreeCooling:
    def test_winter_free_cooling_mostly_available(self, weather):
        january = weather.free_cooling_available(_epochs(2015, 1))
        assert january.mean() > 0.5

    def test_summer_free_cooling_unavailable(self, weather):
        july = weather.free_cooling_available(_epochs(2015, 7))
        assert july.mean() < 0.05

    def test_sample_convenience(self, weather):
        sample = weather.sample(timeutil.to_epoch(dt.datetime(2015, 3, 15, 12)))
        assert -20 < sample.temperature_f < 100
        assert 15 <= sample.relative_humidity <= 100
