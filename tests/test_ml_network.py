"""Dense layers and the MLP, including a full gradient check."""

import numpy as np
import pytest

from repro.ml.activations import relu, sigmoid, tanh
from repro.ml.layers import Dense
from repro.ml.losses import BinaryCrossEntropy
from repro.ml.network import NeuralNetwork


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_wrong_width_rejected(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 6)))

    def test_backward_before_forward_rejected(self):
        layer = Dense(4, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((5, 3)))

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_parameters_and_gradients_aligned(self):
        layer = Dense(4, 3)
        params = layer.parameters()
        grads = layer.gradients()
        for name in params:
            assert params[name].shape == grads[name].shape


class TestNetworkConstruction:
    def test_mlp_architecture(self):
        net = NeuralNetwork.mlp(18, (12, 12, 6))
        assert net.architecture() == (18, 12, 12, 6, 1)

    def test_paper_architecture_parameter_count(self):
        net = NeuralNetwork.mlp(18, (12, 12, 6))
        # 18*12+12 + 12*12+12 + 12*6+6 + 6*1+1 = 469
        assert net.parameter_count() == 469

    def test_mismatched_layers_rejected(self):
        with pytest.raises(ValueError):
            NeuralNetwork([Dense(4, 3), Dense(5, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NeuralNetwork([])

    def test_clone_untrained_same_architecture(self):
        net = NeuralNetwork.mlp(6, (4,))
        clone = net.clone_untrained(np.random.default_rng(1))
        assert clone.architecture() == net.architecture()
        assert not np.allclose(clone.layers[0].weights, net.layers[0].weights)


class TestInference:
    def test_probabilities_bounded(self):
        net = NeuralNetwork.mlp(6, (4,), rng=np.random.default_rng(1))
        p = net.predict_proba(np.random.default_rng(2).standard_normal((20, 6)))
        assert np.all(p >= 0.0)
        assert np.all(p <= 1.0)

    def test_predict_threshold(self):
        net = NeuralNetwork.mlp(6, (4,), rng=np.random.default_rng(1))
        x = np.random.default_rng(2).standard_normal((20, 6))
        p = net.predict_proba(x)
        hard = net.predict(x, threshold=0.5)
        assert np.array_equal(hard, (p >= 0.5).astype(int))

    def test_bad_threshold_rejected(self):
        net = NeuralNetwork.mlp(6, (4,))
        with pytest.raises(ValueError):
            net.predict(np.ones((1, 6)), threshold=1.0)


class TestGradients:
    @pytest.mark.parametrize("hidden_activation", [relu, tanh])
    def test_full_network_gradient_check(self, hidden_activation):
        """Backprop gradients must match central finite differences."""
        rng = np.random.default_rng(3)
        net = NeuralNetwork.mlp(
            5, (7, 4), hidden_activation=hidden_activation, rng=rng
        )
        loss = BinaryCrossEntropy()
        x = rng.standard_normal((8, 5))
        y = rng.integers(0, 2, size=(8, 1)).astype(float)

        predicted = net.forward(x, train=True)
        net.backward(loss.gradient(predicted, y))

        eps = 1e-6
        for layer in net.layers:
            weights = layer.weights
            grad = layer.grad_weights
            # Spot-check a handful of entries per layer.
            indices = [(0, 0), (weights.shape[0] - 1, weights.shape[1] - 1)]
            for i, j in indices:
                original = weights[i, j]
                weights[i, j] = original + eps
                plus = loss.value(net.forward(x), y)
                weights[i, j] = original - eps
                minus = loss.value(net.forward(x), y)
                weights[i, j] = original
                numeric = (plus - minus) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, rel=2e-3, abs=1e-7)

    def test_bias_gradient_check(self):
        rng = np.random.default_rng(4)
        net = NeuralNetwork.mlp(3, (5,), rng=rng)
        loss = BinaryCrossEntropy()
        x = rng.standard_normal((6, 3))
        y = rng.integers(0, 2, size=(6, 1)).astype(float)
        predicted = net.forward(x, train=True)
        net.backward(loss.gradient(predicted, y))
        layer = net.layers[0]
        eps = 1e-6
        original = layer.biases[2]
        layer.biases[2] = original + eps
        plus = loss.value(net.forward(x), y)
        layer.biases[2] = original - eps
        minus = loss.value(net.forward(x), y)
        layer.biases[2] = original
        numeric = (plus - minus) / (2 * eps)
        assert layer.grad_biases[2] == pytest.approx(numeric, rel=2e-3, abs=1e-7)
