"""Ingest gateway + collector tests.

The acceptance pin lives here: telemetry posted through ``POST
/v1/ingest`` must land **bit-identically** to the same samples fed
straight into :meth:`EnvironmentalDatabase.append_block` — values,
quality masks, and lenient-policy duplicate resolution included —
because the JSON wire format round-trips floats exactly and the
gateway routes every batch through the same :class:`IngestPolicy`
machinery.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.http import (
    FileImportCollector,
    IngestClient,
    IngestClientError,
    IngestServerConfig,
    OperationsApp,
    OperationsHttpServer,
    RetryPolicy,
    SimulatedPollerCollector,
)
from repro.service.http.protocol import encode_batch
from repro.service.rollup import RollupStore
from repro.telemetry.database import EnvironmentalDatabase, IngestPolicy
from repro.telemetry.export import export_telemetry_csv, import_telemetry_csv
from repro.telemetry.records import CHANNELS, Channel, Quality

NUM_RACKS = 8
CADENCE_S = 300.0


def _seed_database(policy=None, samples=24) -> EnvironmentalDatabase:
    rng = np.random.default_rng(7)
    db = EnvironmentalDatabase(num_racks=NUM_RACKS, policy=policy)
    epochs = np.arange(samples) * CADENCE_S
    db.append_block(
        epochs,
        {ch: rng.normal(50.0, 5.0, size=(samples, NUM_RACKS)) for ch in CHANNELS},
    )
    return db


def _batches(start_sample, count, batch_size, seed=11):
    """Deterministic (epochs, channels) batches continuing the stream."""
    rng = np.random.default_rng(seed)
    batches = []
    for lo in range(0, count, batch_size):
        n = min(batch_size, count - lo)
        epochs = (start_sample + lo + np.arange(n)) * CADENCE_S
        channels = {
            ch: rng.normal(50.0, 5.0, size=(n, NUM_RACKS)) for ch in CHANNELS
        }
        # Sprinkle NaNs so MISSING-quality derivation is exercised.
        for ch in channels:
            mask = rng.random((n, NUM_RACKS)) < 0.05
            channels[ch][mask] = np.nan
        batches.append((epochs, channels))
    return batches


def _assert_databases_equal(left: EnvironmentalDatabase, right: EnvironmentalDatabase):
    assert left.num_samples == right.num_samples
    np.testing.assert_array_equal(
        np.asarray(left.epoch_s), np.asarray(right.epoch_s)
    )
    for ch in CHANNELS:
        np.testing.assert_array_equal(
            np.asarray(left.channel(ch).values),
            np.asarray(right.channel(ch).values),
            err_msg=f"values differ for {ch.column}",
        )
        np.testing.assert_array_equal(
            np.asarray(left.quality(ch)),
            np.asarray(right.quality(ch)),
            err_msg=f"quality differs for {ch.column}",
        )


def _post(app, body, token=None):
    headers = {"Authorization": f"Bearer {token}"} if token else {}
    return app.handle("POST", "/v1/ingest", {}, body=body, headers=headers)


class TestIngestEquivalence:
    def test_http_equals_direct_append_block(self):
        served = _seed_database()
        direct = _seed_database()
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        for epochs, channels in _batches(24, 40, 7):
            status, payload, _ = _post(
                app, encode_batch("c1", epochs, channels)
            )
            assert status == 200, payload
            direct.append_block(epochs, channels)
        _assert_databases_equal(served, direct)

    def test_http_quality_masks_equal_direct(self):
        served = _seed_database()
        direct = _seed_database()
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        rng = np.random.default_rng(3)
        for epochs, channels in _batches(24, 21, 7, seed=5):
            n = len(epochs)
            quality = {}
            for ch in (Channel.POWER, Channel.FLOW):
                flags = np.where(
                    np.isfinite(channels[ch]), int(Quality.OK), int(Quality.MISSING)
                ).astype(np.uint8)
                flags[rng.random((n, NUM_RACKS)) < 0.2] = int(Quality.SUSPECT)
                flags[rng.random((n, NUM_RACKS)) < 0.1] = int(Quality.SCRUBBED)
                quality[ch] = flags
            status, payload, _ = _post(
                app, encode_batch("c1", epochs, channels, quality)
            )
            assert status == 200, payload
            before = direct.committed_samples
            direct.append_block(epochs, channels)
            for ch, flags in quality.items():
                direct.overwrite_quality(ch, before, flags)
        _assert_databases_equal(served, direct)

    def test_lenient_duplicate_resolution_equal_direct(self):
        policy = IngestPolicy.lenient(
            reorder_window_s=4 * CADENCE_S, duplicate_policy="merge"
        )
        served = _seed_database(policy=policy)
        direct = _seed_database(policy=policy)
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        rng = np.random.default_rng(13)
        base = 24
        for _ in range(6):
            # Out-of-order and duplicate timestamps inside the window.
            offsets = rng.integers(-3, 4, size=5)
            epochs = (base + offsets) * CADENCE_S
            channels = {
                ch: rng.normal(50.0, 5.0, size=(5, NUM_RACKS)) for ch in CHANNELS
            }
            status, payload, _ = _post(
                app, encode_batch("c1", epochs, channels)
            )
            assert status == 200, payload
            direct.append_block(epochs, channels)
            base += 2
        app.gateway.finalize()
        direct.flush()
        _assert_databases_equal(served, direct)
        assert served.counters.as_dict() == direct.counters.as_dict()

    def test_explicit_quality_refused_under_lenient_policy(self):
        served = _seed_database(policy=IngestPolicy.lenient())
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        before = served.num_samples
        epochs, channels = _batches(48, 3, 3)[0]
        quality = {
            Channel.POWER: np.zeros((3, NUM_RACKS), dtype=np.uint8)
        }
        status, payload, _ = _post(
            app, encode_batch("c1", epochs, channels, quality)
        )
        assert status == 400
        assert payload["error"]["type"] == "bad_request"
        assert served.num_samples == before  # nothing partially applied

    def test_ingested_rows_become_queryable(self):
        served = _seed_database()
        app = OperationsApp.from_database(served, ingest=IngestServerConfig())
        epochs, channels = _batches(24, 12, 12)[0]
        status, payload, _ = _post(app, encode_batch("c1", epochs, channels))
        assert status == 200
        assert payload["store_version"] == app.engine.store.version
        # The query tier must now agree with a store rebuilt from the
        # final database — folding missed nothing.
        rebuilt = RollupStore.from_database(served)
        status, answer, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {
                "channel": "power_kw",
                "start_s": "0",
                "end_s": repr(36 * CADENCE_S),
                "stat": "mean",
            },
        )
        assert status == 200
        from repro.service import Query, QueryEngine

        expected = QueryEngine(rebuilt).execute(
            Query("aggregate", Channel.POWER, 0.0, 36 * CADENCE_S)
        )
        assert answer["value"] == expected.value


class TestAuthAndBackpressure:
    def _app(self, **config):
        return OperationsApp.from_database(
            _seed_database(), ingest=IngestServerConfig(**config)
        )

    def test_wrong_token_is_401(self):
        app = self._app(tokens={"c1": "secret"})
        epochs, channels = _batches(24, 2, 2)[0]
        body = encode_batch("c1", epochs, channels)
        status, payload, _ = _post(app, body, token="wrong")
        assert status == 401
        assert payload["error"]["type"] == "unauthorized"
        status, payload, _ = _post(app, body)  # no token at all
        assert status == 401
        status, payload, _ = _post(app, body, token="secret")
        assert status == 200
        assert app.gateway.counters.rejected_unauthorized == 2

    def test_unknown_collector_is_401(self):
        app = self._app(tokens={"c1": "secret"})
        epochs, channels = _batches(24, 2, 2)[0]
        status, payload, _ = _post(
            app, encode_batch("intruder", epochs, channels), token="secret"
        )
        assert status == 401

    def test_backpressure_429_with_retry_after(self):
        app = self._app(max_pending=1, retry_after_s=0.25)
        gateway = app.gateway
        epochs, channels = _batches(24, 2, 2)[0]
        assert gateway._slots.acquire(blocking=False)  # occupy the only slot
        try:
            status, payload, headers = _post(
                app, encode_batch("c1", epochs, channels)
            )
            assert status == 429
            assert payload["error"]["type"] == "backpressure"
            assert headers["Retry-After"] == "0.25"
            assert gateway.counters.rejected_backpressure == 1
        finally:
            gateway._slots.release()
        status, payload, _ = _post(app, encode_batch("c1", epochs, channels))
        assert status == 200

    def test_read_only_server_refuses_ingest(self):
        app = OperationsApp.from_database(_seed_database())
        epochs, channels = _batches(24, 2, 2)[0]
        status, payload, _ = _post(app, encode_batch("c1", epochs, channels))
        assert status == 503
        assert payload["error"]["type"] == "read_only"


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        delays = [policy.delay_s(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCollectorsOverRealServer:
    @pytest.fixture()
    def server(self):
        app = OperationsApp.from_database(
            _seed_database(), ingest=IngestServerConfig(tokens={"poller": "tok"})
        )
        with OperationsHttpServer(app) as server:
            yield server, app

    def test_simulated_poller_round_trip(self, server):
        server, app = server
        sleeps = []
        client = IngestClient(
            server.url, "poller", token="tok", sleep=sleeps.append
        )
        poller = SimulatedPollerCollector(
            client,
            num_racks=NUM_RACKS,
            start_epoch_s=24 * CADENCE_S,
            interval_s=CADENCE_S,
            seed=21,
            batch_samples=10,
        )
        sent = poller.run(25)
        assert sent == 25
        assert client.counters.batches_posted == 3
        assert sleeps == []  # a healthy server needs no retries
        assert app.gateway.database.num_samples == 24 + 25

    def test_poller_is_deterministic(self):
        def run_one():
            db = _seed_database()
            app = OperationsApp.from_database(db, ingest=IngestServerConfig())
            with OperationsHttpServer(app) as server:
                client = IngestClient(server.url, "poller")
                SimulatedPollerCollector(
                    client,
                    num_racks=NUM_RACKS,
                    start_epoch_s=24 * CADENCE_S,
                    interval_s=CADENCE_S,
                    seed=99,
                    batch_samples=8,
                ).run(16)
            return db

        _assert_databases_equal(run_one(), run_one())

    def test_non_retryable_error_raises_immediately(self, server):
        server, _ = server
        sleeps = []
        client = IngestClient(
            server.url, "poller", token="bad-token", sleep=sleeps.append
        )
        epochs, channels = _batches(24, 2, 2)[0]
        with pytest.raises(IngestClientError) as info:
            client.post_batch(epochs, channels)
        assert info.value.status == 401
        assert info.value.error_type == "unauthorized"
        assert sleeps == []  # 4xx refusals are not retried

    def test_file_import_collector_matches_direct_import(self, tmp_path):
        # CSV import always rebuilds at the full Mira topology, so the
        # source uses 48 racks here.  NaNs plus explicit non-default
        # quality flags exercise the whole wire format.
        racks = 48
        rng = np.random.default_rng(17)
        source = EnvironmentalDatabase(num_racks=racks)
        epochs = np.arange(30) * CADENCE_S
        blocks = {
            ch: rng.normal(50.0, 5.0, size=(30, racks)) for ch in CHANNELS
        }
        for ch in blocks:
            blocks[ch][rng.random((30, racks)) < 0.05] = np.nan
        source.append_block(epochs, blocks)
        for ch in (Channel.POWER, Channel.INLET_TEMPERATURE):
            mask = rng.random((30, racks)) < 0.15
            source.update_quality(ch, mask, Quality.SUSPECT)
        csv_path = tmp_path / "telemetry.csv"
        export_telemetry_csv(source, csv_path)

        target = EnvironmentalDatabase(num_racks=racks)
        app = OperationsApp.from_database(target, ingest=IngestServerConfig())
        with OperationsHttpServer(app) as server:
            client = IngestClient(server.url, "importer")
            sent = FileImportCollector(
                csv_path, client, num_racks=racks, batch_samples=7
            ).run()
        assert sent == 30
        reference = import_telemetry_csv(csv_path)
        _assert_databases_equal(target, reference)


class TestGatewayThreadSafety:
    def test_concurrent_posts_all_land(self):
        served = _seed_database(
            policy=IngestPolicy.lenient(reorder_window_s=100 * CADENCE_S)
        )
        app = OperationsApp.from_database(
            served, ingest=IngestServerConfig(max_pending=8)
        )
        batches = _batches(24, 32, 4)
        errors = []

        def post(batch):
            epochs, channels = batch
            status, payload, _ = _post(app, encode_batch("c1", epochs, channels))
            if status != 200:
                errors.append(payload)

        threads = [
            threading.Thread(target=post, args=(batch,)) for batch in batches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        app.gateway.finalize()
        assert served.num_samples == 24 + 32
