"""Chunked content addressing of the telemetry store.

The digest is the cache key of the incremental-analytics layer, so the
properties under test are exactly the ones memo correctness rests on:
stability across storage representations, sensitivity to every cell
(values *and* quality flags), and append-time incrementality (only the
tail chunk is rehashed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.archive import TelemetryArchive
from repro.telemetry.database import EnvironmentalDatabase, IngestPolicy
from repro.telemetry.digest import (
    DIGEST_CHUNK_ROWS,
    chunk_count,
    hash_block,
    root_digest,
)
from repro.telemetry.records import CHANNELS, Channel, Quality

RACKS = 4


def _filled_database(rows: int, seed: int = 0) -> EnvironmentalDatabase:
    rng = np.random.default_rng(seed)
    database = EnvironmentalDatabase(num_racks=RACKS, capacity_hint=rows)
    epoch = 1_600_000_000.0 + 60.0 * np.arange(rows)
    database.append_block(
        epoch,
        {ch: rng.normal(70.0, 5.0, size=(rows, RACKS)) for ch in CHANNELS},
    )
    database.flush()
    return database


class TestDigestStability:
    def test_recompute_is_stable(self):
        database = _filled_database(100)
        assert database.dataset_digest() == database.dataset_digest()

    def test_identical_content_identical_digest(self):
        assert (
            _filled_database(100, seed=1).dataset_digest()
            == _filled_database(100, seed=1).dataset_digest()
        )

    def test_mmap_and_in_memory_agree(self, tmp_path, demo_result):
        """The address is content-only: storage representation is invisible."""
        database = demo_result.database
        TelemetryArchive.save(database, tmp_path / "arch")
        mapped = TelemetryArchive.load(tmp_path / "arch", mmap=True)
        in_memory = TelemetryArchive.load(tmp_path / "arch", mmap=False)
        assert mapped.dataset_digest() == database.dataset_digest()
        assert in_memory.dataset_digest() == database.dataset_digest()

    def test_save_load_round_trip(self, tmp_path):
        database = _filled_database(257, seed=2)
        before = database.digest_info()
        TelemetryArchive.save(database, tmp_path / "arch")
        reloaded = TelemetryArchive.load(tmp_path / "arch")
        after = reloaded.digest_info()
        assert after.root == before.root
        assert after.chunk_hashes == before.chunk_hashes

    def test_chunk_size_is_part_of_the_address(self):
        database = _filled_database(100)
        assert (
            database.digest_info(chunk_rows=32).root
            != database.digest_info(chunk_rows=64).root
        )


class TestDigestSensitivity:
    def test_single_cell_value_changes_root(self):
        rng = np.random.default_rng(3)
        rows = 50
        epoch = 1_600_000_000.0 + 60.0 * np.arange(rows)
        blocks = {ch: rng.normal(70.0, 5.0, size=(rows, RACKS)) for ch in CHANNELS}
        reference = EnvironmentalDatabase(num_racks=RACKS)
        reference.append_block(epoch, {ch: blocks[ch].copy() for ch in CHANNELS})
        mutated_blocks = {ch: blocks[ch].copy() for ch in CHANNELS}
        mutated_blocks[Channel.POWER][17, 2] += 1e-9
        mutated = EnvironmentalDatabase(num_racks=RACKS)
        mutated.append_block(epoch, mutated_blocks)
        assert reference.dataset_digest() != mutated.dataset_digest()

    def test_single_timestamp_changes_root(self):
        rng = np.random.default_rng(4)
        rows = 50
        epoch = 1_600_000_000.0 + 60.0 * np.arange(rows)
        blocks = {ch: rng.normal(70.0, 5.0, size=(rows, RACKS)) for ch in CHANNELS}
        a = EnvironmentalDatabase(num_racks=RACKS)
        a.append_block(epoch.copy(), {ch: blocks[ch].copy() for ch in CHANNELS})
        shifted = epoch.copy()
        shifted[-1] += 1.0
        b = EnvironmentalDatabase(num_racks=RACKS)
        b.append_block(shifted, blocks)
        assert a.dataset_digest() != b.dataset_digest()

    def test_update_quality_changes_root(self):
        """A quality escalation is a content change — same values, new address."""
        database = _filled_database(50, seed=5)
        before = database.dataset_digest()
        mask = np.zeros((50, RACKS), dtype=bool)
        mask[10, 1] = True
        assert database.update_quality(Channel.FLOW, mask, Quality.SUSPECT) == 1
        assert database.dataset_digest() != before

    def test_overwrite_quality_changes_root(self):
        database = _filled_database(50, seed=6)
        before = database.dataset_digest()
        flags = np.full((2, RACKS), int(Quality.SCRUBBED), dtype=np.uint8)
        database.overwrite_quality(Channel.POWER, 20, flags)
        assert database.dataset_digest() != before

    def test_quality_revert_restores_root(self):
        """The address depends on content only, not mutation history."""
        database = _filled_database(50, seed=7)
        before = database.dataset_digest()
        ok = np.asarray(database.quality(Channel.POWER)[20:22]).copy()
        flags = np.full((2, RACKS), int(Quality.SUSPECT), dtype=np.uint8)
        database.overwrite_quality(Channel.POWER, 20, flags)
        assert database.dataset_digest() != before
        database.overwrite_quality(Channel.POWER, 20, ok)
        assert database.dataset_digest() == before


class TestDigestIncrementality:
    def test_append_rehashes_only_tail(self):
        rng = np.random.default_rng(8)
        chunk_rows = 64
        database = _filled_database(chunk_rows * 10, seed=8)
        first = database.digest_info(chunk_rows=chunk_rows)
        assert first.hashed_chunks == 10 and first.reused_chunks == 0
        # Steady state: everything is served from the chunk cache.
        again = database.digest_info(chunk_rows=chunk_rows)
        assert again.hashed_chunks == 0 and again.reused_chunks == 10
        assert again.root == first.root
        # Append half a chunk: one new partial tail, nothing rehashed.
        extra = chunk_rows // 2
        last = float(database.epoch_s[-1])
        database.append_block(
            last + 60.0 * (1.0 + np.arange(extra)),
            {ch: rng.normal(70.0, 5.0, size=(extra, RACKS)) for ch in CHANNELS},
        )
        after = database.digest_info(chunk_rows=chunk_rows)
        assert after.rows == chunk_rows * 10 + extra
        assert after.hashed_chunks == 1
        assert after.reused_chunks == 10
        assert after.chunk_hashes[:10] == first.chunk_hashes
        assert after.root != first.root

    def test_append_digest_equals_from_scratch(self):
        """Incremental maintenance must agree with a cold full pass."""
        rng = np.random.default_rng(9)
        rows, extra, chunk_rows = 200, 30, 64
        epoch = 1_600_000_000.0 + 60.0 * np.arange(rows + extra)
        blocks = {
            ch: rng.normal(70.0, 5.0, size=(rows + extra, RACKS)) for ch in CHANNELS
        }
        grown = EnvironmentalDatabase(num_racks=RACKS)
        grown.append_block(epoch[:rows], {ch: blocks[ch][:rows] for ch in CHANNELS})
        grown.digest_info(chunk_rows=chunk_rows)  # warm the chunk cache
        grown.append_block(epoch[rows:], {ch: blocks[ch][rows:] for ch in CHANNELS})
        cold = EnvironmentalDatabase(num_racks=RACKS)
        cold.append_block(epoch, blocks)
        assert (
            grown.digest_info(chunk_rows=chunk_rows).root
            == cold.digest_info(chunk_rows=chunk_rows).root
        )

    def test_quality_mutation_invalidates_only_touched_chunks(self):
        database = _filled_database(64 * 4, seed=10)
        database.digest_info(chunk_rows=64)
        mask = np.zeros((64 * 4, RACKS), dtype=bool)
        mask[70, 0] = True  # chunk 1
        database.update_quality(Channel.POWER, mask, Quality.SUSPECT)
        info = database.digest_info(chunk_rows=64)
        assert info.hashed_chunks == 1
        assert info.reused_chunks == 3

    def test_flush_false_addresses_committed_rows_only(self):
        database = EnvironmentalDatabase(
            num_racks=RACKS,
            policy=IngestPolicy.lenient(reorder_window_s=3600.0),
        )
        values = {ch: np.full(RACKS, 70.0) for ch in CHANNELS}
        for k in range(5):
            database.append_snapshot(1_600_000_000.0 + 60.0 * k, values)
        live = database.digest_info(flush=False)
        assert live.rows < 5  # the reorder window still holds rows back
        assert database.digest_info(flush=True).rows == 5


class TestDigestHelpers:
    def test_chunk_count(self):
        assert chunk_count(0, 64) == 0
        assert chunk_count(1, 64) == 1
        assert chunk_count(64, 64) == 1
        assert chunk_count(65, 64) == 2

    def test_default_chunk_rows(self):
        assert DIGEST_CHUNK_ROWS == 4096

    def test_hash_block_channel_order_matters(self):
        epoch = np.arange(3, dtype="float64")
        values = {ch: np.zeros((3, 2)) for ch in CHANNELS}
        quality = {ch: np.zeros((3, 2), dtype=np.uint8) for ch in CHANNELS}
        values[CHANNELS[0]][0, 0] = 1.0
        one = hash_block(epoch, values, quality)
        values[CHANNELS[0]][0, 0] = 0.0
        values[CHANNELS[1]][0, 0] = 1.0
        other = hash_block(epoch, values, quality)
        assert one != other

    def test_root_digest_includes_geometry(self):
        hashes = ["ab" * 32]
        assert root_digest(10, 4, 64, hashes) != root_digest(10, 8, 64, hashes)
        assert root_digest(10, 4, 64, hashes) != root_digest(11, 4, 64, hashes)

    def test_hash_row_range_bounds(self):
        database = _filled_database(10)
        with pytest.raises(IndexError):
            database.hash_row_range(0, 11)
        with pytest.raises(IndexError):
            database.hash_row_range(-1, 5)
