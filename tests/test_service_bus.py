"""ReplayBus: ordering, pacing, and backpressure policy semantics."""

import numpy as np
import pytest

from repro.service import (
    BACKPRESSURE_POLICIES,
    CountingSubscriber,
    ReplayBus,
)
from repro.telemetry.records import CHANNELS, Channel

_RACKS = 4


def _rows(n, dt_s=300.0, start=0.0):
    """A synthetic source: n whole-floor rows, value == sample index."""
    rows = []
    for i in range(n):
        values = {Channel.POWER: np.full(_RACKS, float(i))}
        rows.append((start + i * dt_s, values, {}))
    return rows


class TestPublishing:
    def test_every_row_published_in_order(self):
        bus = ReplayBus(_rows(50))
        counter = CountingSubscriber(keep_seqs=True)
        bus.subscribe("counter", counter)
        report = bus.run()
        assert report.published == 50
        assert counter.received == 50
        assert counter.seqs == list(range(50))
        assert counter.monotonic
        assert counter.gaps == 0
        assert counter.missing == 0

    def test_database_replay_window(self, demo_result):
        db = demo_result.database
        epochs = db.epoch_s
        start, end = float(epochs[10]), float(epochs[30])
        captured = []

        def collect(sample):
            captured.append(
                (sample.epoch_s, sample.values[Channel.POWER].copy())
            )

        bus = ReplayBus(db, start_epoch_s=start, end_epoch_s=end)
        bus.subscribe("collect", collect)
        report = bus.run()
        assert report.published == 20
        offline = db.channel(Channel.POWER).values
        for offset, (epoch, power) in enumerate(captured):
            assert epoch == pytest.approx(epochs[10 + offset])
            np.testing.assert_array_equal(
                power, offline[10 + offset], strict=False
            )

    def test_samples_carry_every_channel(self, demo_result):
        seen = {}

        def collect(sample):
            if not seen:
                seen["channels"] = set(sample.values) | set(sample.quality)

        bus = ReplayBus(
            demo_result.database,
            end_epoch_s=demo_result.start_epoch_s + 3600.0,
        )
        bus.subscribe("collect", collect)
        bus.run()
        assert seen["channels"] == set(CHANNELS)

    def test_paced_replay_honours_speedup(self):
        # 9 intervals x 300 s at 13500x ~= 0.2 s of wall clock.
        bus = ReplayBus(_rows(10), speedup=13_500.0)
        bus.subscribe("counter", CountingSubscriber())
        report = bus.run()
        assert report.published == 10
        assert report.duration_s >= 0.15
        assert report.achieved_speedup <= 20_000.0

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ValueError):
            ReplayBus(_rows(1), speedup=0.0)

    def test_duplicate_subscriber_name_rejected(self):
        bus = ReplayBus(_rows(1))
        bus.subscribe("twin", CountingSubscriber())
        with pytest.raises(ValueError):
            bus.subscribe("twin", CountingSubscriber())

    def test_invalid_policy_and_capacity_rejected(self):
        bus = ReplayBus(_rows(1))
        with pytest.raises(ValueError):
            bus.subscribe("bad", CountingSubscriber(), policy="spill")
        with pytest.raises(ValueError):
            bus.subscribe("bad", CountingSubscriber(), capacity=0)


class TestBackpressure:
    """One slow subscriber under each policy, counters asserted."""

    N = 60

    def _run_slow(self, policy, capacity=4, delay_s=0.004):
        bus = ReplayBus(_rows(self.N))
        slow = CountingSubscriber(delay_s=delay_s, keep_seqs=True)
        subscription = bus.subscribe(
            "slow", slow, capacity=capacity, policy=policy
        )
        report = bus.run()
        return report, slow, report.subscribers["slow"], subscription

    def test_block_loses_nothing(self):
        report, slow, counters, subscription = self._run_slow("block")
        assert counters.enqueued == self.N
        assert counters.delivered == self.N
        assert counters.dropped == 0
        assert counters.coalesced == 0
        assert slow.seqs == list(range(self.N))
        assert slow.gaps == 0
        assert slow.missing == 0
        assert counters.max_queue_depth <= 4
        assert subscription.backlog == 0

    def test_drop_oldest_sheds_load_without_stalling(self):
        report, slow, counters, _ = self._run_slow("drop_oldest")
        assert counters.enqueued == self.N
        assert counters.delivered + counters.dropped == self.N
        assert counters.dropped > 0
        assert counters.coalesced == 0
        # Gapped but ordered, and the freshest sample always survives.
        assert slow.monotonic
        assert slow.last_seq == self.N - 1
        # Every dropped sample shows up as an observed sequence gap.
        assert slow.gaps > 0
        assert slow.missing == counters.dropped
        assert counters.max_queue_depth <= 4
        # The publisher never waited on the slow consumer.
        assert report.duration_s < 0.5 * self.N * 0.004

    def test_coalesce_supersedes_intermediate_samples(self):
        report, slow, counters, _ = self._run_slow("coalesce")
        assert counters.enqueued == self.N
        assert counters.delivered + counters.coalesced == self.N
        assert counters.coalesced > 0
        assert counters.dropped == 0
        assert slow.monotonic
        assert slow.last_seq == self.N - 1
        # Superseded samples are exactly the missing sequence numbers.
        assert slow.gaps > 0
        assert slow.missing == counters.coalesced
        assert report.duration_s < 0.5 * self.N * 0.004

    @pytest.mark.parametrize("policy", ["drop_oldest", "coalesce"])
    def test_fast_subscriber_never_stalled_by_slow_peer(self, policy):
        n = 40
        delay = 0.01
        bus = ReplayBus(_rows(n))
        slow = CountingSubscriber(delay_s=delay)
        fast = CountingSubscriber(keep_seqs=True)
        bus.subscribe("slow", slow, capacity=2, policy=policy)
        bus.subscribe("fast", fast, capacity=n)
        report = bus.run()
        # The fast subscriber saw the complete, gap-free stream even
        # though its peer could only keep up with a fraction of it.
        assert fast.seqs == list(range(n))
        slow_counters = report.subscribers["slow"]
        assert slow_counters.delivered < n
        # Publishing finished far sooner than the slow consumer's
        # nominal n * delay of work: the bus never throttled on it.
        assert report.duration_s < 0.5 * n * delay

    def test_block_policy_throttles_the_whole_bus(self):
        n = 20
        delay = 0.005
        bus = ReplayBus(_rows(n))
        slow = CountingSubscriber(delay_s=delay)
        bus.subscribe("slow", slow, capacity=2, policy="block")
        report = bus.run()
        assert report.subscribers["slow"].delivered == n
        # Nothing is lost, at the price of pacing at the consumer.
        assert report.duration_s >= 0.5 * n * delay

    def test_lag_counter_sees_backlog(self):
        _, _, counters, _ = self._run_slow("drop_oldest")
        assert counters.max_lag > 1
        assert counters.max_lag <= self.N

    def test_callback_errors_swallowed_and_counted(self):
        failures = {"count": 0}

        def flaky(sample):
            if sample.seq % 3 == 0:
                failures["count"] += 1
                raise RuntimeError("boom")

        bus = ReplayBus(_rows(30))
        bus.subscribe("flaky", flaky)
        ok = CountingSubscriber()
        bus.subscribe("ok", ok)
        report = bus.run()
        assert report.subscribers["flaky"].errors == failures["count"] == 10
        assert report.subscribers["flaky"].delivered == 30
        assert ok.received == 30

    def test_concurrent_subscribers_each_get_private_queue(self):
        names = [f"sub{i}" for i in range(5)]
        bus = ReplayBus(_rows(25))
        counters = {name: CountingSubscriber() for name in names}
        for name in names:
            bus.subscribe(name, counters[name])
        report = bus.run()
        for name in names:
            assert counters[name].received == 25
            assert report.subscribers[name].dropped == 0


class TestBusReport:
    def test_span_and_rates(self):
        bus = ReplayBus(_rows(10, dt_s=300.0))
        bus.subscribe("counter", CountingSubscriber())
        report = bus.run()
        assert report.simulated_span_s == pytest.approx(9 * 300.0)
        assert report.rows_per_sec > 0
        assert report.achieved_speedup > 0

    def test_empty_source(self):
        bus = ReplayBus([])
        counter = CountingSubscriber()
        bus.subscribe("counter", counter)
        report = bus.run()
        assert report.published == 0
        assert report.simulated_span_s == 0.0
        assert counter.received == 0
