"""Fig 12: the lead-up aggregation."""

import numpy as np
import pytest

from repro import constants
from repro.core.leadup import aggregate_leadup
from repro.telemetry.records import Channel


@pytest.fixture(scope="module")
def aggregate(year_windows):
    positives, _ = year_windows
    return aggregate_leadup(positives)


class TestLeadupAggregate:
    def test_uses_all_positive_windows(self, aggregate, year_windows):
        positives, _ = year_windows
        assert aggregate.windows_used == len(positives)

    def test_inlet_sag_matches_paper_band(self, aggregate):
        # Paper: drop by as much as 7 % (mean over variable-severity
        # events lands below that).
        assert -0.09 < aggregate.inlet_min_change < -0.02

    def test_inlet_final_rise(self, aggregate):
        # Paper: rises by up to 8 % half an hour before the CMF.
        assert 0.02 < aggregate.inlet_final_change < 0.12

    def test_outlet_sag_matches_paper_band(self, aggregate):
        # Paper: decreases by 5 % three hours before.
        assert -0.09 < aggregate.outlet_min_change < -0.02

    def test_flow_stable_until_final_half_hour(self, aggregate):
        # Paper: flow stays flat until ~30 min out.
        assert aggregate.flow_stable_until_h <= 0.5

    def test_flow_collapses_at_event(self, aggregate):
        assert aggregate.change_at(Channel.FLOW, 0.0) < -0.3

    def test_power_and_dc_temperature_stay_flat(self, aggregate):
        for channel in (Channel.POWER, Channel.DC_TEMPERATURE):
            changes = aggregate.relative_change[channel]
            assert np.max(np.abs(changes)) < 0.08

    def test_change_at_interpolates(self, aggregate):
        at_four = aggregate.change_at(Channel.INLET_TEMPERATURE, 4.0)
        assert at_four == pytest.approx(aggregate.inlet_min_change, abs=0.02)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            aggregate_leadup([])
