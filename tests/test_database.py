"""The environmental database."""

import numpy as np
import pytest

from repro import constants
from repro.cooling.monitor import SensorReading
from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase, IngestPolicy
from repro.telemetry.records import Channel, Quality


def _snapshot(value=1.0):
    return {ch: np.full(constants.NUM_RACKS, value) for ch in Channel}


class TestIngest:
    def test_append_and_query(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(2.0))
        db.append_snapshot(300.0, _snapshot(3.0))
        series = db.channel(Channel.POWER)
        assert len(series) == 2
        assert series.values[1, 0] == 3.0

    def test_growth_beyond_capacity_hint(self):
        db = EnvironmentalDatabase(capacity_hint=4)
        for i in range(100):
            db.append_snapshot(float(i), _snapshot(float(i)))
        assert db.num_samples == 100
        assert db.channel(Channel.FLOW).values[99, 0] == 99.0

    def test_out_of_order_rejected(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(100.0, _snapshot())
        with pytest.raises(ValueError):
            db.append_snapshot(50.0, _snapshot())

    def test_wrong_width_rejected(self):
        db = EnvironmentalDatabase()
        with pytest.raises(ValueError):
            db.append_snapshot(0.0, {Channel.POWER: np.ones(10)})

    def test_missing_channels_are_nan(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, {Channel.POWER: np.ones(constants.NUM_RACKS)})
        flow = db.channel(Channel.FLOW)
        assert np.isnan(flow.values).all()

    def test_ingest_single_reading(self):
        db = EnvironmentalDatabase()
        reading = SensorReading(
            epoch_s=0.0,
            rack_id=RackId(1, 8),
            dc_temperature_f=80.0,
            dc_humidity_rh=33.0,
            flow_gpm=26.0,
            inlet_temperature_f=64.0,
            outlet_temperature_f=79.0,
            power_kw=55.0,
        )
        db.ingest_reading(reading, utilization=0.9)
        flat = RackId(1, 8).flat_index
        assert db.channel(Channel.FLOW).values[0, flat] == 26.0
        assert np.isnan(db.channel(Channel.FLOW).values[0, 0])
        assert db.channel(Channel.UTILIZATION).values[0, flat] == 0.9


def _block(epochs, value=1.0):
    n = len(epochs)
    return {ch: np.full((n, constants.NUM_RACKS), value) for ch in Channel}


class TestAppendBlock:
    def test_block_and_query(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(5) * 300.0
        db.append_block(epochs, _block(epochs, 7.0))
        assert db.num_samples == 5
        assert np.array_equal(db.epoch_s, epochs)
        assert (db.channel(Channel.POWER).values == 7.0).all()

    def test_empty_block_is_noop(self):
        db = EnvironmentalDatabase()
        db.append_block(np.empty(0), {})
        assert db.num_samples == 0

    def test_growth_across_block_boundaries(self):
        db = EnvironmentalDatabase(capacity_hint=16)
        for start in range(0, 100, 7):
            epochs = (start + np.arange(7)) * 60.0
            db.append_block(epochs, _block(epochs, float(start)))
        assert db.num_samples == 105
        assert db.channel(Channel.FLOW).values[104, 0] == 98.0
        assert np.all(np.diff(db.epoch_s) > 0)

    def test_non_1d_epochs_rejected(self):
        db = EnvironmentalDatabase()
        with pytest.raises(ValueError):
            db.append_block(np.zeros((2, 2)), {})

    def test_internally_unsorted_rejected(self):
        db = EnvironmentalDatabase()
        epochs = np.array([0.0, 300.0, 200.0])
        with pytest.raises(ValueError):
            db.append_block(epochs, _block(epochs))

    def test_out_of_order_against_stored_rejected(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(1000.0, _snapshot())
        epochs = np.array([500.0, 600.0])
        with pytest.raises(ValueError):
            db.append_block(epochs, _block(epochs))

    def test_wrong_shape_rejected_without_partial_write(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(3) * 100.0
        bad = _block(epochs)
        bad[Channel.POWER] = np.ones((3, 10))
        with pytest.raises(ValueError):
            db.append_block(epochs, bad)
        # The rejected block must not have been partially ingested.
        assert db.num_samples == 0

    def test_missing_channels_are_nan(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(4) * 100.0
        db.append_block(
            epochs, {Channel.POWER: np.ones((4, constants.NUM_RACKS))}
        )
        assert np.isnan(db.channel(Channel.FLOW).values).all()

    def test_compact_then_append_block(self):
        db = EnvironmentalDatabase(capacity_hint=64)
        epochs = np.arange(5) * 100.0
        db.append_block(epochs, _block(epochs, 1.0))
        db.compact()
        later = 500.0 + np.arange(5) * 100.0
        db.append_block(later, _block(later, 2.0))
        assert db.num_samples == 10
        assert db.channel(Channel.POWER).values[9, 0] == 2.0

    def test_block_matches_row_ingest(self):
        """One bulk block and step-by-step snapshots store identically."""
        rng = np.random.default_rng(3)
        epochs = np.arange(20) * 300.0
        data = {
            ch: rng.normal(size=(20, constants.NUM_RACKS)) for ch in Channel
        }
        bulk = EnvironmentalDatabase(capacity_hint=4)
        bulk.append_block(epochs, data)
        rows = EnvironmentalDatabase(capacity_hint=4)
        for i, t in enumerate(epochs):
            rows.append_snapshot(float(t), {ch: data[ch][i] for ch in Channel})
        assert np.array_equal(bulk.epoch_s, rows.epoch_s)
        for ch in Channel:
            assert np.array_equal(
                bulk.channel(ch).values, rows.channel(ch).values
            )


class TestQueries:
    def test_rack_channel(self):
        db = EnvironmentalDatabase()
        values = _snapshot(1.0)
        values[Channel.POWER][RackId(0, 5).flat_index] = 42.0
        db.append_snapshot(0.0, values)
        series = db.rack_channel(Channel.POWER, RackId(0, 5))
        assert series.values[0] == 42.0

    def test_window(self):
        db = EnvironmentalDatabase()
        for i in range(10):
            db.append_snapshot(float(i * 100), _snapshot(float(i)))
        cut = db.window(Channel.POWER, 200.0, 500.0)
        assert len(cut) == 3

    def test_system_power_sums_racks(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(55.0))
        system = db.system_power_mw()
        assert system.values[0] == pytest.approx(48 * 55.0 / 1000.0)

    def test_system_utilization_averages(self):
        db = EnvironmentalDatabase()
        snapshot = _snapshot(0.5)
        db.append_snapshot(0.0, snapshot)
        assert db.system_utilization().values[0] == pytest.approx(0.5)

    def test_total_flow(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(26.0))
        assert db.total_flow_gpm().values[0] == pytest.approx(48 * 26.0)

    def test_compact_preserves_data(self):
        db = EnvironmentalDatabase(capacity_hint=100)
        for i in range(5):
            db.append_snapshot(float(i), _snapshot(float(i)))
        db.compact()
        assert db.num_samples == 5
        assert db.channel(Channel.POWER).values[4, 0] == 4.0

    def test_bad_num_racks_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentalDatabase(num_racks=0)

    def test_query_views_are_read_only(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(1.0))
        for view in (
            db.epoch_s,
            db.channel(Channel.FLOW).values,
            db.rack_channel(Channel.FLOW, RackId(0, 0)).values,
            db.quality(Channel.FLOW),
            db.rack_quality(Channel.FLOW, RackId(0, 0)),
        ):
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 0

    def test_read_only_views_do_not_freeze_the_store(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(1.0))
        _ = db.channel(Channel.FLOW)
        db.append_snapshot(300.0, _snapshot(2.0))
        assert db.channel(Channel.FLOW).values[1, 0] == 2.0


class TestSlowIngestPaths:
    """The row-at-a-time paths the bulk simulator never exercises."""

    def _reading(self, epoch_s, rack, flow=26.0):
        return SensorReading(
            epoch_s=epoch_s,
            rack_id=rack,
            dc_temperature_f=80.0,
            dc_humidity_rh=33.0,
            flow_gpm=flow,
            inlet_temperature_f=64.0,
            outlet_temperature_f=79.0,
            power_kw=55.0,
        )

    def test_ingest_reading_roundtrip_through_rack_channel(self):
        db = EnvironmentalDatabase()
        rack = RackId(2, 7)
        for i, flow in enumerate((25.0, 26.5, 24.8)):
            db.ingest_reading(self._reading(i * 300.0, rack, flow=flow))
        series = db.rack_channel(Channel.FLOW, rack)
        assert list(series.values) == [25.0, 26.5, 24.8]
        assert list(series.epoch_s) == [0.0, 300.0, 600.0]
        # Every other rack stayed NaN and is flagged MISSING.
        other = RackId(0, 0)
        assert np.isnan(db.rack_channel(Channel.FLOW, other).values).all()
        assert (db.rack_quality(Channel.FLOW, other) == Quality.MISSING).all()
        assert (db.rack_quality(Channel.FLOW, rack) == Quality.OK).all()

    def test_ingest_reading_merges_same_timestamp(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(duplicate_policy="merge")
        )
        db.ingest_reading(self._reading(0.0, RackId(0, 0), flow=20.0))
        db.ingest_reading(self._reading(0.0, RackId(1, 1), flow=30.0))
        assert db.num_samples == 1
        flow = db.channel(Channel.FLOW).values
        assert flow[0, RackId(0, 0).flat_index] == 20.0
        assert flow[0, RackId(1, 1).flat_index] == 30.0

    def test_strict_duplicate_snapshot_appends_distinct_rows(self):
        # The historical strict contract: only *regressions* raise;
        # equal timestamps append as distinct rows.
        db = EnvironmentalDatabase()
        db.append_snapshot(100.0, _snapshot(1.0))
        db.append_snapshot(100.0, _snapshot(2.0))
        assert db.num_samples == 2
        assert list(db.channel(Channel.POWER).values[:, 0]) == [1.0, 2.0]
        with pytest.raises(ValueError):
            db.append_snapshot(99.0, _snapshot(3.0))

    def test_compact_then_append_snapshot(self):
        db = EnvironmentalDatabase(capacity_hint=64)
        for i in range(5):
            db.append_snapshot(i * 100.0, _snapshot(float(i)))
        db.compact()
        db.append_snapshot(500.0, _snapshot(9.0))
        assert db.num_samples == 6
        assert db.channel(Channel.POWER).values[5, 0] == 9.0
        assert (db.quality(Channel.POWER) == Quality.OK).all()


class TestIngestPolicy:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(reorder_window_s=-1.0)
        with pytest.raises(ValueError):
            IngestPolicy(duplicate_policy="nonsense")

    def test_lenient_reorders_within_window(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(reorder_window_s=600.0)
        )
        db.append_snapshot(0.0, _snapshot(1.0))
        db.append_snapshot(300.0, _snapshot(3.0))
        db.append_snapshot(150.0, _snapshot(2.0))
        db.flush()
        assert list(db.epoch_s) == [0.0, 150.0, 300.0]
        assert db.counters.reordered_rows == 1
        assert db.counters.accepted_rows == 3

    def test_lenient_drops_hopelessly_late(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(reorder_window_s=100.0)
        )
        for i in range(5):
            db.append_snapshot(i * 1000.0, _snapshot(float(i)))
        db.append_snapshot(1500.0, _snapshot(99.0))
        db.flush()
        assert db.counters.dropped_late_rows == 1
        assert 1500.0 not in db.epoch_s

    def test_duplicate_first_keeps_original(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(duplicate_policy="first")
        )
        db.append_snapshot(0.0, _snapshot(1.0))
        db.append_snapshot(0.0, _snapshot(2.0))
        db.flush()
        assert db.num_samples == 1
        assert db.channel(Channel.POWER).values[0, 0] == 1.0
        assert db.counters.duplicate_rows == 1

    def test_duplicate_last_overwrites(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(duplicate_policy="last")
        )
        db.append_snapshot(0.0, _snapshot(1.0))
        db.append_snapshot(0.0, _snapshot(2.0))
        db.flush()
        assert db.channel(Channel.POWER).values[0, 0] == 2.0

    def test_duplicate_merge_fills_holes_only(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(duplicate_policy="merge")
        )
        first = _snapshot(1.0)
        first[Channel.FLOW][:] = np.nan
        db.append_snapshot(0.0, first)
        db.append_snapshot(0.0, _snapshot(2.0))
        db.flush()
        assert db.channel(Channel.POWER).values[0, 0] == 1.0  # kept
        assert db.channel(Channel.FLOW).values[0, 0] == 2.0  # filled
        assert (db.quality(Channel.FLOW) == Quality.OK).all()

    def test_duplicate_against_committed_row(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(duplicate_policy="last")
        )
        db.append_snapshot(0.0, _snapshot(1.0))
        db.append_snapshot(1000.0, _snapshot(2.0))
        db.flush()
        db.append_snapshot(0.0, _snapshot(5.0))
        db.flush()
        assert db.num_samples == 2
        assert db.channel(Channel.POWER).values[0, 0] == 5.0
        assert db.counters.duplicate_rows == 1

    def test_queries_flush_pending_rows(self):
        db = EnvironmentalDatabase(
            policy=IngestPolicy.lenient(reorder_window_s=1e9)
        )
        db.append_snapshot(0.0, _snapshot(1.0))
        db.append_snapshot(300.0, _snapshot(2.0))
        # No explicit flush: num_samples/queries must see both rows.
        assert db.num_samples == 2
        assert db.channel(Channel.POWER).values[1, 0] == 2.0


class TestQualityMasks:
    def test_ok_and_missing_at_ingest(self):
        db = EnvironmentalDatabase()
        row = _snapshot(1.0)
        row[Channel.FLOW][3] = np.nan
        db.append_snapshot(0.0, row)
        quality = db.quality(Channel.FLOW)
        assert quality[0, 3] == Quality.MISSING
        assert quality[0, 0] == Quality.OK
        assert db.missing_cells(Channel.FLOW) == 1

    def test_update_quality_escalates_only_ok(self):
        db = EnvironmentalDatabase()
        row = _snapshot(1.0)
        row[Channel.FLOW][0] = np.nan
        db.append_snapshot(0.0, row)
        mask = np.ones((1, constants.NUM_RACKS), dtype=bool)
        changed = db.update_quality(Channel.FLOW, mask, Quality.SUSPECT)
        assert changed == constants.NUM_RACKS - 1
        quality = db.quality(Channel.FLOW)
        assert quality[0, 0] == Quality.MISSING  # not downgraded
        assert quality[0, 1] == Quality.SUSPECT

    def test_coverage_counts_usable_cells(self):
        db = EnvironmentalDatabase()
        row = _snapshot(1.0)
        row[Channel.FLOW][:24] = np.nan
        db.append_snapshot(0.0, row)
        coverage = db.coverage(Channel.FLOW)
        assert coverage.values[0] == pytest.approx(0.5)

    def test_quality_survives_growth_and_compact(self):
        db = EnvironmentalDatabase(capacity_hint=2)
        for i in range(10):
            row = _snapshot(float(i))
            row[Channel.FLOW][i % constants.NUM_RACKS] = np.nan
            db.append_snapshot(i * 100.0, row)
        db.compact()
        quality = db.quality(Channel.FLOW)
        assert quality.shape == (10, constants.NUM_RACKS)
        assert db.missing_cells(Channel.FLOW) == 10


class TestAggregatesWithHoles:
    def test_system_utilization_all_nan_sample(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, {Channel.POWER: np.ones(constants.NUM_RACKS)})
        series = db.system_utilization()
        assert np.isnan(series.values).all()

    def test_system_power_scales_by_coverage(self):
        db = EnvironmentalDatabase()
        row = {Channel.POWER: np.full(constants.NUM_RACKS, np.nan)}
        row[Channel.POWER][:12] = 55.0  # a quarter of the racks report
        db.append_snapshot(0.0, row)
        db.append_snapshot(300.0, {Channel.FLOW: np.ones(constants.NUM_RACKS)})
        power = db.system_power_mw()
        # Missing racks are estimated at the reporting-rack mean, so
        # the total matches a fully-reporting floor.
        assert power.values[0] == pytest.approx(48 * 55.0 / 1000.0)
        assert np.isnan(power.values[1])


class TestEmptyWindows:
    """Empty time windows reduce to NaN/empty silently.

    pytest promotes ``RuntimeWarning`` to an error and ``np.nanmin`` /
    ``np.nanmax`` raise outright on zero-size input, so simply
    executing these is the assertion.
    """

    @pytest.fixture()
    def db(self):
        db = EnvironmentalDatabase()
        for i in range(4):
            db.append_snapshot(i * 300.0, _snapshot(float(i + 1)))
        return db

    def test_window_past_the_data_is_empty(self, db):
        series = db.window(Channel.POWER, 10_000.0, 20_000.0)
        assert len(series) == 0
        assert series.values.shape[0] == 0

    @pytest.mark.parametrize("reducer", ["mean", "median", "sum", "min", "max"])
    def test_across_racks_on_empty_window(self, db, reducer):
        series = db.window(Channel.POWER, 10_000.0, 20_000.0)
        reduced = series.across_racks(reducer)
        assert len(reduced) == 0

    @pytest.mark.parametrize("reducer", ["mean", "min", "max"])
    def test_scalar_reduction_of_empty_window(self, db, reducer):
        from repro.telemetry import nanstats

        func = getattr(nanstats, f"nan{reducer}")
        assert np.isnan(func(db.window(Channel.POWER, 10_000.0, 20_000.0).values))

    def test_empty_window_reduction_keeps_axis_shape(self, db):
        from repro.telemetry import nanstats

        values = db.window(Channel.POWER, 10_000.0, 20_000.0).values
        for func in (nanstats.nanmin, nanstats.nanmax, nanstats.nanmean):
            assert func(values, axis=1).shape == (0,)

    def test_coverage_on_empty_database(self):
        db = EnvironmentalDatabase()
        coverage = db.coverage(Channel.POWER)
        assert len(coverage) == 0

    def test_aggregates_on_empty_database(self):
        db = EnvironmentalDatabase()
        assert len(db.system_power_mw()) == 0
        assert len(db.system_utilization()) == 0
        assert len(db.total_flow_gpm()) == 0
