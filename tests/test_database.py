"""The environmental database."""

import numpy as np
import pytest

from repro import constants
from repro.cooling.monitor import SensorReading
from repro.facility.topology import RackId
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import Channel


def _snapshot(value=1.0):
    return {ch: np.full(constants.NUM_RACKS, value) for ch in Channel}


class TestIngest:
    def test_append_and_query(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(2.0))
        db.append_snapshot(300.0, _snapshot(3.0))
        series = db.channel(Channel.POWER)
        assert len(series) == 2
        assert series.values[1, 0] == 3.0

    def test_growth_beyond_capacity_hint(self):
        db = EnvironmentalDatabase(capacity_hint=4)
        for i in range(100):
            db.append_snapshot(float(i), _snapshot(float(i)))
        assert db.num_samples == 100
        assert db.channel(Channel.FLOW).values[99, 0] == 99.0

    def test_out_of_order_rejected(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(100.0, _snapshot())
        with pytest.raises(ValueError):
            db.append_snapshot(50.0, _snapshot())

    def test_wrong_width_rejected(self):
        db = EnvironmentalDatabase()
        with pytest.raises(ValueError):
            db.append_snapshot(0.0, {Channel.POWER: np.ones(10)})

    def test_missing_channels_are_nan(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, {Channel.POWER: np.ones(constants.NUM_RACKS)})
        flow = db.channel(Channel.FLOW)
        assert np.isnan(flow.values).all()

    def test_ingest_single_reading(self):
        db = EnvironmentalDatabase()
        reading = SensorReading(
            epoch_s=0.0,
            rack_id=RackId(1, 8),
            dc_temperature_f=80.0,
            dc_humidity_rh=33.0,
            flow_gpm=26.0,
            inlet_temperature_f=64.0,
            outlet_temperature_f=79.0,
            power_kw=55.0,
        )
        db.ingest_reading(reading, utilization=0.9)
        flat = RackId(1, 8).flat_index
        assert db.channel(Channel.FLOW).values[0, flat] == 26.0
        assert np.isnan(db.channel(Channel.FLOW).values[0, 0])
        assert db.channel(Channel.UTILIZATION).values[0, flat] == 0.9


def _block(epochs, value=1.0):
    n = len(epochs)
    return {ch: np.full((n, constants.NUM_RACKS), value) for ch in Channel}


class TestAppendBlock:
    def test_block_and_query(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(5) * 300.0
        db.append_block(epochs, _block(epochs, 7.0))
        assert db.num_samples == 5
        assert np.array_equal(db.epoch_s, epochs)
        assert (db.channel(Channel.POWER).values == 7.0).all()

    def test_empty_block_is_noop(self):
        db = EnvironmentalDatabase()
        db.append_block(np.empty(0), {})
        assert db.num_samples == 0

    def test_growth_across_block_boundaries(self):
        db = EnvironmentalDatabase(capacity_hint=16)
        for start in range(0, 100, 7):
            epochs = (start + np.arange(7)) * 60.0
            db.append_block(epochs, _block(epochs, float(start)))
        assert db.num_samples == 105
        assert db.channel(Channel.FLOW).values[104, 0] == 98.0
        assert np.all(np.diff(db.epoch_s) > 0)

    def test_non_1d_epochs_rejected(self):
        db = EnvironmentalDatabase()
        with pytest.raises(ValueError):
            db.append_block(np.zeros((2, 2)), {})

    def test_internally_unsorted_rejected(self):
        db = EnvironmentalDatabase()
        epochs = np.array([0.0, 300.0, 200.0])
        with pytest.raises(ValueError):
            db.append_block(epochs, _block(epochs))

    def test_out_of_order_against_stored_rejected(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(1000.0, _snapshot())
        epochs = np.array([500.0, 600.0])
        with pytest.raises(ValueError):
            db.append_block(epochs, _block(epochs))

    def test_wrong_shape_rejected_without_partial_write(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(3) * 100.0
        bad = _block(epochs)
        bad[Channel.POWER] = np.ones((3, 10))
        with pytest.raises(ValueError):
            db.append_block(epochs, bad)
        # The rejected block must not have been partially ingested.
        assert db.num_samples == 0

    def test_missing_channels_are_nan(self):
        db = EnvironmentalDatabase()
        epochs = np.arange(4) * 100.0
        db.append_block(
            epochs, {Channel.POWER: np.ones((4, constants.NUM_RACKS))}
        )
        assert np.isnan(db.channel(Channel.FLOW).values).all()

    def test_compact_then_append_block(self):
        db = EnvironmentalDatabase(capacity_hint=64)
        epochs = np.arange(5) * 100.0
        db.append_block(epochs, _block(epochs, 1.0))
        db.compact()
        later = 500.0 + np.arange(5) * 100.0
        db.append_block(later, _block(later, 2.0))
        assert db.num_samples == 10
        assert db.channel(Channel.POWER).values[9, 0] == 2.0

    def test_block_matches_row_ingest(self):
        """One bulk block and step-by-step snapshots store identically."""
        rng = np.random.default_rng(3)
        epochs = np.arange(20) * 300.0
        data = {
            ch: rng.normal(size=(20, constants.NUM_RACKS)) for ch in Channel
        }
        bulk = EnvironmentalDatabase(capacity_hint=4)
        bulk.append_block(epochs, data)
        rows = EnvironmentalDatabase(capacity_hint=4)
        for i, t in enumerate(epochs):
            rows.append_snapshot(float(t), {ch: data[ch][i] for ch in Channel})
        assert np.array_equal(bulk.epoch_s, rows.epoch_s)
        for ch in Channel:
            assert np.array_equal(
                bulk.channel(ch).values, rows.channel(ch).values
            )


class TestQueries:
    def test_rack_channel(self):
        db = EnvironmentalDatabase()
        values = _snapshot(1.0)
        values[Channel.POWER][RackId(0, 5).flat_index] = 42.0
        db.append_snapshot(0.0, values)
        series = db.rack_channel(Channel.POWER, RackId(0, 5))
        assert series.values[0] == 42.0

    def test_window(self):
        db = EnvironmentalDatabase()
        for i in range(10):
            db.append_snapshot(float(i * 100), _snapshot(float(i)))
        cut = db.window(Channel.POWER, 200.0, 500.0)
        assert len(cut) == 3

    def test_system_power_sums_racks(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(55.0))
        system = db.system_power_mw()
        assert system.values[0] == pytest.approx(48 * 55.0 / 1000.0)

    def test_system_utilization_averages(self):
        db = EnvironmentalDatabase()
        snapshot = _snapshot(0.5)
        db.append_snapshot(0.0, snapshot)
        assert db.system_utilization().values[0] == pytest.approx(0.5)

    def test_total_flow(self):
        db = EnvironmentalDatabase()
        db.append_snapshot(0.0, _snapshot(26.0))
        assert db.total_flow_gpm().values[0] == pytest.approx(48 * 26.0)

    def test_compact_preserves_data(self):
        db = EnvironmentalDatabase(capacity_hint=100)
        for i in range(5):
            db.append_snapshot(float(i), _snapshot(float(i)))
        db.compact()
        assert db.num_samples == 5
        assert db.channel(Channel.POWER).values[4, 0] == 4.0

    def test_bad_num_racks_rejected(self):
        with pytest.raises(ValueError):
            EnvironmentalDatabase(num_racks=0)
