"""The stepping scheduler: queueing, backfill, maintenance, outages."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil
from repro.scheduler.allocator import MidplaneAllocator
from repro.scheduler.scheduler import (
    MaintenancePolicy,
    MiraScheduler,
    ReservationPolicy,
    SchedulerState,
)
from repro.scheduler.workload import WorkloadConfig, WorkloadGenerator


def _scheduler(seed=0, maintenance_probability=0.0, reservations_rate=0.0, **workload):
    config = WorkloadConfig(**workload) if workload else None
    generator = WorkloadGenerator(config=config, rng=np.random.default_rng(seed))
    return MiraScheduler(
        generator,
        rng=np.random.default_rng(seed + 1),
        maintenance=MaintenancePolicy(probability=maintenance_probability),
        reservations=ReservationPolicy(rate_per_day=reservations_rate),
    )


def _run(scheduler, start, hours, dt_s=3600.0):
    epoch = timeutil.to_epoch(start)
    states = []
    for i in range(hours):
        states.append(scheduler.step(epoch + i * dt_s, dt_s))
    return states


class TestBasicOperation:
    def test_utilization_builds_up(self):
        scheduler = _scheduler(seed=3)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 72)
        assert states[-1].system_utilization > 0.5
        assert states[-1].running_jobs > 0

    def test_rack_vectors_shape_and_range(self):
        scheduler = _scheduler(seed=3)
        state = _run(scheduler, dt.datetime(2015, 3, 3), 48)[-1]
        assert state.rack_utilization.shape == (constants.NUM_RACKS,)
        assert np.all(state.rack_utilization >= 0.0)
        assert np.all(state.rack_utilization <= 1.0)
        assert np.all(state.rack_intensity >= 0.0)

    def test_jobs_complete(self):
        scheduler = _scheduler(seed=3)
        _run(scheduler, dt.datetime(2015, 3, 3), 24 * 7)
        assert scheduler.completed_count > 50

    def test_bad_dt_rejected(self):
        scheduler = _scheduler()
        with pytest.raises(ValueError):
            scheduler.step(0.0, -1.0)

    def test_queue_cap_bounds_backlog(self):
        scheduler = _scheduler(seed=3, demand_start=3.0, demand_end=3.0)
        _run(scheduler, dt.datetime(2015, 3, 3), 24 * 14)
        assert len(scheduler.queued_jobs) <= scheduler.queue_cap


class TestMaintenance:
    def test_monday_maintenance_kills_user_jobs(self):
        scheduler = _scheduler(seed=5, maintenance_probability=1.0)
        # Start Tuesday; run past the following Monday 9 AM.
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 7)
        maintenance_states = [s for s in states if s.in_maintenance]
        assert maintenance_states, "expected a maintenance window"
        assert scheduler.killed_count > 0

    def test_maintenance_runs_burners(self):
        scheduler = _scheduler(seed=5, maintenance_probability=1.0)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 7)
        in_maintenance = [s for s in states if s.in_maintenance]
        # Burners keep most of the floor busy at reduced intensity.
        coverage = np.mean([s.system_utilization for s in in_maintenance])
        assert coverage > 0.6
        intensity = np.mean(
            [s.rack_intensity[s.rack_utilization > 0].mean() for s in in_maintenance]
        )
        assert intensity < 0.9

    def test_maintenance_starts_monday_morning(self):
        scheduler = _scheduler(seed=5, maintenance_probability=1.0)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 7)
        first = next(s for s in states if s.in_maintenance)
        assert int(timeutil.weekdays(first.epoch_s)) == 0
        assert int(timeutil.hours_of_day(first.epoch_s)) >= 9

    def test_system_recovers_after_maintenance(self):
        scheduler = _scheduler(seed=5, maintenance_probability=1.0)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 10)
        assert not states[-1].in_maintenance
        assert states[-1].system_utilization > 0.5

    def test_no_maintenance_when_probability_zero(self):
        scheduler = _scheduler(seed=5, maintenance_probability=0.0)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 7)
        assert not any(s.in_maintenance for s in states)


class TestRackOutages:
    def test_fail_racks_kills_touching_jobs(self):
        scheduler = _scheduler(seed=7)
        _run(scheduler, dt.datetime(2015, 3, 3), 48)
        before = scheduler.killed_count
        killed = scheduler.fail_racks(tuple(range(48)), timeutil.to_epoch(dt.datetime(2015, 3, 5)))
        assert killed > 0
        assert scheduler.killed_count == before + killed
        assert len(scheduler.running_jobs) == 0

    def test_failed_racks_blocked_until_recovery(self):
        scheduler = _scheduler(seed=7)
        _run(scheduler, dt.datetime(2015, 3, 3), 48)
        scheduler.fail_racks((0, 1), timeutil.to_epoch(dt.datetime(2015, 3, 5)))
        assert 0 in scheduler.allocator.blocked_racks
        scheduler.recover_racks((0, 1))
        assert 0 not in scheduler.allocator.blocked_racks

    def test_partial_failure_spares_other_jobs(self):
        scheduler = _scheduler(seed=7)
        _run(scheduler, dt.datetime(2015, 3, 3), 48)
        running_before = len(scheduler.running_jobs)
        scheduler.fail_racks((0,), timeutil.to_epoch(dt.datetime(2015, 3, 5)))
        assert len(scheduler.running_jobs) > 0
        assert len(scheduler.running_jobs) < running_before + 1


class TestBackfill:
    def test_backfill_fills_around_blocked_head(self):
        scheduler = _scheduler(seed=11, demand_start=1.5, demand_end=1.5)
        states = _run(scheduler, dt.datetime(2015, 3, 3), 24 * 5)
        # With a saturating workload and EASY backfill the machine
        # should run nearly full.
        assert states[-1].system_utilization > 0.85


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        s1 = _scheduler(seed=13, maintenance_probability=0.75)
        s2 = _scheduler(seed=13, maintenance_probability=0.75)
        states1 = _run(s1, dt.datetime(2015, 3, 3), 24 * 3)
        states2 = _run(s2, dt.datetime(2015, 3, 3), 24 * 3)
        for a, b in zip(states1, states2):
            assert np.allclose(a.rack_utilization, b.rack_utilization)
