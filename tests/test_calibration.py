"""Paper calibration: every figure's headline numbers on the canonical run.

These are the reproduction's acceptance tests: each assertion pins a
number the paper reports to a band around it.  Bands are generous —
the substrate is a synthetic facility, so we check *shape* (who wins,
what is flat, where the extremes sit), not third-digit agreement.
"""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.core.aftermath import analyze_aftermath
from repro.core.environment import ambient_spatial, ambient_trends
from repro.core.failure_analysis import analyze_cmfs
from repro.core.spatial import rack_coolant_profile, rack_power_profile
from repro.core.trends import coolant_trends, monthly_profile, weekday_profile, yearly_trends
from repro.facility.topology import RackId
from repro.telemetry.records import Channel


class TestFig2YearlyTrends:
    def test_power_rises_from_2_5_to_2_9(self, full_result):
        trends = yearly_trends(full_result.database)
        assert trends.power_start_mw == pytest.approx(constants.POWER_2014_MW, abs=0.15)
        assert trends.power_end_mw == pytest.approx(constants.POWER_2019_MW, abs=0.15)

    def test_utilization_rises_from_80_to_93(self, full_result):
        trends = yearly_trends(full_result.database)
        assert trends.utilization_start == pytest.approx(
            constants.UTILIZATION_2014, abs=0.04
        )
        assert trends.utilization_end == pytest.approx(
            constants.UTILIZATION_2019, abs=0.04
        )

    def test_trends_positive(self, full_result):
        trends = yearly_trends(full_result.database)
        assert trends.power_fit.slope_per_year > 0.02
        assert trends.utilization_fit.slope_per_year > 0.005


class TestFig3CoolantTrends:
    def test_flow_step_at_theta(self, full_result):
        trends = coolant_trends(full_result.database)
        assert trends.flow_pre_theta_gpm == pytest.approx(
            constants.FLOW_PRE_THETA_GPM, rel=0.02
        )
        assert trends.flow_post_theta_gpm == pytest.approx(
            constants.FLOW_POST_THETA_GPM, rel=0.02
        )

    def test_coolant_temperature_means(self, full_result):
        trends = coolant_trends(full_result.database)
        assert trends.inlet_mean_f == pytest.approx(constants.INLET_TEMP_F, abs=1.5)
        assert trends.outlet_mean_f == pytest.approx(constants.OUTLET_TEMP_F, abs=2.0)

    def test_overall_stds_in_band(self, full_result):
        trends = coolant_trends(full_result.database)
        # Paper: 41 GPM, 0.61 F, 0.71 F.
        assert 25.0 < trends.flow_std_gpm < 60.0
        assert 0.3 < trends.inlet_std_f < 1.3
        assert 0.3 < trends.outlet_std_f < 2.2

    def test_theta_testing_bump(self, full_result):
        trends = coolant_trends(full_result.database)
        assert trends.inlet_theta_window_f > trends.inlet_outside_theta_f + 0.5


class TestFig4Monthly:
    def test_power_and_utilization_second_half_heavy(self, full_result):
        power = monthly_profile(full_result.database)
        util = monthly_profile(full_result.database, Channel.UTILIZATION)
        assert power.second_half_ratio > 1.005
        assert util.second_half_ratio > 1.002

    def test_coolant_channels_nearly_flat(self, full_result):
        for channel in (
            Channel.FLOW,
            Channel.INLET_TEMPERATURE,
            Channel.OUTLET_TEMPERATURE,
        ):
            profile = monthly_profile(full_result.database, channel)
            assert profile.max_change_from_january < 0.04


class TestFig5Weekday:
    def test_monday_minimum(self, full_result):
        assert weekday_profile(full_result.database).minimum_weekday == 0

    def test_power_increase_near_6_percent(self, full_result):
        profile = weekday_profile(full_result.database)
        assert profile.non_monday_increase == pytest.approx(
            constants.NON_MONDAY_POWER_INCREASE, abs=0.035
        )

    def test_utilization_increase_near_1_5_percent(self, full_result):
        profile = weekday_profile(full_result.database, Channel.UTILIZATION)
        assert profile.non_monday_increase == pytest.approx(
            constants.NON_MONDAY_UTILIZATION_INCREASE, abs=0.02
        )

    def test_outlet_increase_near_2_percent(self, full_result):
        profile = weekday_profile(full_result.database, Channel.OUTLET_TEMPERATURE)
        assert 0.002 < profile.non_monday_increase < 0.05

    def test_flow_and_inlet_unchanged(self, full_result):
        for channel in (Channel.FLOW, Channel.INLET_TEMPERATURE):
            profile = weekday_profile(full_result.database, channel)
            assert abs(profile.non_monday_increase) < 0.01


class TestFig6RackPowerUtil:
    def test_power_spread_up_to_15_percent(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.power_spread == pytest.approx(
            constants.RACK_POWER_SPREAD, abs=0.12
        )

    def test_extreme_racks(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.highest_power_rack == RackId(*constants.HIGHEST_POWER_RACK)
        assert profile.highest_utilization_rack == RackId(
            *constants.HIGHEST_UTILIZATION_RACK
        )
        assert profile.lowest_utilization_rack == RackId(2, 0xD)

    def test_row_zero_wins(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.highest_utilization_row == 0
        assert profile.highest_power_row == 0

    def test_correlation_near_0_45(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.power_utilization_correlation == pytest.approx(
            constants.POWER_UTILIZATION_CORRELATION, abs=0.25
        )


class TestFig7RackCoolant:
    def test_spreads(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        assert profile.flow_spread == pytest.approx(
            constants.RACK_FLOW_SPREAD, abs=0.06
        )
        assert profile.inlet_spread < 0.02
        assert 0.01 < profile.outlet_spread < 0.06

    def test_ordering_inlet_outlet_flow(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        assert profile.inlet_spread < profile.outlet_spread < profile.flow_spread


class TestFig8AmbientTrends:
    def test_ranges(self, full_result):
        trends = ambient_trends(full_result.database)
        assert trends.temperature_min_f == pytest.approx(
            constants.DC_TEMP_MIN_F, abs=4.0
        )
        assert trends.temperature_max_f == pytest.approx(
            constants.DC_TEMP_MAX_F, abs=5.0
        )
        assert trends.humidity_min_rh == pytest.approx(
            constants.DC_HUMIDITY_MIN_RH, abs=6.0
        )
        assert trends.humidity_max_rh == pytest.approx(
            constants.DC_HUMIDITY_MAX_RH, abs=5.0
        )

    def test_stds(self, full_result):
        trends = ambient_trends(full_result.database)
        assert trends.temperature_std_f == pytest.approx(
            constants.DC_TEMP_STD_F, abs=1.3
        )
        assert trends.humidity_std_rh == pytest.approx(
            constants.DC_HUMIDITY_STD_RH, abs=1.5
        )

    def test_summer_humidity(self, full_result):
        trends = ambient_trends(full_result.database)
        assert trends.humidity_is_summer_seasonal


class TestFig9AmbientSpatial:
    def test_spreads(self, full_result):
        spatial = ambient_spatial(full_result.database)
        assert spatial.humidity_spread == pytest.approx(
            constants.RACK_DC_HUMIDITY_SPREAD, abs=0.12
        )
        assert spatial.temperature_spread == pytest.approx(
            constants.RACK_DC_TEMP_SPREAD, abs=0.06
        )

    def test_hotspot_1_8(self, full_result):
        spatial = ambient_spatial(full_result.database)
        assert RackId(1, 8) in spatial.hotspots()


class TestFig10CmfTimeline:
    def test_total_361(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert analysis.total == constants.TOTAL_CMFS

    def test_2016_fraction_40_percent(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert analysis.fraction_2016 == pytest.approx(
            constants.CMF_2016_FRACTION, abs=0.08
        )

    def test_long_quiet_gap(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert analysis.longest_quiet_gap_days > 365

    def test_not_bathtub(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert not analysis.is_bathtub()


class TestFig11CmfPerRack:
    def test_extremes(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert analysis.most_failing_rack == RackId(*constants.MOST_CMF_RACK)
        assert analysis.max_rack_count == constants.MOST_CMF_COUNT
        assert analysis.least_failing_rack == RackId(*constants.FEWEST_CMF_RACK)
        assert analysis.min_rack_count == constants.FEWEST_CMF_COUNT
        assert analysis.second_max_rack_count <= constants.OTHER_RACK_MAX_CMFS

    def test_correlations_weak(self, full_result):
        analysis = analyze_cmfs(full_result.ras_log, full_result.database)
        assert abs(analysis.utilization_correlation) < 0.40
        assert abs(analysis.outlet_correlation) < 0.40
        assert abs(analysis.humidity_correlation) < 0.40


class TestFig14Aftermath:
    def test_rate_decay(self, full_result):
        analysis = analyze_aftermath(full_result.ras_log)
        assert analysis.rate_6h < 0.9
        assert analysis.rate_48h < 0.3

    def test_type_mix(self, full_result):
        analysis = analyze_aftermath(full_result.ras_log)
        assert analysis.dominant_category == "ac_dc_power"
        assert analysis.category_mix["ac_dc_power"] == pytest.approx(0.5, abs=0.12)
        assert analysis.category_mix.get("process", 0.0) < 0.06


class TestFig15StormSpread:
    def test_examples_nonlocal(self, full_result):
        analysis = analyze_aftermath(full_result.ras_log)
        assert len(analysis.examples) == 3
        assert analysis.nonlocal_fraction() > 0.5
