"""Pearson and Spearman correlation."""

import numpy as np
import pytest

from repro.core.correlation import pearson, spearman


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(5000)
        y = rng.standard_normal(5000)
        assert abs(pearson(x, y)) < 0.05

    def test_bounded(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.standard_normal(30)
            y = rng.standard_normal(30)
            assert -1.0 <= pearson(x, y) <= 1.0

    def test_symmetric(self):
        rng = np.random.default_rng(2)
        x, y = rng.standard_normal(50), rng.standard_normal(50)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_constant_input_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.ones(10), np.arange(10.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([2.0]))


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.arange(1.0, 20.0)
        assert spearman(x, x**3) == pytest.approx(1.0)
        assert pearson(x, x**3) < 1.0

    def test_handles_ties(self):
        x = np.array([1.0, 2.0, 2.0, 3.0])
        y = np.array([10.0, 20.0, 20.0, 30.0])
        assert spearman(x, y) == pytest.approx(1.0)

    def test_antitone_is_minus_one(self):
        x = np.arange(10.0)
        assert spearman(x, np.exp(-x)) == pytest.approx(-1.0)

    def test_matches_pearson_on_ranks_free_data(self):
        rng = np.random.default_rng(3)
        x = rng.permutation(100).astype(float)
        y = rng.permutation(100).astype(float)
        # Both are rank data already, so the two coefficients agree.
        assert spearman(x, y) == pytest.approx(pearson(x, y))
