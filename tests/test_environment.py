"""Ambient temperature/humidity analyses (Figs 8-9)."""

import numpy as np
import pytest

from repro import constants
from repro.core.environment import ambient_spatial, ambient_trends
from repro.facility.topology import RackId


class TestAmbientTrends:
    def test_temperature_band(self, full_result):
        trends = ambient_trends(full_result.database)
        # Paper: 76..90 F; generous bands for the synthetic facility.
        assert 70.0 < trends.temperature_min_f < 80.0
        assert 84.0 < trends.temperature_max_f < 100.0

    def test_humidity_band(self, full_result):
        trends = ambient_trends(full_result.database)
        # Paper: 28..37 %RH.
        assert 18.0 < trends.humidity_min_rh < 30.0
        assert 33.0 < trends.humidity_max_rh < 45.0

    def test_stds_near_paper(self, full_result):
        trends = ambient_trends(full_result.database)
        # Paper: sigma 2.48 F and 3.66 %RH.
        assert 1.2 < trends.temperature_std_f < 4.0
        assert 2.0 < trends.humidity_std_rh < 5.5

    def test_humidity_summer_seasonal(self, full_result):
        trends = ambient_trends(full_result.database)
        assert trends.humidity_is_summer_seasonal
        assert trends.summer_humidity - trends.winter_humidity > 2.0


class TestAmbientSpatial:
    def test_humidity_spread_near_36_percent(self, full_result):
        spatial = ambient_spatial(full_result.database)
        # Paper: up to 36 %.
        assert 0.20 < spatial.humidity_spread < 0.50

    def test_temperature_spread_near_11_percent(self, full_result):
        spatial = ambient_spatial(full_result.database)
        # Paper: up to 11 %.
        assert 0.05 < spatial.temperature_spread < 0.18

    def test_row_ends_warm_and_dry(self, full_result):
        spatial = ambient_spatial(full_result.database)
        temp_delta, humidity_delta = spatial.row_end_effect()
        assert temp_delta > 0.5  # ends warmer
        assert humidity_delta < -0.5  # ends drier

    def test_hotspot_detection_finds_1_8(self, full_result):
        spatial = ambient_spatial(full_result.database)
        assert RackId(*constants.HUMIDITY_HOTSPOT_RACK) in spatial.hotspots()

    def test_hotspots_are_center_racks(self, full_result):
        spatial = ambient_spatial(full_result.database)
        for rack in spatial.hotspots():
            assert 4 <= rack.col <= 11
