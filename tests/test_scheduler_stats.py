"""Scheduler job accounting."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil
from repro.scheduler.queues import QueueName
from repro.scheduler.scheduler import MaintenancePolicy, MiraScheduler, ReservationPolicy
from repro.scheduler.stats import SchedulingStats
from repro.scheduler.workload import WorkloadGenerator


def _run_scheduler(hours=24 * 14, maintenance_probability=0.75, seed=3):
    generator = WorkloadGenerator(rng=np.random.default_rng(seed))
    scheduler = MiraScheduler(
        generator,
        rng=np.random.default_rng(seed + 1),
        maintenance=MaintenancePolicy(probability=maintenance_probability),
        reservations=ReservationPolicy(rate_per_day=0.0),
    )
    epoch = timeutil.to_epoch(dt.datetime(2015, 3, 3))
    for i in range(hours):
        scheduler.step(epoch + i * 3600.0, 3600.0)
    return scheduler


class TestAccounting:
    def test_counts_match_scheduler(self):
        scheduler = _run_scheduler()
        stats = scheduler.stats
        # Scheduler-level counters track user jobs; stats additionally
        # account for burner jobs under their own queue.
        user_completed = sum(
            stats.queue(q).completed for q in QueueName if q is not QueueName.BURNER
        )
        killed = sum(stats.queue(q).killed for q in QueueName)
        assert user_completed == scheduler.completed_count
        assert killed == scheduler.killed_count

    def test_waits_are_nonnegative_and_finite(self):
        scheduler = _run_scheduler()
        for queue in (QueueName.PROD_LONG, QueueName.PROD_SHORT):
            stats = scheduler.stats.queue(queue)
            assert stats.started > 0
            assert stats.mean_wait_s >= 0.0
            assert stats.mean_wait_s < 7 * 86_400

    def test_delivered_core_hours_positive(self):
        scheduler = _run_scheduler()
        assert scheduler.stats.total_delivered_core_h > 1e6

    def test_loss_fraction_small_without_failures(self):
        scheduler = _run_scheduler(maintenance_probability=0.0)
        assert scheduler.stats.loss_fraction < 0.02

    def test_maintenance_increases_losses(self):
        calm = _run_scheduler(maintenance_probability=0.0)
        churny = _run_scheduler(maintenance_probability=1.0)
        assert churny.stats.total_lost_core_h > calm.stats.total_lost_core_h

    def test_queue_depth_sampled_every_step(self):
        scheduler = _run_scheduler(hours=100)
        assert len(scheduler.stats._queue_depth_samples) == 100
        assert scheduler.stats.mean_queue_depth() >= 0.0
        assert scheduler.stats.p95_queue_depth() >= scheduler.stats.mean_queue_depth() * 0.5

    def test_summary_renders(self):
        scheduler = _run_scheduler(hours=24 * 7)
        summary = scheduler.stats.summary()
        assert "prod-long" in summary or "prod-short" in summary
        assert "queue depth" in summary


class TestFreshStats:
    def test_empty_stats_safe(self):
        stats = SchedulingStats()
        assert stats.total_delivered_core_h == 0.0
        assert stats.loss_fraction == 0.0
        assert stats.mean_queue_depth() == 0.0
        assert "queue depth" in stats.summary()
