"""Internal consistency validation."""

import pytest

from repro.core.validation import (
    check_condensation_margins,
    check_flow_conservation,
    check_heat_balance,
    check_outages_follow_log,
    check_utilization_bounds,
    validate_result,
)


class TestIndividualChecks:
    def test_heat_balance_holds(self, year_result):
        check = check_heat_balance(year_result)
        assert check.passed, check.detail

    def test_flow_conservation_holds(self, year_result):
        check = check_flow_conservation(year_result)
        assert check.passed, check.detail

    def test_condensation_margins_hold(self, year_result):
        check = check_condensation_margins(year_result)
        assert check.passed, check.detail

    def test_outages_follow_log(self, year_result):
        check = check_outages_follow_log(year_result)
        assert check.passed, check.detail

    def test_utilization_bounds(self, year_result):
        check = check_utilization_bounds(year_result)
        assert check.passed, check.detail


class TestScorecard:
    def test_full_validation_passes(self, year_result):
        scorecard = validate_result(year_result)
        assert scorecard.passed, scorecard.summary()
        assert len(scorecard.checks) == 5

    def test_summary_mentions_every_check(self, year_result):
        scorecard = validate_result(year_result)
        summary = scorecard.summary()
        for check in scorecard.checks:
            assert check.name in summary
        assert "ALL CHECKS PASSED" in summary

    def test_demo_dataset_also_valid(self, demo_result):
        scorecard = validate_result(demo_result)
        assert scorecard.passed, scorecard.summary()
