"""The facility engine: end-to-end telemetry generation."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil
from repro.core.failure_analysis import deduplicate_cmf_events
from repro.simulation import FacilityEngine, MiraScenario, SimulationConfig
from repro.telemetry.records import Channel


class TestEngineBasics:
    def test_sample_count_matches_grid(self, demo_result):
        config = demo_result.config
        expected = int(
            (timeutil.to_epoch(config.end) - timeutil.to_epoch(config.start))
            / config.dt_s
        )
        assert demo_result.database.num_samples == expected

    def test_all_channels_populated(self, demo_result):
        for channel in Channel:
            series = demo_result.database.channel(channel)
            assert np.isfinite(series.values).any()

    def test_physical_ranges(self, demo_result):
        db = demo_result.database
        power = db.channel(Channel.POWER).values
        assert np.nanmin(power) >= 0.0
        assert np.nanmax(power) < 120.0  # kW per rack
        util = db.channel(Channel.UTILIZATION).values
        assert np.nanmin(util) >= 0.0
        assert np.nanmax(util) <= 1.0
        flow = db.channel(Channel.FLOW).values
        assert np.nanmin(flow) >= 0.0
        rh = db.channel(Channel.DC_HUMIDITY).values
        assert np.nanmin(rh) >= 5.0
        assert np.nanmax(rh) <= 99.0

    def test_outlet_above_inlet_on_powered_racks(self, demo_result):
        db = demo_result.database
        inlet = db.channel(Channel.INLET_TEMPERATURE).values
        outlet = db.channel(Channel.OUTLET_TEMPERATURE).values
        power = db.channel(Channel.POWER).values
        loaded = power > 30.0
        assert np.mean(outlet[loaded] > inlet[loaded]) > 0.99

    def test_deterministic_given_config(self):
        config = MiraScenario.demo(days=10, seed=77)
        r1 = FacilityEngine(config).run()
        r2 = FacilityEngine(config).run()
        assert np.allclose(
            r1.database.channel(Channel.POWER).values,
            r2.database.channel(Channel.POWER).values,
        )
        assert len(r1.ras_log) == len(r2.ras_log)

    def test_different_seed_differs(self):
        r1 = FacilityEngine(MiraScenario.demo(days=10, seed=1)).run()
        r2 = FacilityEngine(MiraScenario.demo(days=10, seed=2)).run()
        assert not np.allclose(
            r1.database.channel(Channel.POWER).values,
            r2.database.channel(Channel.POWER).values,
        )


class TestFailureIntegration:
    def test_ras_log_dedup_recovers_schedule(self, year_result):
        recovered = deduplicate_cmf_events(year_result.ras_log)
        assert recovered.count == len(year_result.schedule.events)

    def test_failed_racks_power_down(self, year_result):
        db = year_result.database
        power = db.channel(Channel.POWER)
        event = year_result.schedule.events[0]
        flat = event.rack_id.flat_index
        # Find samples shortly after the event while the rack is down.
        mask = (power.epoch_s > event.epoch_s) & (
            power.epoch_s < event.epoch_s + 0.5 * event.recovery_s
        )
        assert mask.any()
        assert np.nanmax(power.values[mask, flat]) < 5.0

    def test_racks_recover_after_outage(self, year_result):
        db = year_result.database
        power = db.channel(Channel.POWER)
        event = year_result.schedule.events[0]
        flat = event.rack_id.flat_index
        after = (power.epoch_s > event.epoch_s + event.recovery_s + 86_400) & (
            power.epoch_s < event.epoch_s + event.recovery_s + 3 * 86_400
        )
        assert np.nanmean(power.values[after, flat]) > 20.0

    def test_no_failures_mode(self):
        config = SimulationConfig(
            start=dt.datetime(2015, 3, 1),
            end=dt.datetime(2015, 4, 1),
            dt_s=3600.0,
            inject_failures=False,
        )
        result = FacilityEngine(config).run()
        assert result.schedule is None
        assert len(result.ras_log) == 0
        assert result.noncmf_failures == ()

    def test_jobs_killed_by_failures(self, year_result):
        assert year_result.jobs_killed > 0
        assert year_result.jobs_completed > 1000


class TestThetaEvent:
    def test_flow_step_in_2016(self, full_result):
        flow = full_result.database.total_flow_gpm()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        before = np.nanmean(flow.values[flow.epoch_s < theta - 30 * 86_400])
        after = np.nanmean(flow.values[flow.epoch_s > theta + 30 * 86_400])
        assert before == pytest.approx(constants.FLOW_PRE_THETA_GPM, rel=0.02)
        assert after == pytest.approx(constants.FLOW_POST_THETA_GPM, rel=0.02)

    def test_inlet_bump_during_theta_testing(self, full_result):
        inlet = full_result.database.channel(Channel.INLET_TEMPERATURE).across_racks()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        settled = timeutil.to_epoch(constants.THETA_SETTLED_DATE)
        during = np.nanmean(
            inlet.values[(inlet.epoch_s > theta + 30 * 86_400) & (inlet.epoch_s < settled)]
        )
        outside = np.nanmean(inlet.values[inlet.epoch_s < theta - 30 * 86_400])
        assert during > outside + 0.8


class TestConfigValidation:
    def test_empty_period_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(
                start=dt.datetime(2015, 1, 1), end=dt.datetime(2015, 1, 1)
            )

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(dt_s=0.0)
