"""Allocation programs and projects."""

import datetime as dt

import pytest

from repro import timeutil
from repro.scheduler.projects import AllocationProgram, Project


class TestAllocationYears:
    def test_incite_starts_january(self):
        assert AllocationProgram.INCITE.allocation_year_start_month == 1

    def test_alcc_starts_july(self):
        assert AllocationProgram.ALCC.allocation_year_start_month == 7

    def test_incite_progress_resets_in_january(self):
        early = AllocationProgram.INCITE.year_progress(
            timeutil.to_epoch(dt.datetime(2015, 1, 15))
        )
        late = AllocationProgram.INCITE.year_progress(
            timeutil.to_epoch(dt.datetime(2015, 12, 15))
        )
        assert early < 0.1
        assert late > 0.9

    def test_alcc_progress_resets_in_july(self):
        early = AllocationProgram.ALCC.year_progress(
            timeutil.to_epoch(dt.datetime(2015, 7, 15))
        )
        late = AllocationProgram.ALCC.year_progress(
            timeutil.to_epoch(dt.datetime(2015, 6, 15))
        )
        assert early < 0.1
        assert late > 0.9

    def test_progress_bounded(self):
        for month in range(1, 13):
            epoch = timeutil.to_epoch(dt.datetime(2016, month, 28))
            for program in AllocationProgram:
                progress = program.year_progress(epoch)
                assert 0.0 <= progress <= 1.0


class TestDemand:
    def test_incite_demand_peaks_at_deadline(self):
        january = AllocationProgram.INCITE.demand_multiplier(
            timeutil.to_epoch(dt.datetime(2015, 1, 15))
        )
        december = AllocationProgram.INCITE.demand_multiplier(
            timeutil.to_epoch(dt.datetime(2015, 12, 15))
        )
        assert december > january

    def test_discretionary_demand_flat(self):
        values = [
            AllocationProgram.DISCRETIONARY.demand_multiplier(
                timeutil.to_epoch(dt.datetime(2015, m, 15))
            )
            for m in range(1, 13)
        ]
        assert all(v == 1.0 for v in values)

    def test_rush_strength_scales_peak(self):
        epoch = timeutil.to_epoch(dt.datetime(2015, 12, 20))
        weak = AllocationProgram.INCITE.demand_multiplier(epoch, rush_strength=0.1)
        strong = AllocationProgram.INCITE.demand_multiplier(epoch, rush_strength=1.0)
        assert strong > weak


class TestProject:
    def test_valid_project(self):
        project = Project("incite-01", AllocationProgram.INCITE, 1e8)
        assert project.typical_job_midplanes >= 1

    def test_bad_allocation_rejected(self):
        with pytest.raises(ValueError):
            Project("p", AllocationProgram.ALCC, 0.0)

    def test_bad_job_size_rejected(self):
        with pytest.raises(ValueError):
            Project("p", AllocationProgram.ALCC, 1e6, typical_job_midplanes=0)
