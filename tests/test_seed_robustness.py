"""Seed robustness: the paper's *shape* holds for other realizations.

The calibration tests pin the canonical seed; these verify the same
qualitative structure emerges from a different seed — i.e. the
reproduction is a property of the mechanisms, not of one lucky random
draw.  Rack-exact statements (which rack is hottest) are only enforced
where the model places them deterministically.
"""

import numpy as np
import pytest

from repro import constants, timeutil
from repro.core.environment import ambient_spatial, ambient_trends
from repro.core.failure_analysis import analyze_cmfs
from repro.core.spatial import rack_coolant_profile, rack_power_profile
from repro.core.trends import weekday_profile, yearly_trends
from repro.facility.topology import RackId
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.records import Channel


@pytest.fixture(scope="module")
def alternate_result():
    """A two-year realization under a different master seed."""
    return FacilityEngine(MiraScenario.demo(days=730, seed=8_675_309)).run()


class TestShapeUnderNewSeed:
    def test_power_and_utilization_plausible(self, alternate_result):
        trends = yearly_trends(alternate_result.database)
        assert 2.2 < trends.power_start_mw < 3.2
        assert 0.7 < trends.utilization_start < 1.0
        assert trends.power_fit.slope_per_year > 0.0

    def test_monday_dip_structural(self, alternate_result):
        profile = weekday_profile(alternate_result.database)
        assert profile.minimum_weekday == 0
        assert 0.01 < profile.non_monday_increase < 0.12

    def test_rack_extremes_are_policy_driven(self, alternate_result):
        profile = rack_power_profile(alternate_result.database)
        # The power and utilization extremes are placed by policy, not
        # noise, so they survive a seed change.
        assert profile.highest_power_rack == RackId(*constants.HIGHEST_POWER_RACK)
        assert profile.highest_utilization_rack == RackId(
            *constants.HIGHEST_UTILIZATION_RACK
        )
        assert profile.highest_utilization_row == 0

    def test_coolant_spread_ordering(self, alternate_result):
        profile = rack_coolant_profile(alternate_result.database)
        assert profile.inlet_spread < profile.outlet_spread < profile.flow_spread

    def test_ambient_structure(self, alternate_result):
        spatial = ambient_spatial(alternate_result.database)
        assert 0.2 < spatial.humidity_spread < 0.5
        assert RackId(*constants.HUMIDITY_HOTSPOT_RACK) in spatial.hotspots()
        trends = ambient_trends(alternate_result.database)
        assert trends.humidity_is_summer_seasonal

    def test_failure_correlations_stay_weak(self, alternate_result):
        analysis = analyze_cmfs(
            alternate_result.ras_log, alternate_result.database
        )
        # Rack budgets are drawn independently of load under any seed.
        assert abs(analysis.utilization_correlation) < 0.5
        assert abs(analysis.outlet_correlation) < 0.5
        assert abs(analysis.humidity_correlation) < 0.5

    def test_full_period_schedule_extremes_any_seed(self):
        """The Fig 11 extremes are profile facts of full-period
        schedules, whatever the seed (partial windows thin them)."""
        from repro.failures.cmf import CmfSchedule

        schedule = CmfSchedule.generate(np.random.default_rng(8_675_309))
        counts = schedule.rack_counts()
        assert counts.sum() == constants.TOTAL_CMFS
        assert counts[RackId(*constants.MOST_CMF_RACK).flat_index] == (
            constants.MOST_CMF_COUNT
        )
        assert counts[RackId(*constants.FEWEST_CMF_RACK).flat_index] == (
            constants.FEWEST_CMF_COUNT
        )

    def test_correlation_band(self, alternate_result):
        profile = rack_power_profile(alternate_result.database)
        assert 0.15 < profile.power_utilization_correlation < 0.8
