"""The RAS event log."""

import pytest

from repro.facility.topology import RackId
from repro.telemetry.ras import CMF_CATEGORY, RasEvent, RasLog, Severity


def _event(epoch=0.0, rack=(0, 0), severity=Severity.FATAL, category=CMF_CATEGORY):
    return RasEvent(
        epoch_s=epoch, rack_id=RackId(*rack), severity=severity, category=category
    )


class TestRasEvent:
    def test_cmf_flag(self):
        assert _event().is_cmf
        assert not _event(category="bqc").is_cmf

    def test_fatal_flag(self):
        assert _event().is_fatal
        assert not _event(severity=Severity.WARN).is_fatal

    def test_ordering_by_time(self):
        early = _event(epoch=1.0)
        late = _event(epoch=2.0)
        assert early < late


class TestRasLog:
    def test_record_keeps_time_order(self):
        log = RasLog()
        log.record(_event(epoch=5.0))
        log.record(_event(epoch=1.0))
        log.record(_event(epoch=3.0))
        times = [e.epoch_s for e in log]
        assert times == sorted(times)

    def test_extend_sorts_once(self):
        log = RasLog()
        log.extend([_event(epoch=t) for t in (9.0, 2.0, 7.0)])
        assert [e.epoch_s for e in log] == [2.0, 7.0, 9.0]

    def test_between_is_half_open(self):
        log = RasLog([_event(epoch=t) for t in (0.0, 1.0, 2.0, 3.0)])
        window = log.between(1.0, 3.0)
        assert [e.epoch_s for e in window] == [1.0, 2.0]

    def test_filter_by_category(self):
        log = RasLog(
            [
                _event(category=CMF_CATEGORY),
                _event(category="ac_dc_power"),
                _event(category="bql"),
            ]
        )
        assert len(log.filter(category="ac_dc_power")) == 1

    def test_filter_by_rack(self):
        log = RasLog([_event(rack=(0, 1)), _event(rack=(2, 7))])
        assert len(log.filter(rack_id=RackId(2, 7))) == 1

    def test_fatal_cmf_events_excludes_warns(self):
        log = RasLog(
            [
                _event(severity=Severity.FATAL),
                _event(severity=Severity.WARN),
                _event(category="bqc", severity=Severity.FATAL),
            ]
        )
        assert len(log.fatal_cmf_events()) == 1

    def test_fatal_noncmf_events(self):
        log = RasLog(
            [
                _event(severity=Severity.FATAL),
                _event(category="card", severity=Severity.FATAL),
                _event(category="card", severity=Severity.WARN),
            ]
        )
        noncmf = log.fatal_noncmf_events()
        assert len(noncmf) == 1
        assert noncmf[0].category == "card"

    def test_categories_sorted_unique(self):
        log = RasLog(
            [_event(category=c) for c in ("bqc", "ac_dc_power", "bqc")]
        )
        assert log.categories() == ("ac_dc_power", "bqc")

    def test_len_and_iter(self):
        log = RasLog([_event(epoch=float(i)) for i in range(5)])
        assert len(log) == 5
        assert len(list(log)) == 5
