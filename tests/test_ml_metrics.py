"""Classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    false_positive_rate,
    precision,
    recall,
)


Y_TRUE = np.array([1, 1, 1, 1, 0, 0, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 1, 0, 1, 0, 0, 0, 0, 0])
# tp=3 fn=1 fp=1 tn=5


class TestConfusionMatrix:
    def test_counts(self):
        assert confusion_matrix(Y_TRUE, Y_PRED) == (3, 1, 5, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([1, 0]), np.array([1]))

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([2, 0]), np.array([1, 0]))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(Y_TRUE, Y_PRED) == pytest.approx(0.8)

    def test_precision(self):
        assert precision(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_recall(self):
        assert recall(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_f1_is_harmonic_mean(self):
        p = precision(Y_TRUE, Y_PRED)
        r = recall(Y_TRUE, Y_PRED)
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 * p * r / (p + r))

    def test_false_positive_rate(self):
        assert false_positive_rate(Y_TRUE, Y_PRED) == pytest.approx(1 / 6)

    def test_perfect_prediction(self):
        y = np.array([0, 1, 0, 1])
        assert accuracy(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert false_positive_rate(y, y) == 0.0

    def test_degenerate_no_positives_predicted(self):
        y_true = np.array([1, 1, 0])
        y_pred = np.array([0, 0, 0])
        assert precision(y_true, y_pred) == 0.0
        assert recall(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0


class TestReport:
    def test_evaluate_binary(self):
        report = evaluate_binary(Y_TRUE, Y_PRED)
        assert report.accuracy == pytest.approx(0.8)
        assert report.support == 10
        assert "acc=0.800" in report.as_row()
