"""Memoized / incremental report builds are pinned to from-scratch.

Each test builds a reference with ``section_cache=False`` (the exact
pre-memoization path) and asserts that cached builds — cold, warm,
append-advanced, multi-worker, faulted — reproduce it: discrete values
exactly, floats to 1e-12.  The system-series sections (Figs 2, 3, 4,
5, 8) are additionally pinned *bit-identical* even across an append,
because their reducer folds row-local derived series.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.analytics.incremental import SectionMemoStore
from repro.core.experiments import full_report
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS

#: Sections whose incremental rebuild is bit-exact (not just 1e-12).
BIT_EXACT_PREFIXES = ("Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 8")


def _rows_equal(a, b, exact: bool) -> bool:
    if type(a) is not type(b):
        return False
    for x, y in zip(dataclasses.astuple(a), dataclasses.astuple(b)):
        if isinstance(x, float) and isinstance(y, float):
            if math.isnan(x) and math.isnan(y):
                continue
            if exact:
                if x != y:
                    return False
            elif not math.isclose(x, y, rel_tol=1e-12, abs_tol=1e-12):
                return False
        elif x != y:
            return False
    return True


def assert_sections_equal(reference, candidate, exact: bool = True):
    assert list(reference) == list(candidate)
    for title in reference:
        ref_rows, got_rows = reference[title], candidate[title]
        assert len(ref_rows) == len(got_rows), title
        pinned_exact = exact or title.startswith(BIT_EXACT_PREFIXES)
        for r, g in zip(ref_rows, got_rows):
            assert _rows_equal(r, g, exact=pinned_exact), (title, r, g)


def _clone_database(database, stop=None):
    """A writable value-and-quality copy of ``database[:stop]``."""
    stop = database.num_samples if stop is None else stop
    clone = EnvironmentalDatabase(
        num_racks=database.num_racks, capacity_hint=max(stop, 16)
    )
    clone.append_block(
        np.asarray(database.epoch_s[:stop]).copy(),
        {ch: np.asarray(database.channel(ch).values[:stop]).copy() for ch in CHANNELS},
    )
    clone.flush()
    for ch in CHANNELS:
        clone.overwrite_quality(
            ch, 0, np.asarray(database.quality(ch)[:stop]).copy()
        )
    return clone


@pytest.fixture(scope="module")
def month_result():
    """A small run used by the append/window tests (module-local)."""
    return FacilityEngine(MiraScenario.demo(days=30, seed=3)).run()


class TestMemoizedEquivalence:
    def test_cold_and_warm_match_uncached(self, tmp_path, demo_result):
        reference = full_report(demo_result, workers=1, section_cache=False)
        store = SectionMemoStore(root=tmp_path, enabled=True)
        cold = full_report(demo_result, workers=1, section_cache=store)
        warm = full_report(demo_result, workers=1, section_cache=store)
        assert_sections_equal(reference, cold)
        assert_sections_equal(reference, warm)
        assert store.counters.stores == len(reference)
        assert store.counters.hits == len(reference)

    def test_faulted_dataset(self, tmp_path, faulted_result):
        """Quality masks flow through the digest and the reducers."""
        reference = full_report(faulted_result, workers=1, section_cache=False)
        store = SectionMemoStore(root=tmp_path, enabled=True)
        cold = full_report(faulted_result, workers=1, section_cache=store)
        warm = full_report(faulted_result, workers=1, section_cache=store)
        assert_sections_equal(reference, cold)
        assert_sections_equal(reference, warm)

    def test_any_worker_count(self, tmp_path, month_result):
        reference = full_report(month_result, workers=1, section_cache=False)
        store = SectionMemoStore(root=tmp_path, enabled=True)
        cold = full_report(month_result, workers=2, section_cache=store)
        warm = full_report(month_result, workers=2, section_cache=store)
        assert_sections_equal(reference, cold)
        assert_sections_equal(reference, warm)

    def test_worker_count_is_not_part_of_the_key(self, tmp_path, month_result):
        """A runtime knob must hit, not invalidate."""
        store = SectionMemoStore(root=tmp_path, enabled=True)
        full_report(month_result, workers=1, section_cache=store)
        full_report(month_result, workers=2, section_cache=store)
        assert store.counters.hits == store.counters.stores

    def test_synthesized_windows_memoized(self, tmp_path, month_result):
        reference = full_report(
            month_result, workers=1, section_cache=False, synthesize_windows=True
        )
        store = SectionMemoStore(root=tmp_path, enabled=True)
        cold = full_report(
            month_result, workers=1, section_cache=store, synthesize_windows=True
        )
        warm = full_report(
            month_result, workers=1, section_cache=store, synthesize_windows=True
        )
        assert_sections_equal(reference, cold)
        assert_sections_equal(reference, warm)
        # Windows appear in the reference, so synthesis must have run
        # and the warm pass must have served both window sections.
        assert any("Fig 12" in title for title in reference)
        assert store.counters.hits == store.counters.stores

    def test_explicit_windows_never_memoized(self, tmp_path, month_result):
        from repro.simulation import WindowSynthesizer

        synthesizer = WindowSynthesizer(month_result)
        positives = synthesizer.positive_windows()
        negatives = synthesizer.negative_windows(len(positives))
        store = SectionMemoStore(root=tmp_path, enabled=True)
        reference = full_report(
            month_result,
            positive_windows=positives,
            negative_windows=negatives,
            workers=1,
            section_cache=False,
        )
        cached = full_report(
            month_result,
            positive_windows=positives,
            negative_windows=negatives,
            workers=1,
            section_cache=store,
        )
        assert_sections_equal(reference, cached)
        sections = {e.section for e in store.entries() if e.kind == "rows"}
        assert "fig12_rows" not in sections
        assert "fig13_rows" not in sections

    def test_disabled_cache_writes_nothing(self, tmp_path, month_result, monkeypatch):
        from repro.simulation.datasets import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        full_report(month_result, workers=1, section_cache=False)
        # The conftest env gate also keeps the default store disabled.
        full_report(month_result, workers=1)
        assert not (tmp_path / "sections").exists()


class TestAppendOnlyRecompute:
    def test_append_folds_only_the_tail(self, tmp_path, month_result):
        database = month_result.database
        n = database.num_samples
        cut = int(n * 0.9)
        prefix = _clone_database(database, stop=cut)
        grown = dataclasses.replace(month_result, database=prefix)
        store = SectionMemoStore(root=tmp_path, enabled=True)
        full_report(grown, workers=1, section_cache=store)
        assert store.counters.state_misses == 2

        epoch = np.asarray(database.epoch_s)
        prefix.append_block(
            epoch[cut:].copy(),
            {
                ch: np.asarray(database.channel(ch).values[cut:]).copy()
                for ch in CHANNELS
            },
        )
        prefix.flush()
        for ch in CHANNELS:
            tail_quality = np.asarray(database.quality(ch)[cut:]).copy()
            prefix.overwrite_quality(ch, cut, tail_quality)
        assert prefix.dataset_digest() == database.dataset_digest()

        reference = full_report(month_result, workers=1, section_cache=False)
        appended = full_report(grown, workers=1, section_cache=store)
        assert_sections_equal(reference, appended, exact=False)
        # Both shared states advanced by folding, neither rebuilt.
        assert store.counters.state_appends == 2
        assert store.counters.state_misses == 2
        # The RAS-only aftermath section survived the append untouched.
        assert store.counters.hits >= 1

    def test_history_rewrite_invalidates_states(self, tmp_path, month_result):
        from repro.telemetry.records import Channel, Quality

        database = _clone_database(month_result.database)
        cloned = dataclasses.replace(month_result, database=database)
        store = SectionMemoStore(root=tmp_path, enabled=True)
        full_report(cloned, workers=1, section_cache=store)

        # Rewrite history: escalate one early cell's quality flag.
        mask = np.zeros((database.num_samples, database.num_racks), dtype=bool)
        mask[5, 0] = True
        assert database.update_quality(Channel.POWER, mask, Quality.SUSPECT) == 1

        reference = full_report(cloned, workers=1, section_cache=False)
        rebuilt = full_report(cloned, workers=1, section_cache=store)
        assert_sections_equal(reference, rebuilt)
        assert store.counters.invalidations >= 2  # both shared states

    def test_clone_digest_matches_original(self, month_result):
        """The clone helper reproduces the content address exactly."""
        clone = _clone_database(month_result.database)
        assert clone.dataset_digest() == month_result.database.dataset_digest()


class TestLivePathDigest:
    def test_http_ingest_advances_metrics_digest(self, month_result):
        from repro.service.http.app import OperationsApp
        from repro.service.http.ingest import IngestServerConfig

        database = _clone_database(month_result.database)
        app = OperationsApp.from_database(
            database, ingest=IngestServerConfig(tokens={"c1": "tok"})
        )
        status, payload, _ = app.handle("GET", "/metrics", {})
        assert status == 200
        before = payload["dataset"]
        assert before["rows"] == database.num_samples
        assert "section_cache" in payload

        epoch = np.asarray(database.epoch_s)
        dt = float(epoch[1] - epoch[0])
        ts = [float(epoch[-1] + dt * (k + 1)) for k in range(3)]
        racks = database.num_racks
        body = {
            "api_version": 1,
            "collector": "c1",
            "batch_id": "b-1",
            "epoch_s": ts,
            "channels": {
                ch.column: [[70.0] * racks for _ in ts] for ch in CHANNELS
            },
        }
        status, _, _ = app.handle(
            "POST", "/v1/ingest", {}, body, {"Authorization": "Bearer tok"}
        )
        assert status == 200
        database.flush()
        status, payload, _ = app.handle("GET", "/metrics", {})
        after = payload["dataset"]
        assert after["rows"] == before["rows"] + 3
        assert after["root"] != before["root"]
