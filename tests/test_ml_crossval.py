"""Stratified k-fold cross-validation."""

import numpy as np
import pytest

from repro.ml.baselines import LogisticRegression
from repro.ml.crossval import cross_validate, stratified_k_fold


class TestFolds:
    def test_partition_is_complete_and_disjoint(self):
        y = np.tile([0, 1], 50)
        folds = stratified_k_fold(y, 5, np.random.default_rng(0))
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(100))

    def test_train_test_disjoint_per_fold(self):
        y = np.tile([0, 1], 50)
        for train, test in stratified_k_fold(y, 5, np.random.default_rng(0)):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 100

    def test_stratification(self):
        y = np.array([0] * 80 + [1] * 20)
        for _, test in stratified_k_fold(y, 5, np.random.default_rng(0)):
            positives = y[test].sum()
            assert positives == 4  # 20 positives dealt into 5 folds

    def test_k_too_small_rejected(self):
        with pytest.raises(ValueError):
            stratified_k_fold(np.tile([0, 1], 10), 1, np.random.default_rng(0))

    def test_class_smaller_than_k_rejected(self):
        y = np.array([0] * 20 + [1] * 3)
        with pytest.raises(ValueError):
            stratified_k_fold(y, 5, np.random.default_rng(0))


class TestCrossValidate:
    def test_separable_problem_scores_high(self):
        rng = np.random.default_rng(1)
        x0 = rng.standard_normal((60, 2)) - 3.0
        x1 = rng.standard_normal((60, 2)) + 3.0
        x = np.vstack([x0, x1])
        y = np.array([0] * 60 + [1] * 60)

        def fit_predict(x_train, y_train, x_test):
            return LogisticRegression().fit(x_train, y_train).predict(x_test)

        result = cross_validate(fit_predict, x, y, k=5, rng=np.random.default_rng(2))
        assert len(result.fold_reports) == 5
        assert result.mean_accuracy > 0.95
        assert result.summary().support == 120

    def test_random_labels_score_chance(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((200, 3))
        y = rng.integers(0, 2, 200)

        def fit_predict(x_train, y_train, x_test):
            return LogisticRegression(epochs=50).fit(x_train, y_train).predict(x_test)

        result = cross_validate(fit_predict, x, y, k=5, rng=np.random.default_rng(4))
        assert 0.3 < result.mean_accuracy < 0.7
