"""Crash safety: WAL + snapshots, supervised subscribers, recovery.

The acceptance bar for the self-healing service layer:

* the **durability primitives** survive torn writes and corrupt files
  without losing valid history (write-ahead log, snapshot store,
  idempotent replay across the snapshot boundary);
* a **supervised** subscriber that crashes or hangs degrades — counted,
  logged, restarted with bounded backoff, its missed range repaired
  from the source — while its peers and the publisher keep running;
* a service **killed mid-stream** and rebuilt by
  :meth:`LiveOperationsService.recover` finishes with rollup buckets,
  predictor emissions, alerts, and CUSUM alarms **bit-identical** to an
  uninterrupted run (rollup totals to 1e-9 from re-association), for
  chunked and per-sample delivery alike.
"""

import dataclasses

import numpy as np
import pytest

from repro.chaos import ChaosConfig, ChaosInjector, ChaosProcessKill
from repro.faults import FaultConfig
from repro.service import (
    BusChunk,
    DurabilityConfig,
    LiveOperationsService,
    Query,
    QueryEngine,
    RecoveryError,
    RollupStore,
    ServiceConfig,
    SnapshotStore,
    SourceReplayer,
    Supervisor,
    SupervisorConfig,
    WriteAheadLog,
)
from repro.service.durability import replay_component
from repro.simulation import FacilityEngine, MiraScenario
from repro.telemetry.quality import scrub_database
from repro.telemetry.records import CHANNELS, Channel

_RACKS = 4


class _StubModel:
    """Deterministic classifier (pure function of the feature row)."""

    def predict_proba(self, features):
        features = np.asarray(features, dtype="float64")
        weights = np.sin(np.arange(features.shape[1]) + 1.0)
        return 1.0 / (1.0 + np.exp(-features @ weights))


@pytest.fixture(scope="module")
def stream_result():
    """A small faulted realization: quality masks and NaN cells set."""
    config = dataclasses.replace(
        MiraScenario.demo(days=6, seed=7), faults=FaultConfig()
    )
    result = FacilityEngine(config).run()
    scrub_database(result.database)
    return result


def _chunk(start_seq, n, dt_s=300.0):
    """A synthetic chunk whose POWER column equals the sample index."""
    epoch = start_seq * dt_s + dt_s * np.arange(n)
    rows = np.arange(start_seq, start_seq + n, dtype="float64")
    return BusChunk(
        seq=start_seq,
        start_seq=start_seq,
        epoch_s=epoch,
        values={Channel.POWER: np.tile(rows[:, None], (1, _RACKS))},
        quality={Channel.POWER: np.ones((n, _RACKS), dtype=bool)},
    )


def _assert_chunks_equal(a, b):
    assert a.start_seq == b.start_seq
    np.testing.assert_array_equal(a.epoch_s, b.epoch_s)
    assert set(a.values) == set(b.values)
    for channel in a.values:
        np.testing.assert_array_equal(a.values[channel], b.values[channel])
        np.testing.assert_array_equal(a.quality[channel], b.quality[channel])


def _assert_rollups_equal(expected: RollupStore, actual: RollupStore):
    assert expected.resolutions_s == actual.resolutions_s
    for resolution in expected.resolutions_s:
        for channel in CHANNELS:
            want = expected.window(resolution, channel, -np.inf, np.inf)
            got = actual.window(resolution, channel, -np.inf, np.inf)
            np.testing.assert_array_equal(want.epoch, got.epoch)
            np.testing.assert_array_equal(want.samples, got.samples)
            np.testing.assert_array_equal(want.count, got.count)
            np.testing.assert_array_equal(want.usable, got.usable)
            for field in ("total", "minimum", "maximum"):
                np.testing.assert_allclose(
                    getattr(want, field),
                    getattr(got, field),
                    rtol=1e-9,
                    atol=1e-9,
                    equal_nan=True,
                )


class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        chunks = [_chunk(0, 8), _chunk(8, 8), _chunk(16, 3)]
        for chunk in chunks:
            wal.append(chunk)
        wal.close()
        records, _, torn = WriteAheadLog.scan(path)
        assert not torn
        assert [r.start_seq for r in records] == [0, 8, 16]
        assert [r.end_seq for r in records] == [7, 15, 18]
        for record, chunk in zip(records, chunks):
            _assert_chunks_equal(record.chunk(), chunk)

    def test_torn_tail_detected_and_truncated_on_resume(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.append(_chunk(0, 4))
        wal.append(_chunk(4, 4))
        wal.close()
        with open(path, "ab") as handle:  # a half-written frame
            handle.write(b"\x99" * 11)
        records, _, torn = WriteAheadLog.scan(path)
        assert torn and len(records) == 2
        resumed = WriteAheadLog(path, resume=True)
        resumed.append(_chunk(8, 4))
        resumed.close()
        records, _, torn = WriteAheadLog.scan(path)
        assert not torn
        assert [r.start_seq for r in records] == [0, 4, 8]

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.append(_chunk(0, 4))
        wal.close()
        WriteAheadLog(path).close()
        records, _, torn = WriteAheadLog.scan(path)
        assert records == [] and not torn

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(b"not a wal at all")
        with pytest.raises(RecoveryError, match="magic"):
            WriteAheadLog.scan(path)


class TestSnapshotStore:
    def test_roundtrip_keeps_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save("rollups", 15, {"x": 1})
        store.save("rollups", 31, {"x": 2})
        snapshot = store.load("rollups")
        assert snapshot.acked_seq == 31 and snapshot.state == {"x": 2}

    def test_missing_and_corrupt_load_as_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load("rollups") is None
        store.save("rollups", 7, {"x": 1})
        path = tmp_path / "rollups.snapshot.pkl"
        path.write_bytes(path.read_bytes()[:-5])  # truncated mid-payload
        assert store.load("rollups") is None


class TestReplayComponent:
    def test_skips_acked_and_replays_rest(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        for chunk in (_chunk(0, 4), _chunk(4, 4), _chunk(8, 4)):
            wal.append(chunk)
        wal.close()
        records, _, _ = WriteAheadLog.scan(path)
        applied = []
        recovery = replay_component(
            "rollups", records, acked_seq=3, apply=applied.append, snapshot_seq=3
        )
        assert recovery.records_skipped == 1
        assert recovery.records_replayed == 2
        assert recovery.samples_replayed == 8
        assert [c.start_seq for c in applied] == [4, 8]

    def test_straddling_record_is_sliced(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.append(_chunk(0, 8))
        wal.append(_chunk(8, 8))
        wal.close()
        records, _, _ = WriteAheadLog.scan(path)
        applied = []
        recovery = replay_component(
            "rollups", records, acked_seq=5, apply=applied.append, snapshot_seq=5
        )
        # The first record [0, 7] straddles the ack at 5: only rows
        # 6..7 re-apply, then [8, 15] replays whole.
        assert recovery.records_replayed == 2
        assert recovery.samples_replayed == 10
        assert applied[0].start_seq == 6 and len(applied[0]) == 2
        np.testing.assert_array_equal(
            applied[0].values[Channel.POWER][:, 0], [6.0, 7.0]
        )
        assert applied[1].start_seq == 8

    def test_gap_raises(self, tmp_path):
        path = tmp_path / "wal.bin"
        wal = WriteAheadLog(path)
        wal.append(_chunk(0, 4))
        wal.append(_chunk(8, 4))  # hole: [4, 7] missing
        wal.close()
        records, _, _ = WriteAheadLog.scan(path)
        with pytest.raises(RecoveryError, match="gap"):
            replay_component("rollups", records, acked_seq=-1, apply=lambda c: None)


class _FlakyConsumer:
    """Collects delivered chunks; raises on scheduled call numbers."""

    def __init__(self, fail_calls=()):
        self.fail_calls = set(fail_calls)
        self.calls = 0
        self.chunks = []

    def __call__(self, chunk):
        self.calls += 1
        if self.calls in self.fail_calls:
            raise RuntimeError(f"boom on call {self.calls}")
        self.chunks.append(chunk)

    @property
    def seqs(self):
        out = []
        for chunk in self.chunks:
            out.extend(range(chunk.start_seq, chunk.end_seq + 1))
        return out


class TestSupervisedSubscriber:
    """Direct proxy calls — no bus, no timing dependence."""

    def _supervisor(self, replayer=None, **overrides):
        defaults = dict(backoff_base_s=0.0, max_restarts=2)
        defaults.update(overrides)
        return Supervisor(SupervisorConfig(**defaults), replayer=replayer)

    def test_crash_budget_and_give_up(self):
        inner = _FlakyConsumer(fail_calls=range(1, 100))
        supervisor = self._supervisor(repair_gaps=False)
        wrapper = supervisor.supervise("victim", inner)
        for i in range(5):
            wrapper(_chunk(i * 4, 4))
        counters = wrapper.counters
        # Crashes 1..3 exhaust max_restarts=2; deliveries 4 and 5 skip.
        assert counters.crashes == 3
        assert counters.restarts == 2
        assert counters.gave_up is True
        assert counters.skipped == 2 and counters.samples_skipped == 8
        kinds = [e.kind for e in supervisor.events]
        assert kinds == ["crash", "restart", "crash", "restart", "gave_up"]

    def test_backoff_delays_restart(self):
        inner = _FlakyConsumer(fail_calls={1})
        supervisor = self._supervisor(
            backoff_base_s=60.0, repair_gaps=False
        )
        wrapper = supervisor.supervise("victim", inner)
        wrapper(_chunk(0, 4))  # crash -> backoff for 60s
        wrapper(_chunk(4, 4))  # still backed off: skipped
        assert wrapper.counters.skipped == 1
        wrapper._restart_at = 0.0  # the backoff clock expires
        wrapper(_chunk(8, 4))
        assert wrapper.counters.restarts == 1
        assert wrapper.counters.deliveries == 1

    def test_backoff_schedule_bounded_exponential(self):
        config = SupervisorConfig(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5
        )
        assert [config.backoff_s(n) for n in (1, 2, 3, 4, 10)] == [
            0.1,
            0.2,
            0.4,
            0.5,
            0.5,
        ]

    def test_gap_before_first_delivery_repaired(self, stream_result):
        replayer = SourceReplayer(stream_result.database, chunk_size=8)
        inner = _FlakyConsumer()
        supervisor = self._supervisor(replayer=replayer)
        wrapper = supervisor.supervise("late", inner)
        trigger = list(replayer.blocks(16, 23))[0]
        wrapper(trigger)
        # Seqs 0..15 were never delivered: repaired from the source
        # before the trigger, so the inner stream is gap-free.
        assert inner.seqs == list(range(24))
        assert wrapper.counters.gaps_repaired == 1
        assert wrapper.counters.samples_repaired == 16
        assert wrapper.last_acked_seq == 23

    def test_evicted_chunks_replayed_after_restart(self, stream_result):
        replayer = SourceReplayer(stream_result.database, chunk_size=8)
        inner = _FlakyConsumer(fail_calls={1})
        supervisor = self._supervisor(replayer=replayer)
        wrapper = supervisor.supervise("victim", inner)
        blocks = list(replayer.blocks(0, 23))
        wrapper(blocks[0])  # crashes: [0, 7] lost
        wrapper(blocks[1])  # restart; [0, 7] repaired, then [8, 15]
        wrapper(blocks[2])
        assert inner.seqs == list(range(24))
        assert wrapper.counters.gaps_repaired == 1
        assert wrapper.counters.samples_repaired == 8
        assert [e.kind for e in supervisor.events] == [
            "crash",
            "restart",
            "gap_repaired",
        ]


class TestSourceReplayer:
    def test_blocks_match_bus_content(self, stream_result):
        database = stream_result.database
        replayer = SourceReplayer(database, chunk_size=16)
        blocks = list(replayer.blocks(3, 40))
        assert [b.start_seq for b in blocks] == [3, 19, 35]
        assert sum(len(b) for b in blocks) == 38
        np.testing.assert_array_equal(
            blocks[0].epoch_s, database.epoch_s[3:19]
        )
        np.testing.assert_array_equal(
            blocks[0].values[Channel.POWER],
            database.channel(Channel.POWER).values[3:19],
        )

    def test_out_of_window_rejected(self, stream_result):
        replayer = SourceReplayer(stream_result.database, chunk_size=16)
        with pytest.raises(ValueError, match="outside the replay window"):
            list(replayer.blocks(0, stream_result.database.num_samples))


def _baseline(stream_result, config):
    service = LiveOperationsService(
        stream_result.database,
        model=_StubModel(),
        cusum=True,
        config=config,
    )
    service.run()
    return service


def _assert_equivalent(expected, actual):
    _assert_rollups_equal(expected.rollups, actual.rollups)
    assert (
        actual.predictor_subscriber.predictions
        == expected.predictor_subscriber.predictions
    )
    assert actual.predictor_subscriber.alerts == expected.predictor_subscriber.alerts
    assert actual.cusum_subscriber.alarms == expected.cusum_subscriber.alarms


class TestRecoveryEquivalence:
    """The headline pin: kill mid-stream, recover, finish — identical."""

    @pytest.mark.parametrize(
        "delivery,chunk_size",
        [("chunks", 1), ("chunks", 64), ("samples", 4)],
        ids=["chunks-1", "chunks-64", "samples-4"],
    )
    def test_kill_recover_matches_uninterrupted(
        self, stream_result, tmp_path, delivery, chunk_size
    ):
        config = ServiceConfig(
            chunk_size=chunk_size,
            delivery=delivery,
            analytics_policy="block",
        )
        expected = _baseline(stream_result, config)

        durable = dataclasses.replace(
            config,
            durability=DurabilityConfig(
                directory=tmp_path / "state", snapshot_every_samples=64
            ),
        )
        kill_seq = stream_result.database.num_samples // 2
        doomed = LiveOperationsService(
            stream_result.database,
            model=_StubModel(),
            cusum=True,
            config=durable,
            chaos=ChaosInjector(ChaosConfig(kill_at_seq=kill_seq)),
        )
        with pytest.raises(ChaosProcessKill):
            doomed.run()
        doomed.abort()

        recovered = LiveOperationsService.recover(
            stream_result.database, model=_StubModel(), cusum=True, config=durable
        )
        assert recovered.recovery is not None
        assert recovered.recovery.wal_records > 0
        assert recovered.recovery.resume_seq <= kill_seq
        report = recovered.run()
        assert report.recovery is recovered.recovery
        _assert_equivalent(expected, recovered)

    def test_double_kill_still_recovers(self, stream_result, tmp_path):
        """The WAL stays continuous across a second mid-stream death."""
        config = ServiceConfig(chunk_size=32, analytics_policy="block")
        expected = _baseline(stream_result, config)
        num = stream_result.database.num_samples
        durable = dataclasses.replace(
            config,
            durability=DurabilityConfig(
                directory=tmp_path / "state", snapshot_every_samples=64
            ),
        )
        for kill_seq in (num // 3, 2 * num // 3):
            service = (
                LiveOperationsService(
                    stream_result.database,
                    model=_StubModel(),
                    cusum=True,
                    config=durable,
                    chaos=ChaosInjector(ChaosConfig(kill_at_seq=kill_seq)),
                )
                if kill_seq == num // 3
                else LiveOperationsService.recover(
                    stream_result.database,
                    model=_StubModel(),
                    cusum=True,
                    config=durable,
                    chaos=ChaosInjector(ChaosConfig(kill_at_seq=kill_seq)),
                )
            )
            with pytest.raises(ChaosProcessKill):
                service.run()
            service.abort()
        final = LiveOperationsService.recover(
            stream_result.database, model=_StubModel(), cusum=True, config=durable
        )
        final.run()
        _assert_equivalent(expected, final)

    def test_snapshot_boundary_straddle(self, stream_result, tmp_path):
        """Per-sample delivery snapshots mid-chunk; replay slices the
        straddling WAL record instead of double-applying it."""
        config = ServiceConfig(
            chunk_size=4,
            delivery="samples",
            analytics_policy="block",
        )
        expected = _baseline(stream_result, config)
        durable = dataclasses.replace(
            config,
            durability=DurabilityConfig(
                directory=tmp_path / "state", snapshot_every_samples=10
            ),
        )
        kill_seq = stream_result.database.num_samples // 2
        doomed = LiveOperationsService(
            stream_result.database,
            model=_StubModel(),
            cusum=True,
            config=durable,
            chaos=ChaosInjector(ChaosConfig(kill_at_seq=kill_seq)),
        )
        with pytest.raises(ChaosProcessKill):
            doomed.run()
        doomed.abort()
        recovered = LiveOperationsService.recover(
            stream_result.database, model=_StubModel(), cusum=True, config=durable
        )
        rollups = recovered.recovery.component("rollups")
        assert rollups.snapshot_seq is not None
        assert rollups.records_skipped >= 1
        recovered.run()
        _assert_equivalent(expected, recovered)

    def test_recover_without_durability_rejected(self, stream_result):
        with pytest.raises(ValueError, match="durability"):
            LiveOperationsService.recover(stream_result.database)


class TestSupervisedService:
    """Chaos through the real bus: isolation without stalling peers."""

    _SUPERVISION = SupervisorConfig(
        deadline_s=0.05, poll_interval_s=0.01, backoff_base_s=0.0
    )

    def _expected(self, stream_result):
        config = ServiceConfig(chunk_size=16, analytics_policy="block")
        service = LiveOperationsService(
            stream_result.database, cusum=True, config=config
        )
        service.run()
        return service

    def test_crash_isolated_restarted_and_repaired(self, stream_result):
        expected = self._expected(stream_result)
        crash_seq = (stream_result.database.num_samples // 2 // 16) * 16
        chaos = ChaosInjector(ChaosConfig(crash_at=(("rollups", crash_seq),)))
        service = LiveOperationsService(
            stream_result.database,
            cusum=True,
            config=ServiceConfig(
                chunk_size=16,
                analytics_policy="block",
                supervision=self._SUPERVISION,
            ),
            chaos=chaos,
        )
        report = service.run()
        counters = report.supervision["rollups"]
        assert counters.crashes == 1
        assert counters.restarts == 1
        assert counters.gaps_repaired == 1
        assert not counters.gave_up
        assert report.chaos["rollups"].crashes_injected == 1
        kinds = [(e.kind, e.subscriber) for e in report.events]
        assert ("crash", "rollups") in kinds
        assert ("restart", "rollups") in kinds
        # Peers untouched, full stream delivered everywhere.
        assert report.supervision["cusum"].crashes == 0
        _assert_rollups_equal(expected.rollups, service.rollups)
        assert service.cusum_subscriber.alarms == expected.cusum_subscriber.alarms

    def test_hang_degrades_then_restores_block_policy(self, stream_result):
        expected = self._expected(stream_result)
        hang_seq = (stream_result.database.num_samples // 2 // 16) * 16
        chaos = ChaosInjector(
            ChaosConfig(hang_at=(("rollups", hang_seq),), hang_s=0.3)
        )
        service = LiveOperationsService(
            stream_result.database,
            cusum=True,
            config=ServiceConfig(
                chunk_size=16,
                analytics_policy="block",
                queue_capacity=2,
                supervision=self._SUPERVISION,
            ),
            chaos=chaos,
        )
        report = service.run()
        counters = report.supervision["rollups"]
        assert counters.hangs == 1
        assert counters.hang_recoveries == 1
        kinds = [e.kind for e in report.events if e.subscriber == "rollups"]
        assert "hang" in kinds and "hang_recovered" in kinds
        # The degrade is temporary: the block policy is back in place.
        assert service.supervisor.subscribers["rollups"].subscription.policy == "block"
        # Dropped-while-degraded chunks were repaired from the source.
        _assert_rollups_equal(expected.rollups, service.rollups)
        assert service.cusum_subscriber.alarms == expected.cusum_subscriber.alarms


class TestServeManyGuard:
    """Satellite: the batch query path isolates failures and deadlines."""

    @pytest.fixture(scope="class")
    def engine(self, stream_result):
        store = RollupStore.from_database(stream_result.database)
        return QueryEngine(store)

    def _query(self, stream_result, **overrides):
        kwargs = dict(
            kind="aggregate",
            channel=Channel.POWER,
            start_epoch_s=stream_result.start_epoch_s,
            end_epoch_s=stream_result.end_epoch_s,
            stat="mean",
        )
        kwargs.update(overrides)
        return Query(**kwargs)

    def test_error_isolated_in_position(self, stream_result, engine):
        good = self._query(stream_result)
        bad = self._query(stream_result, resolution_s=123.456)  # no such level
        results = engine.serve_many([good, bad, good], workers=2)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert "KeyError" in results[1].error
        info = engine.serve_info()
        assert info["errors"] == 1 and info["served"] >= 2

    def test_serial_path_also_guards(self, stream_result, engine):
        bad = self._query(stream_result, resolution_s=999.0)
        results = engine.serve_many([bad], workers=1)
        assert not results[0].ok and results[0].error

    def test_timeout_returns_structured_result(self, stream_result, engine):
        import time

        original = engine.execute

        def stalled(query):
            time.sleep(0.5)
            return original(query)

        engine.execute = stalled
        try:
            results = engine.serve_many(
                [self._query(stream_result)], workers=2, timeout_s=0.05
            )
        finally:
            engine.execute = original
        assert not results[0].ok
        assert "timeout" in results[0].error
        assert engine.serve_info()["timeouts"] == 1

    def test_execute_still_raises_for_direct_callers(self, stream_result, engine):
        with pytest.raises(KeyError):
            engine.execute(self._query(stream_result, resolution_s=123.456))
