"""Telemetry/RAS export and re-import roundtrips."""

import numpy as np
import pytest

from repro.telemetry.export import (
    export_ras_jsonl,
    export_telemetry_csv,
    import_ras_jsonl,
    import_telemetry_csv,
)
from repro.telemetry.records import Channel


class TestTelemetryRoundtrip:
    def test_roundtrip_preserves_values(self, demo_result, tmp_path):
        # Export a small slice to keep the test fast.
        db = demo_result.database
        path = tmp_path / "telemetry.csv"
        # Build a trimmed database via the window query.
        from repro.telemetry.database import EnvironmentalDatabase

        trimmed = EnvironmentalDatabase()
        epochs = db.epoch_s[:48]
        for i, epoch in enumerate(epochs):
            snapshot = {
                ch: db.channel(ch).values[i].copy() for ch in Channel
            }
            trimmed.append_snapshot(float(epoch), snapshot)

        rows = export_telemetry_csv(trimmed, path)
        assert rows == 48 * 48  # samples x racks

        restored = import_telemetry_csv(path)
        assert restored.num_samples == trimmed.num_samples
        for channel in Channel:
            original = trimmed.channel(channel).values
            back = restored.channel(channel).values
            mask = np.isfinite(original)
            assert np.allclose(original[mask], back[mask], rtol=1e-5)

    def test_import_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            import_telemetry_csv(path)


class TestRasRoundtrip:
    def test_roundtrip_preserves_events(self, year_result, tmp_path):
        path = tmp_path / "ras.jsonl"
        count = export_ras_jsonl(year_result.ras_log, path)
        assert count == len(year_result.ras_log)

        restored = import_ras_jsonl(path)
        assert len(restored) == len(year_result.ras_log)
        for original, back in list(zip(year_result.ras_log, restored))[:200]:
            assert back.epoch_s == pytest.approx(original.epoch_s)
            assert back.rack_id == original.rack_id
            assert back.severity == original.severity
            assert back.category == original.category

    def test_dedup_identical_after_roundtrip(self, year_result, tmp_path):
        from repro.core.failure_analysis import deduplicate_cmf_events

        path = tmp_path / "ras.jsonl"
        export_ras_jsonl(year_result.ras_log, path)
        restored = import_ras_jsonl(path)
        assert (
            deduplicate_cmf_events(restored).count
            == deduplicate_cmf_events(year_result.ras_log).count
        )
