"""Telemetry/RAS export and re-import roundtrips."""

import numpy as np
import pytest

from repro.telemetry.export import (
    export_ras_jsonl,
    export_telemetry_csv,
    import_ras_jsonl,
    import_telemetry_csv,
)
from repro.telemetry.records import Channel


class TestTelemetryRoundtrip:
    def test_roundtrip_preserves_values(self, demo_result, tmp_path):
        # Export a small slice to keep the test fast.
        db = demo_result.database
        path = tmp_path / "telemetry.csv"
        # Build a trimmed database via the window query.
        from repro.telemetry.database import EnvironmentalDatabase

        trimmed = EnvironmentalDatabase()
        epochs = db.epoch_s[:48]
        for i, epoch in enumerate(epochs):
            snapshot = {
                ch: db.channel(ch).values[i].copy() for ch in Channel
            }
            trimmed.append_snapshot(float(epoch), snapshot)

        rows = export_telemetry_csv(trimmed, path)
        assert rows == 48 * 48  # samples x racks

        restored = import_telemetry_csv(path)
        assert restored.num_samples == trimmed.num_samples
        for channel in Channel:
            original = trimmed.channel(channel).values
            back = restored.channel(channel).values
            mask = np.isfinite(original)
            assert np.allclose(original[mask], back[mask], rtol=1e-5)

    def test_import_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(ValueError):
            import_telemetry_csv(path)


class TestRasRoundtrip:
    def test_roundtrip_preserves_events(self, year_result, tmp_path):
        path = tmp_path / "ras.jsonl"
        count = export_ras_jsonl(year_result.ras_log, path)
        assert count == len(year_result.ras_log)

        restored = import_ras_jsonl(path)
        assert len(restored) == len(year_result.ras_log)
        for original, back in list(zip(year_result.ras_log, restored))[:200]:
            assert back.epoch_s == pytest.approx(original.epoch_s)
            assert back.rack_id == original.rack_id
            assert back.severity == original.severity
            assert back.category == original.category

    def test_dedup_identical_after_roundtrip(self, year_result, tmp_path):
        from repro.core.failure_analysis import deduplicate_cmf_events

        path = tmp_path / "ras.jsonl"
        export_ras_jsonl(year_result.ras_log, path)
        restored = import_ras_jsonl(path)
        assert (
            deduplicate_cmf_events(restored).count
            == deduplicate_cmf_events(year_result.ras_log).count
        )


class TestQualityRoundtrip:
    """Satellite: per-channel quality masks survive export/import."""

    def test_faulted_dataset_roundtrip_is_lossless(
        self, faulted_result, tmp_path
    ):
        db = faulted_result.database
        path = tmp_path / "faulted.csv"
        export_telemetry_csv(db, path)
        restored = import_telemetry_csv(path)
        assert restored.num_samples == db.num_samples
        for channel in Channel:
            np.testing.assert_array_equal(
                restored.quality(channel), db.quality(channel)
            )
            original = db.channel(channel).values
            back = restored.channel(channel).values
            np.testing.assert_array_equal(
                np.isfinite(original), np.isfinite(back)
            )
            mask = np.isfinite(original)
            assert np.allclose(original[mask], back[mask], rtol=1e-5)

    def test_roundtrip_preserves_coverage_series(
        self, faulted_result, tmp_path
    ):
        db = faulted_result.database
        path = tmp_path / "faulted.csv"
        export_telemetry_csv(db, path)
        restored = import_telemetry_csv(path)
        for channel in (Channel.POWER, Channel.FLOW):
            np.testing.assert_allclose(
                restored.coverage(channel).values,
                db.coverage(channel).values,
                rtol=1e-12,
            )

    def test_scrubbed_dataset_actually_has_nontrivial_flags(
        self, faulted_result
    ):
        # Guard: the fixture must exercise SUSPECT/SCRUBBED verdicts,
        # otherwise the round-trip above proves nothing.
        from repro.telemetry.records import Quality

        flags = np.concatenate(
            [faulted_result.database.quality(ch).ravel() for ch in Channel]
        )
        assert (flags == int(Quality.MISSING)).any()
        assert (
            (flags == int(Quality.SUSPECT)) | (flags == int(Quality.SCRUBBED))
        ).any()

    def test_quality_columns_optional_for_legacy_consumers(
        self, demo_result, tmp_path
    ):
        db = demo_result.database
        path = tmp_path / "legacy.csv"
        export_telemetry_csv(db, path, include_quality=False)
        with open(path) as handle:
            header = handle.readline().strip().split(",")
        assert not any(column.endswith("_q") for column in header)
        restored = import_telemetry_csv(path)
        assert restored.num_samples == db.num_samples


class TestChunkedExport:
    def test_chunk_size_does_not_change_the_file(self, demo_result, tmp_path):
        db = demo_result.database
        single = tmp_path / "single.csv"
        chunked = tmp_path / "chunked.csv"
        rows_single = export_telemetry_csv(
            db, single, chunk_size=db.num_samples + 1
        )
        rows_chunked = export_telemetry_csv(db, chunked, chunk_size=7)
        assert rows_single == rows_chunked
        assert single.read_bytes() == chunked.read_bytes()

    def test_invalid_chunk_size_rejected(self, demo_result, tmp_path):
        with pytest.raises(ValueError):
            export_telemetry_csv(
                demo_result.database, tmp_path / "x.csv", chunk_size=0
            )
