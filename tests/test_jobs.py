"""The job model and its lifecycle."""

import pytest

from repro.scheduler.jobs import Job, JobState
from repro.scheduler.queues import QueueName


def _job(midplanes=2, walltime_s=7200.0, **overrides):
    defaults = dict(
        job_id=1,
        project=None,
        queue=QueueName.PROD_SHORT,
        midplanes=midplanes,
        walltime_s=walltime_s,
        intensity=1.0,
        submit_epoch_s=0.0,
    )
    defaults.update(overrides)
    return Job(**defaults)


class TestConstruction:
    def test_nodes_from_midplanes(self):
        assert _job(midplanes=4).nodes == 2048

    def test_bad_midplanes_rejected(self):
        with pytest.raises(ValueError):
            _job(midplanes=0)

    def test_bad_walltime_rejected(self):
        with pytest.raises(ValueError):
            _job(walltime_s=0.0)

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError):
            _job(intensity=-0.5)


class TestLifecycle:
    def test_start_sets_end_time(self):
        job = _job(midplanes=2, walltime_s=3600.0)
        job.start(1000.0, (4, 5))
        assert job.state is JobState.RUNNING
        assert job.end_epoch_s == 4600.0
        assert job.assigned_midplanes == (4, 5)

    def test_start_requires_exact_placement(self):
        job = _job(midplanes=2)
        with pytest.raises(ValueError):
            job.start(0.0, (4,))

    def test_double_start_rejected(self):
        job = _job()
        job.start(0.0, (0, 1))
        with pytest.raises(ValueError):
            job.start(10.0, (2, 3))

    def test_complete(self):
        job = _job()
        job.start(0.0, (0, 1))
        job.complete()
        assert job.state is JobState.COMPLETED

    def test_complete_requires_running(self):
        with pytest.raises(ValueError):
            _job().complete()

    def test_kill_truncates_end(self):
        job = _job(walltime_s=7200.0)
        job.start(0.0, (0, 1))
        job.kill(100.0)
        assert job.state is JobState.KILLED
        assert job.end_epoch_s == 100.0

    def test_kill_requires_running(self):
        with pytest.raises(ValueError):
            _job().kill(0.0)


class TestAccounting:
    def test_core_hours(self):
        job = _job(midplanes=1, walltime_s=3600.0)
        job.start(0.0, (0,))
        job.complete()
        # 512 nodes x 16 cores x 1 hour.
        assert job.core_hours == pytest.approx(512 * 16)

    def test_core_hours_zero_before_start(self):
        assert _job().core_hours == 0.0

    def test_killed_job_accrues_partial(self):
        job = _job(midplanes=1, walltime_s=7200.0)
        job.start(0.0, (0,))
        job.kill(3600.0)
        assert job.core_hours == pytest.approx(512 * 16)
