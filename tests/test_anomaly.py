"""The CUSUM change detector."""

import numpy as np
import pytest

from repro.facility.topology import RackId
from repro.monitoring.anomaly import CusumConfig, CusumDetector
from repro.telemetry.records import Channel


def _sample(inlet=64.0, **overrides):
    sample = {
        Channel.FLOW: 26.0,
        Channel.OUTLET_TEMPERATURE: 79.0,
        Channel.INLET_TEMPERATURE: inlet,
        Channel.POWER: 55.0,
        Channel.DC_TEMPERATURE: 80.0,
        Channel.DC_HUMIDITY: 33.0,
    }
    sample.update(overrides)
    return sample


def _run(detector, values, rack=(0, 0), channel=Channel.INLET_TEMPERATURE):
    alarms = []
    for i, value in enumerate(values):
        sample = _sample()
        sample[channel] = value
        alarms.extend(detector.consume(i * 300.0, RackId(*rack), sample))
    return alarms


class TestConfig:
    def test_defaults_valid(self):
        CusumConfig()

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            CusumConfig(decision=0.0)
        with pytest.raises(ValueError):
            CusumConfig(ewma_alpha=1.5)


class TestDetection:
    def test_steady_stream_quiet(self, rng):
        detector = CusumDetector()
        values = 64.0 + 0.3 * rng.standard_normal(400)
        alarms = _run(detector, values)
        inlet_alarms = [a for a in alarms if a.channel is Channel.INLET_TEMPERATURE]
        assert len(inlet_alarms) <= 2

    def test_sustained_drift_detected(self, rng):
        detector = CusumDetector()
        steady = 64.0 + 0.3 * rng.standard_normal(200)
        drifting = 64.0 - np.linspace(0.0, 4.5, 60) + 0.3 * rng.standard_normal(60)
        alarms = _run(detector, np.concatenate([steady, drifting]))
        inlet_alarms = [a for a in alarms if a.channel is Channel.INLET_TEMPERATURE]
        assert inlet_alarms, "expected the drift to trip CUSUM"
        # The alarm must land during the drift, not during the steady phase.
        assert inlet_alarms[0].epoch_s >= 200 * 300.0

    def test_no_alarms_during_warmup(self, rng):
        detector = CusumDetector(CusumConfig(warmup_samples=50))
        values = np.concatenate([[64.0] * 10, [90.0] * 20])
        alarms = _run(detector, values)
        assert all(a.epoch_s >= 50 * 300.0 for a in alarms)

    def test_two_sided(self, rng):
        detector = CusumDetector()
        steady = 64.0 + 0.3 * rng.standard_normal(200)
        rising = 64.0 + np.linspace(0.0, 4.5, 60)
        alarms = _run(detector, np.concatenate([steady, rising]))
        assert [a for a in alarms if a.channel is Channel.INLET_TEMPERATURE]

    def test_racks_independent(self, rng):
        detector = CusumDetector()
        _run(detector, 64.0 + 0.3 * rng.standard_normal(300), rack=(0, 0))
        # A fresh rack starts in warmup: a single wild value cannot alarm.
        alarms = detector.consume(0.0, RackId(2, 9), _sample(inlet=120.0))
        assert alarms == ()

    def test_reset_clears(self, rng):
        detector = CusumDetector()
        _run(detector, 64.0 + 0.3 * rng.standard_normal(100))
        detector.reset(RackId(0, 0))
        assert all(k[0] != RackId(0, 0) for k in detector._state)


class TestOnLeadupWindows:
    def test_detects_precursors_in_positive_windows(self, year_windows):
        positives, _ = year_windows
        detector = CusumDetector(CusumConfig(warmup_samples=12))
        hits = 0
        for window in positives[:40]:
            detector.reset()
            fired = False
            for i, epoch in enumerate(window.epoch_s):
                sample = {
                    ch: float(window.channels[ch][i]) for ch in window.channels
                }
                if detector.consume(float(epoch), window.rack_id, sample):
                    fired = True
            hits += fired
        # CUSUM sees the sustained inlet/outlet drifts in most lead-ups.
        assert hits > 20
