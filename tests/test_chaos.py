"""The chaos injector: deterministic schedules, hooks, and the matrix."""

import pytest

from repro.chaos import (
    CHAOS_SCENARIOS,
    ChaosConfig,
    ChaosCrash,
    ChaosInjector,
    ChaosProcessKill,
    WorkerCrasher,
    run_chaos_matrix,
)
from repro.service.bus import BusChunk

import numpy as np


def _chunk(start_seq, n):
    return BusChunk(
        seq=start_seq,
        start_seq=start_seq,
        epoch_s=np.arange(n, dtype="float64"),
        values={},
        quality={},
    )


def _crash_pattern(injector, name, deliveries=200):
    """Which delivery indices crash, for a fixed per-subscriber stream."""
    crashed = []
    for i in range(deliveries):
        try:
            injector.before_delivery(name, i)
        except ChaosCrash:
            crashed.append(i)
    return crashed


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="hang_rate"):
            ChaosConfig(hang_rate=-0.1)
        with pytest.raises(ValueError, match="negative"):
            ChaosConfig(hang_s=-1.0)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig(seed=42, crash_rate=0.2)
        a = _crash_pattern(ChaosInjector(config), "rollups")
        b = _crash_pattern(ChaosInjector(config), "rollups")
        assert a == b and a  # identical and non-empty at this rate

    def test_streams_independent_per_subscriber(self):
        config = ChaosConfig(seed=42, crash_rate=0.2)
        injector = ChaosInjector(config)
        rollups = _crash_pattern(injector, "rollups")
        cusum = _crash_pattern(injector, "cusum")
        # Each name has its own generator: interleaving order does not
        # matter, and the two schedules differ.
        fresh = ChaosInjector(config)
        assert _crash_pattern(fresh, "cusum", 200) == cusum
        assert rollups != cusum

    def test_seed_changes_schedule(self):
        a = _crash_pattern(ChaosInjector(ChaosConfig(seed=1, crash_rate=0.2)), "x")
        b = _crash_pattern(ChaosInjector(ChaosConfig(seed=2, crash_rate=0.2)), "x")
        assert a != b

    def test_worker_crash_indices_deterministic(self):
        config = ChaosConfig(seed=9)
        a = ChaosInjector(config).worker_crash_indices(100, 0.1)
        b = ChaosInjector(config).worker_crash_indices(100, 0.1)
        assert a == b
        assert all(0 <= i < 100 for i in a)
        assert ChaosInjector(config).worker_crash_indices(100, 0.0) == ()
        with pytest.raises(ValueError, match="rate"):
            ChaosInjector(config).worker_crash_indices(100, 2.0)


class TestSchedules:
    def test_explicit_crash_fires_once(self):
        injector = ChaosInjector(ChaosConfig(crash_at=(("rollups", 32),)))
        injector.before_delivery("rollups", 0)
        with pytest.raises(ChaosCrash):
            injector.before_delivery("rollups", 32)
        injector.before_delivery("rollups", 32)  # retry passes
        assert injector.counters["rollups"].crashes_injected == 1

    def test_subscriber_filter_scopes_rate_injection(self):
        config = ChaosConfig(seed=3, crash_rate=1.0, subscribers=("rollups",))
        injector = ChaosInjector(config)
        injector.before_delivery("cusum", 0)  # not targeted: no crash
        with pytest.raises(ChaosCrash):
            injector.before_delivery("rollups", 0)

    def test_kill_fires_once_at_covering_chunk(self):
        injector = ChaosInjector(ChaosConfig(kill_at_seq=10))
        injector.on_publish(_chunk(0, 8))  # ends at 7: too early
        with pytest.raises(ChaosProcessKill):
            injector.on_publish(_chunk(8, 8))  # covers seq 10
        injector.on_publish(_chunk(16, 8))  # already dead once: no-op
        assert injector.counters["__bus__"].kills_injected == 1


class TestWorkerCrasher:
    def test_picklable_and_suppressed_after_marker(self, tmp_path):
        import pickle

        crasher = WorkerCrasher(len, (2,), tmp_path)
        clone = pickle.loads(pickle.dumps(crasher))
        assert clone.crash_indices == (2,)
        (tmp_path / "crashed-2").touch()  # marker: crash already spent
        assert clone(2, "abcd") == 4  # survives in-process


class TestChaosMatrix:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_chaos_matrix(scenarios=("meteor",))

    def test_crash_cell_passes(self, tmp_path):
        summary = run_chaos_matrix(
            days=2,
            seed=7,
            dt_s=3600.0,
            chunk_sizes=(8,),
            scenarios=("crash",),
            workdir=tmp_path,
        )
        assert summary["ok"] is True
        (cell,) = summary["cells"]
        assert cell["scenario"] == "crash"
        assert cell["rollups_match"] and cell["alarms_match"]
        assert ("crash", "rollups") in cell["events"]

    def test_kill_cell_recovers(self, tmp_path):
        summary = run_chaos_matrix(
            days=2,
            seed=7,
            dt_s=3600.0,
            chunk_sizes=(8,),
            scenarios=("kill",),
            workdir=tmp_path,
        )
        assert summary["ok"] is True
        (cell,) = summary["cells"]
        assert cell["killed"] is True
        assert cell["wal_records_replayed"] > 0

    def test_scenario_registry(self):
        assert CHAOS_SCENARIOS == ("crash", "hang", "kill")
