"""The chaos injector: deterministic schedules, hooks, and the matrix."""

import pytest

from repro.chaos import (
    CHAOS_SCENARIOS,
    ChaosConfig,
    ChaosCrash,
    ChaosInjector,
    ChaosProcessKill,
    WorkerCrasher,
    run_chaos_matrix,
)
from repro.service.bus import BusChunk

import numpy as np


def _chunk(start_seq, n):
    return BusChunk(
        seq=start_seq,
        start_seq=start_seq,
        epoch_s=np.arange(n, dtype="float64"),
        values={},
        quality={},
    )


def _crash_pattern(injector, name, deliveries=200):
    """Which delivery indices crash, for a fixed per-subscriber stream."""
    crashed = []
    for i in range(deliveries):
        try:
            injector.before_delivery(name, i)
        except ChaosCrash:
            crashed.append(i)
    return crashed


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="hang_rate"):
            ChaosConfig(hang_rate=-0.1)
        with pytest.raises(ValueError, match="negative"):
            ChaosConfig(hang_s=-1.0)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        config = ChaosConfig(seed=42, crash_rate=0.2)
        a = _crash_pattern(ChaosInjector(config), "rollups")
        b = _crash_pattern(ChaosInjector(config), "rollups")
        assert a == b and a  # identical and non-empty at this rate

    def test_streams_independent_per_subscriber(self):
        config = ChaosConfig(seed=42, crash_rate=0.2)
        injector = ChaosInjector(config)
        rollups = _crash_pattern(injector, "rollups")
        cusum = _crash_pattern(injector, "cusum")
        # Each name has its own generator: interleaving order does not
        # matter, and the two schedules differ.
        fresh = ChaosInjector(config)
        assert _crash_pattern(fresh, "cusum", 200) == cusum
        assert rollups != cusum

    def test_seed_changes_schedule(self):
        a = _crash_pattern(ChaosInjector(ChaosConfig(seed=1, crash_rate=0.2)), "x")
        b = _crash_pattern(ChaosInjector(ChaosConfig(seed=2, crash_rate=0.2)), "x")
        assert a != b

    def test_worker_crash_indices_deterministic(self):
        config = ChaosConfig(seed=9)
        a = ChaosInjector(config).worker_crash_indices(100, 0.1)
        b = ChaosInjector(config).worker_crash_indices(100, 0.1)
        assert a == b
        assert all(0 <= i < 100 for i in a)
        assert ChaosInjector(config).worker_crash_indices(100, 0.0) == ()
        with pytest.raises(ValueError, match="rate"):
            ChaosInjector(config).worker_crash_indices(100, 2.0)


class TestSchedules:
    def test_explicit_crash_fires_once(self):
        injector = ChaosInjector(ChaosConfig(crash_at=(("rollups", 32),)))
        injector.before_delivery("rollups", 0)
        with pytest.raises(ChaosCrash):
            injector.before_delivery("rollups", 32)
        injector.before_delivery("rollups", 32)  # retry passes
        assert injector.counters["rollups"].crashes_injected == 1

    def test_subscriber_filter_scopes_rate_injection(self):
        config = ChaosConfig(seed=3, crash_rate=1.0, subscribers=("rollups",))
        injector = ChaosInjector(config)
        injector.before_delivery("cusum", 0)  # not targeted: no crash
        with pytest.raises(ChaosCrash):
            injector.before_delivery("rollups", 0)

    def test_kill_fires_once_at_covering_chunk(self):
        injector = ChaosInjector(ChaosConfig(kill_at_seq=10))
        injector.on_publish(_chunk(0, 8))  # ends at 7: too early
        with pytest.raises(ChaosProcessKill):
            injector.on_publish(_chunk(8, 8))  # covers seq 10
        injector.on_publish(_chunk(16, 8))  # already dead once: no-op
        assert injector.counters["__bus__"].kills_injected == 1


class TestWorkerCrasher:
    def test_picklable_and_suppressed_after_marker(self, tmp_path):
        import pickle

        crasher = WorkerCrasher(len, (2,), tmp_path)
        clone = pickle.loads(pickle.dumps(crasher))
        assert clone.crash_indices == (2,)
        (tmp_path / "crashed-2").touch()  # marker: crash already spent
        assert clone(2, "abcd") == 4  # survives in-process


class TestChaosMatrix:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_chaos_matrix(scenarios=("meteor",))

    def test_crash_cell_passes(self, tmp_path):
        summary = run_chaos_matrix(
            days=2,
            seed=7,
            dt_s=3600.0,
            chunk_sizes=(8,),
            scenarios=("crash",),
            workdir=tmp_path,
        )
        assert summary["ok"] is True
        (cell,) = summary["cells"]
        assert cell["scenario"] == "crash"
        assert cell["rollups_match"] and cell["alarms_match"]
        assert ("crash", "rollups") in cell["events"]

    def test_kill_cell_recovers(self, tmp_path):
        summary = run_chaos_matrix(
            days=2,
            seed=7,
            dt_s=3600.0,
            chunk_sizes=(8,),
            scenarios=("kill",),
            workdir=tmp_path,
        )
        assert summary["ok"] is True
        (cell,) = summary["cells"]
        assert cell["killed"] is True
        assert cell["wal_records_replayed"] > 0

    def test_scenario_registry(self):
        assert CHAOS_SCENARIOS == ("crash", "hang", "kill")


def _http_schedule(injector, requests=400):
    """The fault decision for each of the first ``requests`` arrivals."""
    return [injector.on_http_request(i) for i in range(requests)]


class TestHttpChaosSchedule:
    def test_http_rates_validated(self):
        with pytest.raises(ValueError, match="http_error_rate"):
            ChaosConfig(http_error_rate=1.5)
        with pytest.raises(ValueError, match="http_reset_rate"):
            ChaosConfig(http_reset_rate=-0.1)

    def test_same_seed_same_http_schedule(self):
        config = ChaosConfig(seed=9, http_error_rate=0.1, http_reset_rate=0.05)
        a = _http_schedule(ChaosInjector(config))
        b = _http_schedule(ChaosInjector(config))
        assert a == b
        assert a.count("error") > 0 and a.count("reset") > 0

    def test_http_stream_independent_of_subscriber_stream(self):
        """Draining a subscriber's stream must not shift HTTP faults."""
        config = ChaosConfig(seed=9, http_error_rate=0.1, crash_rate=0.2)
        pristine = ChaosInjector(config)
        drained = ChaosInjector(config)
        _crash_pattern(drained, "rollups")
        assert _http_schedule(pristine) == _http_schedule(drained)

    def test_explicit_indices_fire_once_and_take_priority(self):
        config = ChaosConfig(
            seed=1, http_error_at=(2, 5), http_reset_at=(2, 7)
        )
        injector = ChaosInjector(config)
        assert injector.on_http_request(0) is None
        assert injector.on_http_request(2) == "error"  # error beats reset
        assert injector.on_http_request(5) == "error"
        assert injector.on_http_request(7) == "reset"
        # Replaying an index does not re-fire the explicit fault.
        assert injector.on_http_request(5) is None
        counters = injector.counters["__http__"]
        assert counters.http_errors_injected == 2
        assert counters.http_resets_injected == 1


class TestHttpChaosOverServer:
    """The injector wired into the real server, deterministically."""

    @staticmethod
    def _app(chaos, ingest=None):
        from repro.service.http import IngestServerConfig, OperationsApp
        from repro.telemetry.database import EnvironmentalDatabase
        from repro.telemetry.records import CHANNELS

        rng = np.random.default_rng(3)
        db = EnvironmentalDatabase(num_racks=4)
        db.append_block(
            np.arange(12) * 300.0,
            {ch: rng.normal(50.0, 5.0, size=(12, 4)) for ch in CHANNELS},
        )
        config = (
            IngestServerConfig() if ingest else None
        )
        return OperationsApp.from_database(db, ingest=config, chaos=chaos)

    def test_scheduled_error_and_reset_then_clean_service(self):
        import http.client
        import json

        from repro.service.http import OperationsHttpServer

        injector = ChaosInjector(
            ChaosConfig(http_error_at=(0,), http_reset_at=(1,))
        )
        app = self._app(injector)
        with OperationsHttpServer(app) as server:
            host, port = server.address
            # Request 0: structured 500, not a traceback or a hang.
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/healthz")
            reply = conn.getresponse()
            payload = json.loads(reply.read())
            assert reply.status == 500
            assert payload["error"]["type"] == "chaos_injected"
            conn.close()
            # Request 1: the connection dies with no response at all.
            conn = http.client.HTTPConnection(host, port, timeout=10)
            with pytest.raises(
                (
                    ConnectionResetError,
                    ConnectionAbortedError,
                    http.client.BadStatusLine,
                    http.client.RemoteDisconnected,
                )
            ):
                conn.request("GET", "/healthz")
                conn.getresponse().read()
            conn.close()
            # Request 2: back to normal service on a fresh connection.
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/healthz")
            reply = conn.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["status"] == "ok"
            conn.close()
        assert app.counters.chaos_errors == 1
        assert app.counters.chaos_resets == 1
        metrics = app.metrics()
        assert metrics["server"]["chaos_errors"] == 1
        assert metrics["server"]["chaos_resets"] == 1

    def test_collector_retries_through_scheduled_faults(self):
        """An IngestClient rides out a 500 and a reset, then commits."""
        from repro.service.http import (
            IngestClient,
            OperationsHttpServer,
            RetryPolicy,
        )
        from repro.telemetry.records import CHANNELS

        injector = ChaosInjector(
            ChaosConfig(http_error_at=(0,), http_reset_at=(1,))
        )
        app = self._app(injector, ingest=True)
        sleeps = []
        with OperationsHttpServer(app) as server:
            client = IngestClient(
                server.url,
                "replayer",
                retry=RetryPolicy(max_attempts=5, base_delay_s=0.01),
                sleep=sleeps.append,
            )
            rng = np.random.default_rng(11)
            epochs = (12 + np.arange(4)) * 300.0
            reply = client.post_batch(
                epochs,
                {ch: rng.normal(50.0, 5.0, size=(4, 4)) for ch in CHANNELS},
            )
            # 12 seed samples + the 4 the batch committed.
            assert reply["committed_samples"] == 16
        # Attempt 0 hit the injected 500, attempt 1 the reset; the
        # third attempt landed.  Both failures backed off.
        assert client.counters.retries == 2
        assert client.counters.server_errors == 1
        assert client.counters.transport_failures == 1
        assert sleeps == [0.01, 0.02]
        assert app.counters.chaos_errors == 1
        assert app.counters.chaos_resets == 1
