"""The workload generator."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil
from repro.scheduler.queues import QueueName
from repro.scheduler.workload import WorkloadConfig, WorkloadGenerator


def _generator(seed=0, **config_overrides):
    config = WorkloadConfig(**config_overrides) if config_overrides else None
    return WorkloadGenerator(config=config, rng=np.random.default_rng(seed))


def _epoch(year, month, day=15):
    return timeutil.to_epoch(dt.datetime(year, month, day))


class TestConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_bad_demand_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(demand_start=0.9, demand_end=0.8)

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(incite_share=0.7, alcc_share=0.5)

    def test_discretionary_share_complement(self):
        config = WorkloadConfig(incite_share=0.5, alcc_share=0.3)
        assert config.discretionary_share == pytest.approx(0.2)


class TestDemandShaping:
    def test_secular_growth(self):
        gen = _generator()
        assert gen.secular_factor(_epoch(2019, 6)) > gen.secular_factor(_epoch(2014, 6))

    def test_secular_clamped_outside_period(self):
        gen = _generator()
        assert gen.secular_factor(_epoch(2010, 1)) == pytest.approx(
            gen.config.demand_start
        )
        assert gen.secular_factor(_epoch(2025, 1)) == pytest.approx(
            gen.config.demand_end
        )

    def test_seasonal_peaks_late_year(self):
        gen = _generator()
        december = gen.seasonal_factor(_epoch(2015, 12, 20))
        february = gen.seasonal_factor(_epoch(2015, 2, 10))
        assert december > february

    def test_seasonal_mean_near_one(self):
        gen = _generator()
        months = [gen.seasonal_factor(_epoch(2015, m)) for m in range(1, 13)]
        assert np.mean(months) == pytest.approx(1.0, abs=0.08)

    def test_intensity_creep(self):
        gen = _generator()
        assert gen.intensity_mean(_epoch(2019, 6)) > gen.intensity_mean(_epoch(2014, 6))


class TestArrivals:
    def test_arrival_counts_scale_with_dt(self):
        gen = _generator(seed=3)
        short = sum(len(gen.arrivals(_epoch(2015, 5), 3600.0)) for _ in range(200))
        gen2 = _generator(seed=3)
        long = sum(len(gen2.arrivals(_epoch(2015, 5), 7200.0)) for _ in range(200))
        assert long > short

    def test_jobs_have_valid_queues(self):
        gen = _generator(seed=1)
        jobs = []
        for _ in range(100):
            jobs.extend(gen.arrivals(_epoch(2015, 9), 3600.0))
        assert jobs, "expected some arrivals"
        for job in jobs:
            assert job.queue in (QueueName.PROD_LONG, QueueName.PROD_SHORT)
            assert job.queue.admits(job.walltime_s)

    def test_job_ids_unique(self):
        gen = _generator(seed=1)
        ids = []
        for _ in range(50):
            ids.extend(j.job_id for j in gen.arrivals(_epoch(2015, 9), 3600.0))
        assert len(ids) == len(set(ids))

    def test_intensity_within_clip(self):
        gen = _generator(seed=2)
        for _ in range(50):
            for job in gen.arrivals(_epoch(2018, 3), 3600.0):
                assert 0.3 <= job.intensity <= 2.5

    def test_sizes_are_valid(self):
        gen = _generator(seed=4)
        sizes = set()
        for _ in range(300):
            for job in gen.arrivals(_epoch(2016, 11), 3600.0):
                sizes.add(job.midplanes)
        assert sizes <= {1, 2, 4, 8, 16, 32, 48, 96}

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            _generator().arrivals(_epoch(2015, 1), 0.0)

    def test_burner_job(self):
        gen = _generator()
        burner = gen.make_burner_job(_epoch(2015, 1), 6 * 3600.0, 0.65)
        assert burner.is_burner
        assert burner.queue is QueueName.BURNER
        assert burner.midplanes == 1
        assert burner.intensity == 0.65

    def test_deterministic_given_seed(self):
        a = [j.midplanes for j in _generator(seed=9).arrivals(_epoch(2015, 5), 7200.0)]
        b = [j.midplanes for j in _generator(seed=9).arrivals(_epoch(2015, 5), 7200.0)]
        assert a == b
