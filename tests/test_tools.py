"""The EXPERIMENTS.md generator tool."""

from pathlib import Path

import pytest

from repro.tools.experiments import _HEADER


class TestHeader:
    def test_header_mentions_regeneration_command(self):
        assert "python -m repro.tools.experiments" in _HEADER

    def test_header_is_markdown(self):
        assert _HEADER.startswith("# EXPERIMENTS")


class TestGeneratedFile:
    def test_repo_experiments_md_up_to_date_shape(self):
        """The committed EXPERIMENTS.md has every figure section."""
        path = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
        assert path.exists(), "EXPERIMENTS.md missing from the repo root"
        text = path.read_text()
        for section in (
            "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 7",
            "Fig 8", "Fig 9", "Figs 10-11", "Fig 12", "Fig 13",
            "Figs 14-15",
        ):
            assert section in text, f"missing section {section}"
        assert "| source | metric | paper | measured | unit |" in text
