"""TimeSeries operations."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil
from repro.telemetry.series import LinearFit, TimeSeries, linear_fit


def _hourly(days=10, start=dt.datetime(2015, 1, 1)):
    return timeutil.time_grid(start, start + dt.timedelta(days=days), 3600.0)


class TestConstruction:
    def test_length(self):
        epoch = _hourly(2)
        series = TimeSeries(epoch, np.ones_like(epoch))
        assert len(series) == 48

    def test_per_rack_flag(self):
        epoch = _hourly(1)
        flat = TimeSeries(epoch, np.ones_like(epoch))
        wide = TimeSeries(epoch, np.ones((len(epoch), 48)))
        assert not flat.is_per_rack
        assert wide.is_per_rack

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(_hourly(1), np.ones(5))

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.array([2.0, 1.0]), np.array([0.0, 0.0]))

    def test_3d_values_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.array([1.0]), np.ones((1, 2, 3)))


class TestSlicing:
    def test_between(self):
        epoch = _hourly(10)
        series = TimeSeries(epoch, np.arange(len(epoch), dtype=float))
        cut = series.between(epoch[24], epoch[48])
        assert len(cut) == 24
        assert cut.values[0] == 24.0

    def test_rack_extraction(self):
        epoch = _hourly(1)
        values = np.tile(np.arange(48.0), (len(epoch), 1))
        series = TimeSeries(epoch, values)
        assert np.all(series.rack(7).values == 7.0)

    def test_rack_on_flat_series_rejected(self):
        series = TimeSeries(_hourly(1), np.ones(24))
        with pytest.raises(ValueError):
            series.rack(0)


class TestReductions:
    def test_across_racks_mean(self):
        epoch = _hourly(1)
        values = np.tile(np.arange(48.0), (len(epoch), 1))
        series = TimeSeries(epoch, values).across_racks("mean")
        assert np.allclose(series.values, np.arange(48.0).mean())

    def test_across_racks_sum(self):
        epoch = _hourly(1)
        series = TimeSeries(epoch, np.ones((len(epoch), 48))).across_racks("sum")
        assert np.allclose(series.values, 48.0)

    def test_per_rack_mean(self):
        epoch = _hourly(1)
        values = np.tile(np.arange(48.0), (len(epoch), 1))
        profile = TimeSeries(epoch, values).per_rack_mean()
        assert np.allclose(profile, np.arange(48.0))

    def test_overall_stats_ignore_nan(self):
        epoch = np.array([0.0, 1.0, 2.0])
        series = TimeSeries(epoch, np.array([1.0, np.nan, 3.0]))
        assert series.overall_mean() == pytest.approx(2.0)


class TestResample:
    def test_daily_buckets(self):
        epoch = _hourly(4)
        series = TimeSeries(epoch, np.arange(len(epoch), dtype=float))
        daily = series.resample(86_400.0)
        assert len(daily) == 4
        assert daily.values[0] == pytest.approx(np.arange(24).mean())

    def test_median_reducer(self):
        epoch = np.arange(10.0)
        values = np.array([0, 0, 0, 0, 100, 0, 0, 0, 0, 0], dtype=float)
        bucketed = TimeSeries(epoch, values).resample(10.0, "median")
        assert bucketed.values[0] == 0.0

    def test_preserves_rack_axis(self):
        epoch = _hourly(2)
        series = TimeSeries(epoch, np.ones((len(epoch), 48)))
        daily = series.resample(86_400.0)
        assert daily.values.shape == (2, 48)

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(_hourly(1), np.ones(24)).resample(0.0)


class TestCalendarGroupby:
    def test_by_weekday(self):
        epoch = _hourly(14)  # two full weeks
        weekdays = timeutil.weekdays(epoch)
        values = (weekdays == 0).astype(float)  # 1.0 on Mondays
        by_day = TimeSeries(epoch, values).groupby_calendar("weekday", "mean")
        assert by_day[0] == pytest.approx(1.0)
        assert by_day[3] == pytest.approx(0.0)

    def test_by_month(self):
        epoch = timeutil.time_grid(
            dt.datetime(2015, 1, 1), dt.datetime(2015, 4, 1), 6 * 3600.0
        )
        months = timeutil.months(epoch)
        series = TimeSeries(epoch, months.astype(float))
        by_month = series.groupby_calendar("month", "median")
        assert by_month == {1: 1.0, 2: 2.0, 3: 3.0}

    def test_per_rack_series_averages_racks_first(self):
        epoch = _hourly(7)
        values = np.ones((len(epoch), 48))
        by_day = TimeSeries(epoch, values).groupby_calendar("weekday", "mean")
        assert all(v == pytest.approx(1.0) for v in by_day.values())


class TestTrend:
    def test_linear_fit_recovers_slope(self):
        epoch = _hourly(365)
        slope_per_year = 0.1
        values = 2.5 + slope_per_year * (epoch - epoch[0]) / timeutil.YEAR_S
        fit = linear_fit(epoch, values)
        assert fit.slope_per_year == pytest.approx(slope_per_year, rel=1e-6)
        assert fit.intercept_at_start == pytest.approx(2.5, abs=1e-9)

    def test_fit_predict(self):
        epoch = _hourly(100)
        values = 1.0 + 0.5 * (epoch - epoch[0]) / timeutil.YEAR_S
        fit = linear_fit(epoch, values)
        predicted = fit.predict(epoch[-1:])
        assert predicted[0] == pytest.approx(values[-1], rel=1e-9)

    def test_fit_ignores_nan(self):
        epoch = _hourly(10)
        values = np.ones(len(epoch))
        values[::3] = np.nan
        fit = linear_fit(epoch, values)
        assert fit.slope_per_year == pytest.approx(0.0, abs=1e-9)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            linear_fit(np.array([0.0]), np.array([1.0]))

    def test_series_trend_on_per_rack(self):
        epoch = _hourly(30)
        values = np.ones((len(epoch), 48)) * 2.0
        fit = TimeSeries(epoch, values).trend()
        assert fit.slope_per_year == pytest.approx(0.0, abs=1e-9)


class TestRollingMean:
    def test_constant_series_unchanged(self):
        epoch = _hourly(2)
        series = TimeSeries(epoch, np.full(len(epoch), 5.0)).rolling_mean(7)
        assert np.allclose(series.values, 5.0)

    def test_smooths_spike(self):
        epoch = np.arange(11.0)
        values = np.zeros(11)
        values[5] = 10.0
        smooth = TimeSeries(epoch, values).rolling_mean(5)
        assert smooth.values[5] == pytest.approx(2.0)

    def test_window_one_is_identity(self):
        epoch = np.arange(5.0)
        values = np.arange(5.0)
        assert np.allclose(
            TimeSeries(epoch, values).rolling_mean(1).values, values
        )

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(np.arange(3.0), np.arange(3.0)).rolling_mean(0)
