"""Shared fixtures.

Simulation runs are expensive, so the fixtures are session-scoped and
shared across test modules:

* ``demo_result`` — ~4 months at 30-minute cadence (seconds to build),
  enough structure for most integration tests;
* ``year_result`` — two years at 30-minute cadence with a meaningful
  number of CMFs, used by the failure/prediction integration tests;
* ``full_result`` — the canonical six-year hourly realization, used
  only by the paper-calibration test module and the benchmarks.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analytics.incremental import SECTION_CACHE_ENV
from repro.faults import FaultConfig
from repro.simulation import FacilityEngine, MiraScenario, WindowSynthesizer
from repro.simulation.datasets import canonical_dataset, small_dataset
from repro.telemetry.quality import scrub_database


@pytest.fixture(scope="session", autouse=True)
def _no_ambient_section_cache():
    """Keep the suite's reports fresh-compute by default.

    The section memo store would otherwise leak state between tests
    (and into the user's real ``~/.cache/repro``).  Tests that exercise
    the store pass an explicit ``SectionMemoStore(root=tmp_path,
    enabled=True)``, which overrides this gate.
    """
    import os

    previous = os.environ.get(SECTION_CACHE_ENV)
    os.environ[SECTION_CACHE_ENV] = "0"
    yield
    if previous is None:
        os.environ.pop(SECTION_CACHE_ENV, None)
    else:
        os.environ[SECTION_CACHE_ENV] = previous


@pytest.fixture(scope="session")
def demo_result():
    """A ~4-month simulation (cached in-process)."""
    return small_dataset()


@pytest.fixture(scope="session")
def faulted_result():
    """A ~6-week run with sensor faults injected (quality masks set).

    Used by the service-layer and export tests to exercise the
    quality-aware paths against telemetry that actually has MISSING/
    SUSPECT/SCRUBBED cells.
    """
    config = dataclasses.replace(
        MiraScenario.demo(days=45, seed=3), faults=FaultConfig()
    )
    result = FacilityEngine(config).run()
    scrub_database(result.database)
    return result


@pytest.fixture(scope="session")
def year_result():
    """A two-year simulation with a meaningful CMF population."""
    return FacilityEngine(MiraScenario.demo(days=730, seed=5)).run()


@pytest.fixture(scope="session")
def full_result():
    """The canonical six-year realization (the paper's study period)."""
    return canonical_dataset()


@pytest.fixture(scope="session")
def year_windows(year_result):
    """(positive, negative) lead-up windows from the two-year run."""
    synthesizer = WindowSynthesizer(year_result)
    positives = synthesizer.positive_windows()
    negatives = synthesizer.negative_windows(len(positives))
    return positives, negatives


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
