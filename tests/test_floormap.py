"""Floor-map rendering."""

import numpy as np
import pytest

from repro import constants
from repro.core.floormap import render_counts, render_floor


class TestRenderFloor:
    def test_three_rows_rendered(self):
        text = render_floor(np.linspace(0, 1, 48))
        lines = text.splitlines()
        assert sum(line.startswith("row ") for line in lines) == 3

    def test_title_included(self):
        text = render_floor(np.zeros(48) + 1.0, title="power")
        assert text.splitlines()[0] == "power"

    def test_extremes_annotated(self):
        values = np.ones(48)
        values[13] = 5.0  # rack (0, D)
        values[45] = 0.5  # rack (2, D)
        text = render_floor(values)
        assert "(0, D)" in text
        assert "(2, D)" in text

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            render_floor(np.ones(10))

    def test_nan_cells_marked(self):
        values = np.ones(48)
        values[5] = np.nan
        text = render_floor(values, annotate_extremes=False)
        assert "?" in text

    def test_constant_profile_renders(self):
        text = render_floor(np.full(48, 3.0))
        assert "row 0" in text

    def test_formatter_used(self):
        text = render_floor(
            np.arange(48.0), formatter=lambda v: f"{v:.0f}", annotate_extremes=False
        )
        assert "47" in text


class TestRenderCounts:
    def test_counts_shown_as_integers(self):
        counts = np.zeros(48, dtype=int)
        counts[24] = 14  # rack (1, 8)
        text = render_counts(counts, title="CMFs")
        assert "14" in text
        assert "(1, 8)" in text
