"""Robustness: edge-case configurations of the full stack."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil
from repro.cooling.monitor import AlarmThresholds, CoolantMonitor
from repro.scheduler.scheduler import MaintenancePolicy, MiraScheduler, ReservationPolicy
from repro.scheduler.workload import WorkloadConfig, WorkloadGenerator
from repro.simulation import FacilityEngine, SimulationConfig, WindowSynthesizer
from repro.telemetry.records import Channel


class TestTinySimulations:
    def test_one_day_run(self):
        config = SimulationConfig(
            start=dt.datetime(2015, 6, 1),
            end=dt.datetime(2015, 6, 2),
            dt_s=3600.0,
            seed=4,
        )
        result = FacilityEngine(config).run()
        assert result.database.num_samples == 24

    def test_single_step_run(self):
        config = SimulationConfig(
            start=dt.datetime(2015, 6, 1),
            end=dt.datetime(2015, 6, 1, 1),
            dt_s=3600.0,
            seed=4,
        )
        result = FacilityEngine(config).run()
        assert result.database.num_samples == 1

    def test_run_spanning_year_boundary(self):
        config = SimulationConfig(
            start=dt.datetime(2015, 12, 28),
            end=dt.datetime(2016, 1, 4),
            dt_s=3600.0,
            seed=4,
        )
        result = FacilityEngine(config).run()
        years = set(timeutil.years(result.database.epoch_s))
        assert years == {2015, 2016}

    def test_run_through_theta_boundary(self):
        config = SimulationConfig(
            start=dt.datetime(2016, 6, 25),
            end=dt.datetime(2016, 7, 6),
            dt_s=3600.0,
            seed=4,
            inject_failures=False,
        )
        result = FacilityEngine(config).run()
        flow = result.database.total_flow_gpm()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        before = np.nanmean(flow.values[flow.epoch_s < theta])
        after = np.nanmean(flow.values[flow.epoch_s >= theta])
        assert after > before + 20.0


class TestDegenerateWorkloads:
    def test_zero_demand_runs_idle(self):
        config = WorkloadConfig(demand_start=1e-6, demand_end=1e-6)
        generator = WorkloadGenerator(rng=np.random.default_rng(1), config=config)
        scheduler = MiraScheduler(
            generator,
            rng=np.random.default_rng(2),
            maintenance=MaintenancePolicy(probability=0.0),
            reservations=ReservationPolicy(rate_per_day=0.0),
        )
        epoch = timeutil.to_epoch(dt.datetime(2015, 3, 3))
        states = [scheduler.step(epoch + i * 3600.0, 3600.0) for i in range(72)]
        assert states[-1].system_utilization < 0.1

    def test_extreme_demand_saturates_cleanly(self):
        config = WorkloadConfig(demand_start=5.0, demand_end=5.0)
        generator = WorkloadGenerator(rng=np.random.default_rng(1), config=config)
        scheduler = MiraScheduler(
            generator,
            rng=np.random.default_rng(2),
            maintenance=MaintenancePolicy(probability=0.0),
            reservations=ReservationPolicy(rate_per_day=0.0),
        )
        epoch = timeutil.to_epoch(dt.datetime(2015, 3, 3))
        for i in range(72):
            state = scheduler.step(epoch + i * 3600.0, 3600.0)
        assert state.system_utilization > 0.9
        assert len(scheduler.queued_jobs) <= scheduler.queue_cap


class TestMonitorAgreementWithWindows:
    def test_flow_collapse_trips_fatal_threshold_at_event(self, year_windows):
        """At the failure instant the monitor's own thresholds fire."""
        positives, _ = year_windows
        monitor = CoolantMonitor(positives[0].rack_id)
        tripped = 0
        flow_events = 0
        for window in positives:
            final = {
                channel: float(window.channels[channel][-1])
                for channel in window.channels
            }
            reading = monitor.make_reading(
                window.end_epoch_s,
                final[Channel.DC_TEMPERATURE],
                min(final[Channel.DC_HUMIDITY], 99.0),
                final[Channel.FLOW],
                final[Channel.INLET_TEMPERATURE],
                final[Channel.OUTLET_TEMPERATURE],
                final[Channel.POWER],
            )
            if AlarmThresholds().fatal_reason(reading) is not None:
                tripped += 1
            flow_events += final[Channel.FLOW] < 15.0
        # Most events' final readings violate the fatal flow
        # threshold outright; the remainder sit just above it (the
        # paper: the rapid flow decline "in many cases ... becomes the
        # cause of the failure" — many, not all).
        assert tripped / len(positives) > 0.6
        assert flow_events / len(positives) > 0.85
