"""Flow regulating and solenoid valves."""

import datetime as dt

import pytest

from repro import constants, timeutil
from repro.cooling.valves import FlowRegulatingValve, SolenoidValve


class TestFlowRegulatingValve:
    def test_default_history_matches_paper(self):
        valve = FlowRegulatingValve()
        before = timeutil.to_epoch(dt.datetime(2015, 6, 1))
        after = timeutil.to_epoch(dt.datetime(2017, 6, 1))
        assert valve.setpoint_gpm(before) == constants.FLOW_PRE_THETA_GPM
        assert valve.setpoint_gpm(after) == constants.FLOW_POST_THETA_GPM

    def test_step_boundary(self):
        valve = FlowRegulatingValve()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        assert valve.setpoint_gpm(theta - 1) == constants.FLOW_PRE_THETA_GPM
        assert valve.setpoint_gpm(theta) == constants.FLOW_POST_THETA_GPM

    def test_query_before_history_clamps(self):
        valve = FlowRegulatingValve()
        ancient = timeutil.to_epoch(dt.datetime(2000, 1, 1))
        assert valve.setpoint_gpm(ancient) == constants.FLOW_PRE_THETA_GPM

    def test_new_setpoint_insertion(self):
        valve = FlowRegulatingValve()
        valve.set_setpoint(dt.datetime(2018, 1, 1), 1400.0)
        assert valve.setpoint_gpm(
            timeutil.to_epoch(dt.datetime(2018, 6, 1))
        ) == 1400.0
        assert valve.setpoint_gpm(
            timeutil.to_epoch(dt.datetime(2017, 6, 1))
        ) == constants.FLOW_POST_THETA_GPM

    def test_overwrite_same_date(self):
        valve = FlowRegulatingValve()
        valve.set_setpoint(constants.THETA_ADDITION_DATE, 1350.0)
        after = timeutil.to_epoch(dt.datetime(2017, 1, 1))
        assert valve.setpoint_gpm(after) == 1350.0

    def test_history_sorted(self):
        valve = FlowRegulatingValve()
        valve.set_setpoint(dt.datetime(2015, 1, 1), 1275.0)
        times = [t for t, _ in valve.history]
        assert times == sorted(times)

    def test_bad_setpoint_rejected(self):
        with pytest.raises(ValueError):
            FlowRegulatingValve().set_setpoint(dt.datetime(2018, 1, 1), 0.0)


class TestSolenoidValve:
    def test_starts_open(self):
        assert SolenoidValve().is_open

    def test_close_and_open(self):
        valve = SolenoidValve()
        valve.close()
        assert not valve.is_open
        assert valve.flow_multiplier() == 0.0
        valve.open()
        assert valve.is_open
        assert valve.flow_multiplier() == 1.0
