"""Vectorized dewpoint / condensation-margin arithmetic."""

import numpy as np
import pytest

from repro import units
from repro.failures.dewpoint import (
    condensation_margin_f,
    dewpoint_f_vec,
    humidity_for_margin,
)


class TestVectorizedDewpoint:
    def test_matches_scalar(self):
        temps = np.array([70.0, 80.0, 90.0])
        rhs = np.array([30.0, 50.0, 70.0])
        vector = dewpoint_f_vec(temps, rhs)
        for i in range(3):
            assert vector[i] == pytest.approx(units.dewpoint_f(temps[i], rhs[i]))

    def test_invalid_humidity_rejected(self):
        with pytest.raises(ValueError):
            dewpoint_f_vec(np.array([80.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            dewpoint_f_vec(np.array([80.0]), np.array([120.0]))


class TestMargin:
    def test_normal_conditions_safe(self):
        margin = condensation_margin_f(
            np.array([64.0]), np.array([80.0]), np.array([33.0])
        )
        assert margin[0] > 10.0

    def test_humid_cold_inlet_unsafe(self):
        margin = condensation_margin_f(
            np.array([50.0]), np.array([85.0]), np.array([75.0])
        )
        assert margin[0] < 2.0


class TestInversion:
    def test_humidity_for_margin_roundtrip(self):
        rh = humidity_for_margin(64.0, 80.0, target_margin_f=2.0)
        margin = condensation_margin_f(
            np.array([64.0]), np.array([80.0]), np.array([rh])
        )
        assert margin[0] == pytest.approx(2.0, abs=0.05)

    def test_impossible_margin_rejected(self):
        # A dewpoint above the air temperature is unreachable.
        with pytest.raises(ValueError):
            humidity_for_margin(90.0, 80.0, target_margin_f=0.0)

    def test_higher_margin_needs_less_humidity(self):
        low = humidity_for_margin(64.0, 80.0, target_margin_f=1.0)
        high = humidity_for_margin(64.0, 80.0, target_margin_f=10.0)
        assert high < low
