"""Gaussian process and Bayesian optimization."""

import numpy as np
import pytest

from repro.ml.bayesopt import BayesianOptimizer, GaussianProcess, expected_improvement


class TestGaussianProcess:
    def test_interpolates_observations(self):
        gp = GaussianProcess(noise_variance=1e-8)
        x = np.array([[0.0], [0.5], [1.0]])
        y = np.array([1.0, 2.0, 0.5])
        gp.fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self):
        gp = GaussianProcess(length_scale=0.2)
        gp.fit(np.array([[0.0]]), np.array([1.0]))
        _, near = gp.predict(np.array([[0.05]]))
        _, far = gp.predict(np.array([[3.0]]))
        assert far[0] > near[0]

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.array([[0.0]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.ones((3, 1)), np.ones(2))

    def test_bad_kernel_params_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(length_scale=0.0)


class TestExpectedImprovement:
    def test_zero_when_certain_and_worse(self):
        ei = expected_improvement(
            mean=np.array([0.0]), std=np.array([1e-12]), best=1.0
        )
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_mean_exceeds_best(self):
        ei = expected_improvement(
            mean=np.array([2.0]), std=np.array([0.1]), best=1.0
        )
        assert ei[0] > 0.9

    def test_uncertainty_adds_value(self):
        low = expected_improvement(np.array([1.0]), np.array([0.01]), best=1.0)
        high = expected_improvement(np.array([1.0]), np.array([1.0]), best=1.0)
        assert high[0] > low[0]


class TestBayesianOptimizer:
    def test_finds_quadratic_optimum(self):
        candidates = [(float(v),) for v in range(21)]

        def objective(c):
            return -(c[0] - 13.0) ** 2

        optimizer = BayesianOptimizer(candidates, rng=np.random.default_rng(5))
        best, history = optimizer.maximize(objective, budget=12)
        assert abs(best.candidate[0] - 13.0) <= 1.0
        assert len(history) == 12

    def test_never_reevaluates(self):
        candidates = [(float(v),) for v in range(10)]
        seen = []

        def objective(c):
            seen.append(c)
            return c[0]

        BayesianOptimizer(candidates, rng=np.random.default_rng(1)).maximize(
            objective, budget=10
        )
        assert len(seen) == len(set(seen)) == 10

    def test_budget_clamped_to_candidates(self):
        candidates = [(0.0,), (1.0,)]
        optimizer = BayesianOptimizer(candidates, rng=np.random.default_rng(1))
        best, history = optimizer.maximize(lambda c: c[0], budget=50)
        assert len(history) == 2
        assert best.candidate == (1.0,)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer([])

    def test_bad_budget_rejected(self):
        optimizer = BayesianOptimizer([(0.0,)])
        with pytest.raises(ValueError):
            optimizer.maximize(lambda c: 0.0, budget=0)

    def test_multidimensional_candidates(self):
        candidates = [(a, b) for a in (4, 8, 12, 16) for b in (4, 8, 12)]

        def objective(c):
            return -((c[0] - 12) ** 2 + (c[1] - 8) ** 2)

        optimizer = BayesianOptimizer(candidates, rng=np.random.default_rng(3))
        best, _ = optimizer.maximize(objective, budget=10)
        assert best.candidate == (12.0, 8.0)
