"""Adversarial/regression tests for the operations HTTP API.

Every malformed or hostile request must come back as a **structured
JSON error** — never a traceback — and the serving thread must stay
alive.  Most cases drive :meth:`OperationsApp.handle` directly (the
dispatcher is socket-free by design); a socket-level section then
repeats the nastiest ones over a real connection, including raw bytes
the JSON layer never sees.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    OperationsApp,
    OperationsHttpServer,
    IngestServerConfig,
)
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS

NUM_RACKS = 8
NUM_SAMPLES = 48
CADENCE_S = 300.0


def _database() -> EnvironmentalDatabase:
    rng = np.random.default_rng(42)
    db = EnvironmentalDatabase(num_racks=NUM_RACKS)
    epochs = np.arange(NUM_SAMPLES) * CADENCE_S
    db.append_block(
        epochs,
        {ch: rng.normal(50.0, 5.0, size=(NUM_SAMPLES, NUM_RACKS)) for ch in CHANNELS},
    )
    return db


@pytest.fixture(scope="module")
def app() -> OperationsApp:
    return OperationsApp.from_database(_database(), ingest=IngestServerConfig())


def _assert_error(status, payload, expected_status, expected_type):
    assert status == expected_status
    assert payload["api_version"] == 1
    error = payload["error"]
    assert error["status"] == expected_status
    assert error["type"] == expected_type
    # Structured means structured: a message, not a traceback dump.
    assert "Traceback" not in error["message"]


class TestQueryRouteErrors:
    def test_unknown_route(self, app):
        status, payload, _ = app.handle("GET", "/nope", {})
        _assert_error(status, payload, 404, "unknown_route")

    def test_unknown_query_kind(self, app):
        status, payload, _ = app.handle("GET", "/v1/query/median", {})
        _assert_error(status, payload, 404, "unknown_route")
        assert "point" in payload["error"]["message"]

    def test_unsupported_version_prefix(self, app):
        status, payload, _ = app.handle(
            "GET", "/v2/query/point", {"channel": "power_kw", "epoch_s": "0"}
        )
        _assert_error(status, payload, 404, "unsupported_version")
        assert "v1" in payload["error"]["message"]

    def test_unknown_channel(self, app):
        status, payload, _ = app.handle(
            "GET", "/v1/query/point", {"channel": "bogus", "epoch_s": "0"}
        )
        _assert_error(status, payload, 400, "unknown_channel")
        assert "power_kw" in payload["error"]["message"]

    def test_missing_required_parameter(self, app):
        status, payload, _ = app.handle(
            "GET", "/v1/query/series", {"channel": "power_kw", "start_s": "0"}
        )
        _assert_error(status, payload, 400, "bad_request")
        assert "end_s" in payload["error"]["message"]

    def test_non_numeric_window(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {"channel": "power_kw", "start_s": "zero", "end_s": "3600"},
        )
        _assert_error(status, payload, 400, "bad_request")

    def test_non_finite_window(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {"channel": "power_kw", "start_s": "nan", "end_s": "inf"},
        )
        _assert_error(status, payload, 400, "bad_request")

    def test_inverted_window(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {"channel": "power_kw", "start_s": "3600", "end_s": "0"},
        )
        _assert_error(status, payload, 400, "bad_request")

    def test_bad_stat_and_scope(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/point",
            {"channel": "power_kw", "epoch_s": "0", "stat": "median"},
        )
        _assert_error(status, payload, 400, "bad_request")
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/point",
            {"channel": "power_kw", "epoch_s": "0", "scope": "rack"},
        )
        _assert_error(status, payload, 400, "bad_request")  # rack index missing

    def test_unknown_resolution(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {
                "channel": "power_kw",
                "start_s": "0",
                "end_s": "3600",
                "resolution_s": "7.0",
            },
        )
        _assert_error(status, payload, 400, "bad_request")
        assert "rollup level" in payload["error"]["message"]

    def test_window_too_large_refused(self, app):
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/series",
            {
                "channel": "power_kw",
                "start_s": "0",
                "end_s": repr(300.0 * 200_000),
                "resolution_s": "300.0",
            },
        )
        _assert_error(status, payload, 422, "window_too_large")

    def test_out_of_range_window_is_served_not_crashed(self, app):
        # A window entirely outside the data is a valid (empty) answer.
        status, payload, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {"channel": "power_kw", "start_s": "9000000", "end_s": "9003600"},
        )
        assert status == 200
        assert payload["value"] is None  # NaN encodes as null

    def test_method_mismatch(self, app):
        status, payload, _ = app.handle("POST", "/v1/query/point", {})
        _assert_error(status, payload, 404, "unknown_route")
        status, payload, _ = app.handle("GET", "/v1/ingest", {})
        _assert_error(status, payload, 405, "method_not_allowed")


class TestIngestBodyErrors:
    def _base_body(self, n=2):
        return {
            "api_version": 1,
            "collector": "c1",
            "epoch_s": [NUM_SAMPLES * CADENCE_S + i * CADENCE_S for i in range(n)],
            "channels": {
                "power_kw": [[1.0] * NUM_RACKS for _ in range(n)],
            },
        }

    def test_missing_body(self, app):
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=None)
        _assert_error(status, payload, 400, "bad_json")

    def test_wrong_version_payload(self, app):
        body = self._base_body()
        body["api_version"] = 99
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "unsupported_version")

    def test_oversized_batch(self, app):
        limit = app.gateway.config.max_batch_samples
        body = self._base_body()
        body["epoch_s"] = list(range(limit + 1))
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 413, "payload_too_large")

    def test_unknown_channel_block(self, app):
        body = self._base_body()
        body["channels"]["voltage_v"] = body["channels"].pop("power_kw")
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "unknown_channel")

    def test_ragged_rows(self, app):
        body = self._base_body()
        body["channels"]["power_kw"][1] = [1.0]  # wrong width
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")

    def test_row_count_mismatch(self, app):
        body = self._base_body()
        body["channels"]["power_kw"].append([1.0] * NUM_RACKS)
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")

    def test_non_numeric_cells(self, app):
        body = self._base_body()
        body["channels"]["power_kw"][0][0] = "hot"
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")

    def test_bad_quality_flags(self, app):
        body = self._base_body()
        body["quality"] = {"power_kw": [[7] * NUM_RACKS, [0] * NUM_RACKS]}
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")

    def test_quality_without_channel(self, app):
        body = self._base_body()
        body["quality"] = {"flow_gpm": [[0] * NUM_RACKS, [0] * NUM_RACKS]}
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")

    def test_out_of_order_rejected_by_strict_policy(self, app):
        body = self._base_body()
        body["epoch_s"] = [0.0, CADENCE_S]  # far behind the stored tail
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "rejected_by_policy")

    def test_non_finite_epochs(self, app):
        body = self._base_body()
        body["epoch_s"] = [float("1e308") * 10, 0.0]  # inf
        status, payload, _ = app.handle("POST", "/v1/ingest", {}, body=body)
        _assert_error(status, payload, 400, "bad_request")


class TestDispatcherNeverRaises:
    def test_internal_errors_become_structured_500s(self, app, monkeypatch):
        def boom(query):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(app.engine, "execute_versioned", boom)
        status, payload, _ = app.handle(
            "GET", "/v1/query/point", {"channel": "power_kw", "epoch_s": "0"}
        )
        _assert_error(status, payload, 500, "internal")
        assert "kaboom" in payload["error"]["message"]

    def test_counters_classify_outcomes(self):
        app = OperationsApp.from_database(_database())
        app.handle("GET", "/healthz", {})
        app.handle("GET", "/bogus", {})
        counters = app.counters
        assert counters.requests == 2
        assert counters.served == 1
        assert counters.client_errors == 1
        assert counters.server_errors == 0


class TestOverSocket:
    """The nastiest cases again, through a real HTTP connection."""

    @pytest.fixture()
    def server(self, app):
        with OperationsHttpServer(app) as server:
            yield server

    def _request(self, server, method, path, body=None, raw=None):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            payload = raw if raw is not None else (
                json.dumps(body).encode() if body is not None else None
            )
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            reply = conn.getresponse()
            return reply.status, json.loads(reply.read())
        finally:
            conn.close()

    def test_malformed_json_body(self, server):
        status, payload = self._request(
            server, "POST", "/v1/ingest", raw=b"{not json"
        )
        _assert_error(status, payload, 400, "bad_json")

    def test_non_object_json_body(self, server):
        status, payload = self._request(server, "POST", "/v1/ingest", raw=b"[1,2]")
        _assert_error(status, payload, 400, "bad_json")

    def test_declared_oversize_body_refused(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.putrequest("POST", "/v1/ingest")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            # Refused on the declared length alone; no body ever sent.
            reply = conn.getresponse()
            payload = json.loads(reply.read())
            _assert_error(reply.status, payload, 413, "payload_too_large")
        finally:
            conn.close()

    def test_server_survives_a_barrage(self, server):
        """No handler death: hostile requests then a clean health check."""
        cases = [
            ("GET", "/v1/query/point?channel=bogus&epoch_s=0", None, None),
            ("GET", "/v1/query/series?channel=power_kw", None, None),
            ("POST", "/v1/ingest", None, b"\xff\xfe garbage"),
            ("GET", "/v9/query/point", None, None),
            ("POST", "/v1/ingest", {"api_version": 1}, None),
        ]
        for method, path, body, raw in cases:
            status, payload = self._request(server, method, path, body, raw)
            assert status >= 400
            assert "error" in payload
        status, payload = self._request(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_query_over_socket_matches_direct_dispatch(self, server, app):
        path = "/v1/query/aggregate?channel=power_kw&start_s=0&end_s=3600"
        status, over_socket = self._request(server, "GET", path)
        direct_status, direct, _ = app.handle(
            "GET",
            "/v1/query/aggregate",
            {"channel": "power_kw", "start_s": "0", "end_s": "3600"},
        )
        assert status == direct_status == 200
        assert over_socket == direct
