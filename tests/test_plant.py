"""The chilled water plant and its waterside economizer."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil, units
from repro.cooling.plant import ChilledWaterPlant
from repro.weather.chicago import ChicagoWeather


@pytest.fixture
def plant():
    return ChilledWaterPlant(ChicagoWeather(seed=1))


def _epochs(month, days=28):
    start = timeutil.to_epoch(dt.datetime(2015, month, 1))
    return start + np.arange(days * 4) * (86_400 / 4)


class TestEconomizer:
    def test_fraction_bounded(self, plant):
        for month in (1, 4, 7, 10):
            fraction = plant.free_cooling_fraction(_epochs(month))
            assert np.all(fraction >= 0.0)
            assert np.all(fraction <= 1.0)

    def test_winter_mostly_free_cooled(self, plant):
        assert plant.free_cooling_fraction(_epochs(1)).mean() > 0.5

    def test_summer_mechanically_chilled(self, plant):
        assert plant.free_cooling_fraction(_epochs(7)).mean() < 0.05

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError):
            ChilledWaterPlant(
                ChicagoWeather(),
                full_free_cooling_below_f=50.0,
                no_free_cooling_above_f=40.0,
            )


class TestSupplyTemperature:
    def test_summer_holds_setpoint(self, plant):
        supply = plant.supply_temperature_f(_epochs(7))
        assert np.allclose(supply, plant.supply_setpoint_f, atol=0.2)

    def test_winter_runs_slightly_warm(self, plant):
        # The Fig 4(d) signature: free-cooled months have a warmer inlet.
        winter = plant.supply_temperature_f(_epochs(1)).mean()
        summer = plant.supply_temperature_f(_epochs(7)).mean()
        assert winter > summer
        assert winter - summer < 2.0

    def test_default_setpoint_is_papers_inlet(self, plant):
        assert plant.supply_setpoint_f == constants.INLET_TEMP_F


class TestEnergy:
    def test_chiller_power_zero_when_fully_free_cooled(self, plant):
        # Find a fully free-cooled instant.
        epochs = _epochs(1)
        fractions = plant.free_cooling_fraction(epochs)
        full = epochs[fractions >= 1.0]
        assert full.size > 0
        assert float(plant.chiller_power_kw(full[0], 5000.0)) == pytest.approx(0.0)

    def test_chiller_power_scales_with_load(self, plant):
        epoch = _epochs(7)[0]  # summer: no free cooling
        p1 = float(plant.chiller_power_kw(epoch, 1000.0))
        p2 = float(plant.chiller_power_kw(epoch, 2000.0))
        assert p2 == pytest.approx(2.0 * p1)

    def test_negative_load_rejected(self, plant):
        with pytest.raises(ValueError):
            plant.chiller_power_kw(_epochs(7)[0], -1.0)

    def test_paper_free_cooling_savings_figure(self, plant):
        # Section II: 17,820 kWh saved per day when free cooling covers
        # 100 % of CWP capacity.  Evaluate with the fraction pinned at 1.
        day_seconds = 86_400.0
        epochs = _epochs(1)
        fractions = plant.free_cooling_fraction(epochs)
        fully_free = epochs[fractions >= 1.0][:1]
        load = np.full(1, plant.capacity_kw)
        savings = plant.free_cooling_savings_kwh(fully_free, load, day_seconds)
        assert savings == pytest.approx(constants.FREE_COOLING_KWH_PER_DAY, rel=0.02)

    def test_capacity_matches_two_chillers(self, plant):
        assert plant.capacity_kw == pytest.approx(
            units.tons_to_kw(2 * 1500), rel=1e-6
        )

    def test_operating_point_snapshot(self, plant):
        point = plant.operating_point(_epochs(7)[0], 8000.0)
        assert point.free_cooling_fraction == pytest.approx(0.0, abs=0.05)
        assert point.chiller_power_kw > 0.0
        assert point.supply_temperature_f == pytest.approx(64.0, abs=0.5)
