"""Rack-level analyses (Figs 6-7)."""

import numpy as np
import pytest

from repro import constants
from repro.core.spatial import (
    rack_coolant_profile,
    rack_power_profile,
    relative_spread,
    row_means,
)
from repro.facility.topology import RackId


class TestHelpers:
    def test_relative_spread(self):
        assert relative_spread(np.array([10.0, 11.0])) == pytest.approx(0.1)

    def test_relative_spread_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            relative_spread(np.array([0.0, 1.0]))

    def test_row_means(self):
        profile = np.concatenate(
            [np.full(16, 1.0), np.full(16, 2.0), np.full(16, 3.0)]
        )
        assert row_means(profile) == (1.0, 2.0, 3.0)


class TestRackPowerProfile:
    def test_shapes(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.power_kw.shape == (constants.NUM_RACKS,)
        assert profile.utilization.shape == (constants.NUM_RACKS,)

    def test_power_spread_in_band(self, full_result):
        profile = rack_power_profile(full_result.database)
        # Paper: up to 15 %.
        assert 0.08 < profile.power_spread < 0.30

    def test_highest_power_rack_is_0D(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.highest_power_rack == RackId(*constants.HIGHEST_POWER_RACK)

    def test_highest_utilization_rack_is_0A(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.highest_utilization_rack == RackId(
            *constants.HIGHEST_UTILIZATION_RACK
        )

    def test_lowest_utilization_rack_is_2D(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.lowest_utilization_rack == RackId(2, 0xD)

    def test_row_zero_highest(self, full_result):
        profile = rack_power_profile(full_result.database)
        assert profile.highest_utilization_row == constants.PROD_LONG_ROW
        assert profile.highest_power_row == constants.PROD_LONG_ROW

    def test_correlation_near_paper(self, full_result):
        profile = rack_power_profile(full_result.database)
        # Paper: r = 0.45 — markedly below 1.
        assert 0.2 < profile.power_utilization_correlation < 0.75


class TestRackCoolantProfile:
    def test_flow_spread_in_band(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        # Paper: up to 11 %.
        assert 0.05 < profile.flow_spread < 0.18

    def test_inlet_nearly_uniform(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        # Paper: ~1 %.
        assert profile.inlet_spread < 0.02

    def test_outlet_spread_between_inlet_and_power(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        power = rack_power_profile(full_result.database)
        assert profile.inlet_spread < profile.outlet_spread < power.power_spread

    def test_mean_flow_per_rack(self, full_result):
        profile = rack_coolant_profile(full_result.database)
        # Paper: ~26 GPM per rack.
        assert 24.0 < profile.mean_flow_per_rack_gpm < 29.0
