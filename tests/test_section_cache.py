"""The on-disk section memo store: durability and key hygiene.

Correctness here is what lets :func:`repro.core.experiments.full_report`
trust a cache hit: every entry is sha256-verified on load, corruption
is quarantined (a recompute, never a wrong table), and the cache key
covers exactly the inputs that determine the rows — dataset content,
section, config, code epoch — and nothing else.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.analytics.incremental import (
    CONFIG_ONLY_ROOT,
    SECTION_CACHE_ENV,
    SectionKey,
    SectionMemoStore,
    config_digest,
    default_store,
    reset_default_store,
)

ROOT = "a" * 64
CFG = "b" * 16


@pytest.fixture
def store(tmp_path):
    return SectionMemoStore(root=tmp_path, enabled=True)


def _rows():
    return [("Fig 2a", "power", 4.8), ("Fig 2b", "utilization", 0.8)]


class TestRowsRoundTrip:
    def test_miss_then_hit(self, store):
        key = store.key(ROOT, "fig2_rows", CFG)
        assert store.load_rows(key) is None
        store.store_rows(key, _rows())
        assert store.load_rows(key) == _rows()
        assert store.counters.misses == 1
        assert store.counters.stores == 1
        assert store.counters.hits == 1

    def test_atomic_publish_leaves_no_temp_files(self, store, tmp_path):
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []

    def test_new_root_prunes_stale_sibling(self, store):
        """One entry per (section, config, code) scope, not one per append."""
        old = store.key(ROOT, "fig2_rows", CFG)
        new = store.key("c" * 64, "fig2_rows", CFG)
        store.store_rows(old, _rows())
        store.store_rows(new, _rows())
        assert store.load_rows(old) is None  # pruned with the old root
        assert store.load_rows(new) == _rows()
        assert len([e for e in store.entries() if e.kind == "rows"]) == 1

    def test_different_sections_coexist(self, store):
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        store.store_rows(store.key(ROOT, "fig3_rows", CFG), _rows())
        assert len([e for e in store.entries() if e.kind == "rows"]) == 2


class TestKeyHygiene:
    def test_dataset_root_invalidates(self, store):
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        assert store.load_rows(store.key("c" * 64, "fig2_rows", CFG)) is None

    def test_config_digest_invalidates(self, store):
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        assert store.load_rows(store.key(ROOT, "fig2_rows", "d" * 16)) is None

    def test_code_epoch_invalidates(self, tmp_path):
        old = SectionMemoStore(root=tmp_path, enabled=True, code_epoch="1.0.0")
        new = SectionMemoStore(root=tmp_path, enabled=True, code_epoch="2.0.0")
        old.store_rows(old.key(ROOT, "fig2_rows", CFG), _rows())
        assert new.load_rows(new.key(ROOT, "fig2_rows", CFG)) is None
        assert old.load_rows(old.key(ROOT, "fig2_rows", CFG)) == _rows()

    def test_config_digest_covers_report_relevant_fields(self):
        from repro.simulation import MiraScenario

        base = MiraScenario.demo(days=30, seed=3)
        assert config_digest(base) == config_digest(
            MiraScenario.demo(days=30, seed=3)
        )
        assert config_digest(base) != config_digest(
            MiraScenario.demo(days=31, seed=3)
        )
        assert config_digest(base) != config_digest(
            MiraScenario.demo(days=30, seed=4)
        )

    def test_config_only_root_survives_dataset_change(self, store):
        """Telemetry-independent sections key under the sentinel root."""
        key = store.key(CONFIG_ONLY_ROOT, "fig14_15_rows", CFG)
        store.store_rows(key, _rows())
        # A dataset append changes the telemetry root but not this key.
        assert store.load_rows(store.key(CONFIG_ONLY_ROOT, "fig14_15_rows", CFG)) == _rows()

    def test_scope_groups_config_and_code(self):
        a = SectionKey(ROOT, "fig2_rows", CFG, "1.0")
        b = SectionKey("c" * 64, "fig2_rows", CFG, "1.0")
        c = SectionKey(ROOT, "fig2_rows", "d" * 16, "1.0")
        assert a.scope == b.scope  # same config+code, different data
        assert a.scope != c.scope


class TestCorruption:
    def _entry_path(self, store):
        paths = [e.path for e in store.entries()]
        assert len(paths) == 1
        return paths[0]

    def test_truncated_file_quarantined_and_missed(self, store, tmp_path):
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        path = self._entry_path(store)
        path.write_bytes(path.read_bytes()[:-7])
        assert store.load_rows(key) is None
        assert store.counters.corrupt == 1
        assert not path.exists()
        quarantined = [
            p for p in tmp_path.iterdir() if p.name.startswith(".quarantine-")
        ]
        assert len(quarantined) == 1
        # The store recovers: the next publish works again.
        store.store_rows(key, _rows())
        assert store.load_rows(key) == _rows()

    def test_bit_flip_quarantined(self, store):
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load_rows(key) is None
        assert store.counters.corrupt == 1

    def test_foreign_pickle_rejected(self, store):
        """A file that verifies but holds the wrong key never serves."""
        key = store.key(ROOT, "fig2_rows", CFG)
        other = store.key("c" * 64, "fig2_rows", CFG)
        record = {"kind": "rows", "key": dataclasses.asdict(other), "rows": _rows()}
        store._write(store.root / key.filename, record)
        assert store.load_rows(key) is None
        assert store.counters.invalidations == 1

    def test_quarantined_files_hidden_from_entries(self, store):
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        path = self._entry_path(store)
        path.write_bytes(b"garbage")
        store.load_rows(key)
        assert store.entries() == []


class TestStates:
    def test_round_trip(self, store):
        store.store_state("system-series", CFG, {"rows": 10})
        assert store.load_state("system-series", CFG) == {"rows": 10}

    def test_state_key_hygiene(self, store, tmp_path):
        store.store_state("system-series", CFG, {"rows": 10})
        assert store.load_state("system-series", "d" * 16) is None
        assert store.load_state("rack-profile", CFG) is None
        newer = SectionMemoStore(root=tmp_path, enabled=True, code_epoch="99.0")
        assert newer.load_state("system-series", CFG) is None

    def test_one_state_per_scope(self, store):
        store.store_state("system-series", CFG, {"rows": 10})
        store.store_state("system-series", CFG, {"rows": 20})
        assert store.load_state("system-series", CFG) == {"rows": 20}
        assert len([e for e in store.entries() if e.kind == "state"]) == 1


class TestEnablement:
    def test_env_gate_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SECTION_CACHE_ENV, "0")
        store = SectionMemoStore(root=tmp_path)
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        assert store.load_rows(key) is None
        assert list(tmp_path.iterdir()) == []

    def test_explicit_enabled_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(SECTION_CACHE_ENV, "0")
        store = SectionMemoStore(root=tmp_path, enabled=True)
        key = store.key(ROOT, "fig2_rows", CFG)
        store.store_rows(key, _rows())
        assert store.load_rows(key) == _rows()

    def test_default_store_is_a_singleton(self):
        reset_default_store()
        try:
            assert default_store() is default_store()
        finally:
            reset_default_store()

    def test_default_root_under_cache_root(self, tmp_path, monkeypatch):
        from repro.simulation.datasets import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert SectionMemoStore().root == tmp_path / "sections"


class TestMaintenance:
    def test_entries_describe_files(self, store):
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        store.store_state("system-series", CFG, {"rows": 10})
        entries = store.entries()
        assert {(e.section, e.kind) for e in entries} == {
            ("fig2_rows", "rows"),
            ("system-series", "state"),
        }
        for entry in entries:
            assert entry.size_bytes > 0
            assert entry.age_s >= 0.0
            assert entry.path.exists()
        assert store.total_bytes() == sum(e.size_bytes for e in entries)

    def test_clear_removes_everything(self, store, tmp_path):
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        store.store_state("system-series", CFG, {"rows": 10})
        (tmp_path / ".tmp-stale").write_bytes(b"x")
        assert store.clear() == 2
        assert store.entries() == []
        assert not (tmp_path / ".tmp-stale").exists()

    def test_clear_on_missing_root(self, tmp_path):
        store = SectionMemoStore(root=tmp_path / "never-created", enabled=True)
        assert store.clear() == 0
        assert store.entries() == []

    def test_dataset_cache_ignores_section_files(self, tmp_path, monkeypatch):
        """The sections/ subtree must be invisible to the dataset cache."""
        from repro.simulation.datasets import CACHE_DIR_ENV, cache_entries, clear_cache

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        store = SectionMemoStore(enabled=True)
        store.store_rows(store.key(ROOT, "fig2_rows", CFG), _rows())
        assert cache_entries() == []
        clear_cache()
        assert store.load_rows(store.key(ROOT, "fig2_rows", CFG)) == _rows()
