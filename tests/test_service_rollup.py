"""RollupStore: streaming/batch equivalence and version tracking.

The central contract: at the finest resolution (300 s divides every
simulator cadence) each sample lands in its own bucket, so rollup
accumulators reproduce the offline database aggregates *exactly* —
including on faulted telemetry where quality masks drive coverage.
"""

import numpy as np
import pytest

from repro.service import (
    DEFAULT_RESOLUTIONS_S,
    ReplayBus,
    RollupStore,
    RollupSubscriber,
)
from repro.telemetry.records import Channel, Quality

_RACKS = 4


def _synthetic_rows(n, dt_s=300.0, start=0.0, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        values = rng.normal(50.0, 5.0, _RACKS)
        if i % 5 == 0:
            values[i % _RACKS] = np.nan
        flags = np.where(
            np.isfinite(values), int(Quality.OK), int(Quality.MISSING)
        ).astype(np.uint8)
        if i % 7 == 0:
            flags[(i + 1) % _RACKS] = int(Quality.SCRUBBED)
        rows.append(
            (start + i * dt_s, {Channel.POWER: values}, {Channel.POWER: flags})
        )
    return rows


@pytest.fixture(scope="module")
def faulted_store(faulted_result):
    return RollupStore.from_database(faulted_result.database)


class TestRawLevelEquivalence:
    """One sample per finest bucket => accumulators are sample-exact."""

    def test_one_bucket_per_sample(self, faulted_result, faulted_store):
        counts = faulted_store.bucket_counts()
        assert counts[300.0] == faulted_result.database.num_samples

    @pytest.mark.parametrize(
        "channel", [Channel.POWER, Channel.FLOW, Channel.INLET_TEMPERATURE]
    )
    def test_accumulators_match_database_cells(
        self, faulted_result, faulted_store, channel
    ):
        db = faulted_result.database
        window = faulted_store.window(300.0, channel, -np.inf, np.inf)
        values = db.channel(channel).values
        flags = db.quality(channel)
        finite = np.isfinite(values)

        np.testing.assert_array_equal(window.samples, np.ones(len(values)))
        np.testing.assert_array_equal(window.count, finite.astype(np.int64))
        usable = (flags == int(Quality.OK)) | (flags == int(Quality.SUSPECT))
        np.testing.assert_array_equal(window.usable, usable.astype(np.int64))
        np.testing.assert_allclose(
            window.total, np.where(finite, values, 0.0), rtol=1e-9, atol=0.0
        )
        # Single-sample buckets: min == max == the cell itself.
        np.testing.assert_allclose(
            window.minimum, np.where(finite, values, np.nan), rtol=1e-9
        )
        np.testing.assert_allclose(
            window.maximum, np.where(finite, values, np.nan), rtol=1e-9
        )

    def test_bucket_epochs_are_the_sample_epochs(
        self, faulted_result, faulted_store
    ):
        window = faulted_store.window(300.0, Channel.POWER, -np.inf, np.inf)
        np.testing.assert_allclose(
            window.epoch, faulted_result.database.epoch_s, rtol=0, atol=0
        )


class TestHourlyLevel:
    def test_hourly_mean_matches_offline_grouping(self, faulted_result):
        db = faulted_result.database
        store = RollupStore.from_database(db)
        values = db.channel(Channel.POWER).values
        n = db.num_samples
        assert n % 2 == 0  # 1800 s cadence: exactly two samples/hour
        window = store.window(3600.0, Channel.POWER, -np.inf, np.inf)
        assert len(window.epoch) == n // 2

        pairs = values.reshape(n // 2, 2, db.num_racks)
        finite = np.isfinite(pairs)
        counts = finite.sum(axis=1)
        totals = np.where(finite, pairs, 0.0).sum(axis=1)
        np.testing.assert_array_equal(window.count, counts)
        np.testing.assert_allclose(window.total, totals, rtol=1e-9, atol=1e-12)
        streamed_mean = np.divide(
            window.total,
            window.count,
            out=np.full_like(window.total, np.nan),
            where=window.count > 0,
        )
        offline_mean = np.divide(
            totals, counts, out=np.full_like(totals, np.nan), where=counts > 0
        )
        np.testing.assert_allclose(
            streamed_mean, offline_mean, rtol=1e-9, equal_nan=True
        )


class TestStreamingMatchesBatch:
    def test_bus_fed_store_equals_offline_construction(self, faulted_result):
        db = faulted_result.database
        start = faulted_result.start_epoch_s
        end = start + 10 * 86_400.0

        offline = RollupStore(num_racks=db.num_racks)
        offline.ingest_database(db, start, end)

        streamed = RollupStore(num_racks=db.num_racks)
        bus = ReplayBus(db, start_epoch_s=start, end_epoch_s=end)
        bus.subscribe("rollups", RollupSubscriber(streamed), policy="block")
        report = bus.run()
        assert report.published == streamed.ingested_rows > 0

        for resolution in DEFAULT_RESOLUTIONS_S:
            a = offline.window(resolution, Channel.POWER, -np.inf, np.inf)
            b = streamed.window(resolution, Channel.POWER, -np.inf, np.inf)
            np.testing.assert_array_equal(a.epoch, b.epoch)
            np.testing.assert_array_equal(a.samples, b.samples)
            np.testing.assert_array_equal(a.count, b.count)
            np.testing.assert_array_equal(a.usable, b.usable)
            np.testing.assert_allclose(a.total, b.total, rtol=0, atol=0)
            np.testing.assert_allclose(
                a.minimum, b.minimum, rtol=0, atol=0, equal_nan=True
            )
            np.testing.assert_allclose(
                a.maximum, b.maximum, rtol=0, atol=0, equal_nan=True
            )

    def test_out_of_order_ingest_matches_in_order(self):
        rows = _synthetic_rows(48)
        in_order = RollupStore(num_racks=_RACKS)
        for epoch, values, quality in rows:
            in_order.add(epoch, values, quality)
        shuffled = RollupStore(num_racks=_RACKS)
        order = np.random.default_rng(9).permutation(len(rows))
        for index in order:
            epoch, values, quality = rows[index]
            shuffled.add(epoch, values, quality)
        for resolution in DEFAULT_RESOLUTIONS_S:
            a = in_order.window(resolution, Channel.POWER, -np.inf, np.inf)
            b = shuffled.window(resolution, Channel.POWER, -np.inf, np.inf)
            np.testing.assert_array_equal(a.epoch, b.epoch)
            np.testing.assert_array_equal(a.count, b.count)
            np.testing.assert_allclose(a.total, b.total, rtol=1e-12)
            np.testing.assert_allclose(
                a.minimum, b.minimum, rtol=0, equal_nan=True
            )


class TestVersioning:
    def test_version_bumps_per_ingest(self):
        store = RollupStore(num_racks=_RACKS)
        assert store.version == 0
        for i, (epoch, values, quality) in enumerate(_synthetic_rows(5)):
            store.add(epoch, values, quality)
            assert store.version == i + 1

    def test_earliest_mutation_since(self):
        store = RollupStore(num_racks=_RACKS)
        assert store.earliest_mutation_since(0) == np.inf
        store.add(1200.0, {Channel.POWER: np.ones(_RACKS)}, None)
        store.add(600.0, {Channel.POWER: np.ones(_RACKS)}, None)
        assert store.earliest_mutation_since(0) == 600.0
        assert store.earliest_mutation_since(1) == 600.0
        assert store.earliest_mutation_since(2) == np.inf
        store.add(1800.0, {Channel.POWER: np.ones(_RACKS)}, None)
        assert store.earliest_mutation_since(2) == 1800.0

    def test_truncated_history_reports_everything_stale(self):
        store = RollupStore(num_racks=_RACKS)
        for epoch, values, quality in _synthetic_rows(5):
            store.add(epoch, values, quality)
        store._mutations.popleft()  # simulate a deeper-than-history gap
        assert store.earliest_mutation_since(0) == -np.inf
        # Recent versions are still resolvable from what remains.
        assert store.earliest_mutation_since(store.version) == np.inf


class TestQuerySurface:
    def test_snap_resolution_prefers_coarsest_tiling(self):
        store = RollupStore(num_racks=_RACKS)
        day = 86_400.0
        assert store.snap_resolution(0.0, 7 * day) == day
        assert store.snap_resolution(0.0, 6 * 3600.0) == 3600.0
        assert store.snap_resolution(150.0, 3600.0) == 300.0

    def test_empty_window_returns_zero_length(self):
        store = RollupStore(num_racks=_RACKS)
        window = store.window(300.0, Channel.POWER, 0.0, 3600.0)
        assert window.epoch.size == 0
        assert window.total.shape == (0, _RACKS)

    def test_unknown_resolution_raises(self):
        store = RollupStore(num_racks=_RACKS)
        with pytest.raises(KeyError):
            store.window(123.0, Channel.POWER, 0.0, 1.0)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RollupStore(num_racks=0)
        with pytest.raises(ValueError):
            RollupStore(num_racks=4, resolutions_s=())
        with pytest.raises(ValueError):
            RollupStore(num_racks=4, resolutions_s=(3600.0, 300.0))
        with pytest.raises(ValueError):
            RollupStore(num_racks=4, resolutions_s=(300.0, 300.0))

    def test_growth_beyond_initial_capacity(self):
        store = RollupStore(num_racks=_RACKS, resolutions_s=(300.0,))
        rows = _synthetic_rows(200)  # > the initial 64-bucket capacity
        for epoch, values, quality in rows:
            store.add(epoch, values, quality)
        window = store.window(300.0, Channel.POWER, -np.inf, np.inf)
        assert len(window.epoch) == 200
        expected = np.array([row[1][Channel.POWER] for row in rows])
        finite = np.isfinite(expected)
        np.testing.assert_allclose(
            window.total, np.where(finite, expected, 0.0), rtol=1e-12
        )
