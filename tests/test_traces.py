"""SWF trace export, parsing, and replay."""

import datetime as dt

import numpy as np
import pytest

from repro import timeutil
from repro.scheduler.jobs import Job
from repro.scheduler.queues import QueueName
from repro.scheduler.scheduler import MaintenancePolicy, MiraScheduler, ReservationPolicy
from repro.scheduler.traces import TraceJob, TraceWorkload, export_swf, load_swf
from repro.scheduler.workload import WorkloadGenerator

START = dt.datetime(2015, 3, 3)


def _completed_jobs(hours=24 * 7, seed=3):
    generator = WorkloadGenerator(rng=np.random.default_rng(seed))
    scheduler = MiraScheduler(
        generator,
        rng=np.random.default_rng(seed + 1),
        maintenance=MaintenancePolicy(probability=0.0),
        reservations=ReservationPolicy(rate_per_day=0.0),
    )
    epoch = timeutil.to_epoch(START)
    collected = []
    seen = set()
    for i in range(hours):
        scheduler.step(epoch + i * 3600.0, 3600.0)
        for job in scheduler.running_jobs:
            if job.job_id not in seen:
                seen.add(job.job_id)
                collected.append(job)
    return collected, epoch


class TestExportAndLoad:
    def test_roundtrip_counts(self, tmp_path):
        jobs, epoch = _completed_jobs()
        path = tmp_path / "mira.swf"
        written = export_swf(jobs, path, reference_epoch_s=epoch)
        assert written == len(jobs)
        trace = load_swf(path)
        assert len(trace) == written

    def test_fields_preserved(self, tmp_path):
        jobs, epoch = _completed_jobs(hours=48)
        path = tmp_path / "mira.swf"
        export_swf(jobs, path, reference_epoch_s=epoch)
        trace = {t.job_id: t for t in load_swf(path)}
        for job in jobs:
            record = trace[job.job_id]
            assert record.num_nodes == job.nodes
            assert record.midplanes == job.midplanes
            assert record.queue is job.queue
            assert record.submit_offset_s == pytest.approx(
                job.submit_epoch_s - epoch, abs=1.0
            )

    def test_trace_sorted_by_submit(self, tmp_path):
        jobs, epoch = _completed_jobs()
        path = tmp_path / "mira.swf"
        export_swf(jobs, path, reference_epoch_s=epoch)
        trace = load_swf(path)
        offsets = [t.submit_offset_s for t in trace]
        assert offsets == sorted(offsets)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "toy.swf"
        path.write_text(
            "; header comment\n"
            "\n"
            "1 0 10 3600 512 -1 -1 512 3600 -1 1 -1 -1 -1 1 -1 -1 -1\n"
        )
        trace = load_swf(path)
        assert len(trace) == 1
        assert trace[0].midplanes == 1

    def test_cancelled_records_skipped(self, tmp_path):
        path = tmp_path / "toy.swf"
        path.write_text(
            "1 0 10 -1 512 -1 -1 512 3600 -1 0 -1 -1 -1 1 -1 -1 -1\n"
            "2 5 10 3600 1024 -1 -1 1024 3600 -1 1 -1 -1 -1 2 -1 -1 -1\n"
        )
        trace = load_swf(path)
        assert [t.job_id for t in trace] == [2]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            load_swf(path)


class TestReplay:
    def test_replay_reproduces_utilization(self, tmp_path):
        jobs, epoch = _completed_jobs(hours=24 * 7)
        path = tmp_path / "mira.swf"
        export_swf(jobs, path, reference_epoch_s=epoch)
        trace = load_swf(path)

        replay = MiraScheduler(
            TraceWorkload(trace, start_epoch_s=epoch),
            rng=np.random.default_rng(99),
            maintenance=MaintenancePolicy(probability=0.0),
            reservations=ReservationPolicy(rate_per_day=0.0),
        )
        utils = []
        for i in range(24 * 7):
            state = replay.step(epoch + i * 3600.0, 3600.0)
            utils.append(state.system_utilization)
        # The second half (post warm-up) should run at a production-like
        # utilization comparable to the original synthetic run.
        assert float(np.mean(utils[48:])) > 0.5

    def test_replay_exhausts_trace(self, tmp_path):
        jobs, epoch = _completed_jobs(hours=48)
        path = tmp_path / "mira.swf"
        export_swf(jobs, path, reference_epoch_s=epoch)
        workload = TraceWorkload(load_swf(path), start_epoch_s=epoch)
        scheduler = MiraScheduler(
            workload,
            rng=np.random.default_rng(1),
            maintenance=MaintenancePolicy(probability=0.0),
            reservations=ReservationPolicy(rate_per_day=0.0),
        )
        for i in range(72):
            scheduler.step(epoch + i * 3600.0, 3600.0)
        assert workload.remaining == 0

    def test_oversized_jobs_clamped(self):
        trace = [TraceJob(1, 0.0, 3600.0, 100_000, 2)]
        workload = TraceWorkload(trace, start_epoch_s=0.0)
        arrivals = workload.arrivals(0.0, 3600.0)
        assert arrivals[0].midplanes == 96

    def test_bad_dt_rejected(self):
        workload = TraceWorkload([], start_epoch_s=0.0)
        with pytest.raises(ValueError):
            workload.arrivals(0.0, 0.0)
