"""Batched feature extraction and the parallel lead sweep.

The contract under test: :func:`batch_change_features` reproduces the
per-window :func:`window_features` reference bit-for-bit (including
NaN propagation through faulted windows), and ``sweep_leads`` /
``tune_architecture`` return identical results for any worker count.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.prediction import (
    FEATURE_LAGS_H,
    batch_change_features,
    batch_level_features,
    build_dataset,
    build_datasets,
    stack_windows,
    sweep_leads,
    tune_architecture,
    window_features,
    window_level_features,
)
from repro.facility.topology import RackId
from repro.ml.crossval import stratified_k_fold
from repro.ml.train import three_way_split
from repro.simulation.windows import LeadupWindow
from repro.telemetry.records import PREDICTOR_CHANNELS

LEADS = (6.0, 3.0, 1.0, 0.5)


def synthetic_windows(n_pos, n_neg, seed=0, history_h=12.5, dt_s=300.0):
    """Deterministic lead-up windows with a precursor-like ramp on positives."""
    rng = np.random.default_rng(seed)
    count = int(round(history_h * 3600.0 / dt_s))
    windows = []
    for i in range(n_pos + n_neg):
        positive = i < n_pos
        end = 1.6e9 + i * 7211.0
        grid = end - dt_s * np.arange(count, -1, -1, dtype="float64")
        rel = grid - end
        channels = {}
        for c, channel in enumerate(PREDICTOR_CHANNELS):
            base = 40.0 + 11.0 * c
            series = (
                base
                + rng.normal(0.0, 0.4, grid.shape)
                + rng.normal(0.0, 0.05) * rel / 3600.0
            )
            if positive:
                series = series * (1.0 + 0.1 * np.exp(rel / 7200.0))
            channels[channel] = series
        windows.append(
            LeadupWindow(
                rack_id=RackId.from_flat_index(i % 48),
                end_epoch_s=end,
                epoch_s=grid,
                channels=channels,
                is_positive=positive,
            )
        )
    return windows[:n_pos], windows[n_pos:]


@pytest.fixture(scope="module")
def windows():
    return synthetic_windows(24, 24)


class TestBatchMatchesPerWindow:
    def test_change_features_match_to_1e12(self, windows):
        positives, negatives = windows
        all_windows = positives + negatives
        batch = batch_change_features(all_windows, LEADS)
        reference = np.stack(
            [[window_features(w, lead) for w in all_windows] for lead in LEADS]
        )
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)

    def test_level_features_match(self, windows):
        positives, _ = windows
        batch = batch_level_features(positives, LEADS)
        reference = np.stack(
            [[window_level_features(w, lead) for w in positives] for lead in LEADS]
        )
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)

    def test_real_synthesizer_windows_match(self, year_windows):
        """The acceptance check on a real (simulated) demo dataset."""
        positives, negatives = year_windows
        sample = positives[:10] + negatives[:10]
        batch = batch_change_features(sample, LEADS)
        reference = np.stack(
            [[window_features(w, lead) for w in sample] for lead in LEADS]
        )
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)

    def test_too_long_lead_raises_like_reference(self, windows):
        positives, _ = windows
        with pytest.raises(ValueError, match="window too short"):
            batch_change_features(positives, (10.0,))

    def test_mixed_geometry_falls_back(self, windows):
        positives, _ = windows
        short = synthetic_windows(1, 1, seed=9, history_h=8.0)[0][0]
        mixed = positives[:3] + [short]
        assert stack_windows(mixed) is None
        batch = batch_change_features(mixed, (1.0,))
        reference = np.stack([[window_features(w, 1.0) for w in mixed]])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)


class TestDegenerateDatasets:
    def test_window_exactly_at_minimum_lookback(self):
        """A window of exactly lead + max(lag) hours is usable, no shorter."""
        lead = 1.0
        exact_h = lead + max(FEATURE_LAGS_H)
        pos, neg = synthetic_windows(2, 2, seed=3, history_h=exact_h)
        batch = batch_change_features(pos + neg, (lead,))
        reference = np.stack([[window_features(w, lead) for w in pos + neg]])
        np.testing.assert_allclose(batch, reference, rtol=1e-12, atol=1e-12)
        with pytest.raises(ValueError, match="window too short"):
            batch_change_features(pos + neg, (lead + 0.5,))
        with pytest.raises(ValueError, match="window too short"):
            window_features(pos[0], lead + 0.5)

    def test_nan_holed_windows_flow_through(self, windows):
        """Faulted (NaN-holed) windows yield NaN rows, same as per-window."""
        positives, negatives = windows
        holed = list(positives)
        channel = PREDICTOR_CHANNELS[0]
        channels = dict(holed[2].channels)
        values = channels[channel].copy()
        values[-30:-20] = np.nan  # hole covering the 1 h-lag query point
        channels[channel] = values
        holed[2] = dataclasses.replace(holed[2], channels=channels)
        batch = batch_change_features(holed, (1.0,))
        reference = np.stack([[window_features(w, 1.0) for w in holed]])
        assert (np.isnan(batch) == np.isnan(reference)).all()
        np.testing.assert_allclose(
            batch, reference, rtol=1e-12, atol=1e-12, equal_nan=True
        )
        assert np.isnan(batch[0, 2]).any()

        datasets = build_datasets(holed, negatives, (1.0,))
        assert not datasets[0].finite_mask()[2]
        assert datasets[0].finite_mask().sum() == len(holed) + len(negatives) - 1

    def test_drop_nonfinite_removes_quality_masked_rows(self, windows):
        positives, negatives = windows
        holed = list(positives)
        channels = dict(holed[0].channels)
        channels[PREDICTOR_CHANNELS[1]] = np.full_like(
            channels[PREDICTOR_CHANNELS[1]], np.nan
        )
        holed[0] = dataclasses.replace(holed[0], channels=channels)
        dataset = build_dataset(holed, negatives, 1.0, drop_nonfinite=True)
        assert dataset.positives == len(positives) - 1
        assert dataset.negatives == len(negatives)
        assert np.isfinite(dataset.features).all()

    def test_drop_nonfinite_emptying_a_class_raises(self, windows):
        positives, negatives = windows
        ruined = []
        for window in positives:
            channels = {
                ch: np.full_like(v, np.nan) for ch, v in window.channels.items()
            }
            ruined.append(dataclasses.replace(window, channels=channels))
        with pytest.raises(ValueError, match="emptied a class"):
            build_dataset(ruined, negatives, 1.0, drop_nonfinite=True)

    def test_single_class_labels_still_partition(self):
        """Splitters handle a single-class label vector without crashing."""
        y = np.zeros(20, dtype=int)
        folds = stratified_k_fold(y, 4, np.random.default_rng(0))
        assert sum(len(test) for _, test in folds) == 20
        x = np.arange(40.0).reshape(20, 2)
        (xt, yt), (xs, ys), (xv, yv) = three_way_split(
            x, y, np.random.default_rng(0)
        )
        assert len(yt) + len(ys) + len(yv) == 20
        assert set(np.unique(np.concatenate([yt, ys, yv]))) == {0}

    def test_explicit_generator_required(self):
        with pytest.raises(TypeError, match="Generator"):
            stratified_k_fold(np.tile([0, 1], 10), 2, 1234)
        with pytest.raises(TypeError, match="Generator"):
            three_way_split(np.ones((10, 2)), np.tile([0, 1], 5), 1234)


class TestWorkerDeterminism:
    def test_sweep_bit_identical_across_worker_counts(self, windows):
        positives, negatives = windows
        kwargs = dict(leads_h=(1.0, 0.5), epochs=6, folds=3, seed=11)
        serial = sweep_leads(positives, negatives, workers=1, **kwargs)
        parallel = sweep_leads(positives, negatives, workers=4, **kwargs)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.lead_h == b.lead_h
            # Dataclass equality on the float fields: bit-identical.
            assert a.cross_validation == b.cross_validation

    def test_tune_bit_identical_across_worker_counts(self, windows):
        positives, negatives = windows
        dataset = build_dataset(positives, negatives, 1.0)
        grid = [(8, 6, 4), (6, 6, 4), (12, 8, 6), (8, 8, 6), (6, 4, 4)]
        serial = tune_architecture(
            dataset, candidates=grid, budget=5, epochs=5, workers=1
        )
        parallel = tune_architecture(
            dataset, candidates=grid, budget=5, epochs=5, workers=3
        )
        assert serial == parallel

    def test_evaluation_matches_legacy_serial_protocol(self, windows):
        """The fan-out reproduces cross_validate's fold protocol exactly."""
        from repro.core.prediction import _nn_fit_predict
        from repro.ml.crossval import cross_validate

        positives, negatives = windows
        dataset = build_dataset(positives, negatives, 1.0)
        legacy = cross_validate(
            _nn_fit_predict((8, 6, 4), 6, 11),
            dataset.features,
            dataset.labels,
            k=3,
            rng=np.random.default_rng(11),
        )
        swept = sweep_leads(
            positives,
            negatives,
            leads_h=(1.0,),
            hidden=(8, 6, 4),
            epochs=6,
            folds=3,
            seed=11,
            workers=1,
        )
        assert swept[0].cross_validation == legacy
