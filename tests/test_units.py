"""Unit-conversion and heat-balance arithmetic."""

import math

import pytest

from repro import units


class TestTemperatureConversions:
    def test_freezing_point(self):
        assert units.fahrenheit_to_celsius(32.0) == pytest.approx(0.0)
        assert units.celsius_to_fahrenheit(0.0) == pytest.approx(32.0)

    def test_boiling_point(self):
        assert units.fahrenheit_to_celsius(212.0) == pytest.approx(100.0)

    def test_minus_forty_fixed_point(self):
        assert units.fahrenheit_to_celsius(-40.0) == pytest.approx(-40.0)

    def test_roundtrip(self):
        for value in (-20.0, 0.0, 64.0, 79.0, 98.6):
            back = units.celsius_to_fahrenheit(units.fahrenheit_to_celsius(value))
            assert back == pytest.approx(value)

    def test_delta_conversion_has_no_offset(self):
        assert units.fahrenheit_delta_to_celsius(9.0) == pytest.approx(5.0)
        assert units.celsius_delta_to_fahrenheit(5.0) == pytest.approx(9.0)

    def test_delta_roundtrip(self):
        assert units.celsius_delta_to_fahrenheit(
            units.fahrenheit_delta_to_celsius(15.0)
        ) == pytest.approx(15.0)


class TestFlowConversions:
    def test_gpm_to_mass_flow(self):
        # 1 GPM of water is about 0.0629 kg/s.
        assert units.gpm_to_kg_per_s(1.0) == pytest.approx(0.0629, rel=1e-2)

    def test_roundtrip(self):
        assert units.kg_per_s_to_gpm(units.gpm_to_kg_per_s(26.0)) == pytest.approx(
            26.0
        )

    def test_mira_rack_flow_magnitude(self):
        # ~26 GPM is ~1.6 kg/s.
        assert units.gpm_to_kg_per_s(26.0) == pytest.approx(1.636, rel=1e-2)


class TestHeatBalance:
    def test_temperature_rise_scales_with_heat(self):
        rise1 = units.coolant_temperature_rise_f(25.0, 26.0)
        rise2 = units.coolant_temperature_rise_f(50.0, 26.0)
        assert rise2 == pytest.approx(2.0 * rise1)

    def test_temperature_rise_inverse_with_flow(self):
        rise1 = units.coolant_temperature_rise_f(50.0, 26.0)
        rise2 = units.coolant_temperature_rise_f(50.0, 52.0)
        assert rise1 == pytest.approx(2.0 * rise2)

    def test_mira_operating_point(self):
        # ~55 kW per rack at ~26 GPM gives the paper's ~15 F rise.
        rise = units.coolant_temperature_rise_f(55.0, 26.0)
        assert 13.0 < rise < 16.5

    def test_zero_flow_rejected(self):
        with pytest.raises(ValueError):
            units.coolant_temperature_rise_f(10.0, 0.0)

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            units.coolant_temperature_rise_f(10.0, -5.0)

    def test_heat_absorbed_inverts_rise(self):
        heat = 48.0
        rise = units.coolant_temperature_rise_f(heat, 26.0)
        assert units.heat_absorbed_kw(rise, 26.0) == pytest.approx(heat)

    def test_tons_to_kw(self):
        assert units.tons_to_kw(1.0) == pytest.approx(3.517, rel=1e-3)
        # The plant: two 1,500-ton towers ~ 10.5 MW of heat rejection.
        assert units.tons_to_kw(3000.0) == pytest.approx(10_550, rel=1e-2)


class TestDewpoint:
    def test_saturated_air(self):
        # At 100 % RH the dewpoint equals the temperature.
        assert units.dewpoint_c(25.0, 100.0) == pytest.approx(25.0, abs=0.01)

    def test_dewpoint_below_temperature(self):
        assert units.dewpoint_c(25.0, 50.0) < 25.0

    def test_dewpoint_monotone_in_humidity(self):
        d30 = units.dewpoint_c(25.0, 30.0)
        d60 = units.dewpoint_c(25.0, 60.0)
        d90 = units.dewpoint_c(25.0, 90.0)
        assert d30 < d60 < d90

    def test_known_value(self):
        # 20 C at 50 % RH has a dewpoint near 9.3 C.
        assert units.dewpoint_c(20.0, 50.0) == pytest.approx(9.27, abs=0.2)

    def test_fahrenheit_wrapper(self):
        dew_f = units.dewpoint_f(80.0, 33.0)
        dew_c = units.dewpoint_c(units.fahrenheit_to_celsius(80.0), 33.0)
        assert dew_f == pytest.approx(units.celsius_to_fahrenheit(dew_c))

    def test_datacenter_margin_is_comfortable(self):
        # Typical Mira conditions: 80 F air at 33 %RH -> dewpoint in
        # the high 40s F, well below the 64 F coolant.
        dew = units.dewpoint_f(80.0, 33.0)
        assert 40.0 < dew < 55.0

    @pytest.mark.parametrize("bad_rh", [0.0, -5.0, 101.0, 150.0])
    def test_invalid_humidity_rejected(self, bad_rh):
        with pytest.raises(ValueError):
            units.dewpoint_c(25.0, bad_rh)

    def test_saturation_vapor_pressure_at_zero(self):
        assert units.saturation_vapor_pressure_hpa(0.0) == pytest.approx(
            6.112, rel=1e-3
        )

    def test_saturation_vapor_pressure_monotone(self):
        temps = [-10.0, 0.0, 10.0, 20.0, 30.0]
        pressures = [units.saturation_vapor_pressure_hpa(t) for t in temps]
        assert pressures == sorted(pressures)
