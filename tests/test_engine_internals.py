"""Engine internals: Theta ramp, excursions, fine-cadence consistency."""

import datetime as dt

import numpy as np
import pytest

from repro import constants, timeutil
from repro.simulation.config import SimulationConfig, ThetaConfig
from repro.simulation.engine import FacilityEngine
from repro.simulation.scenarios import MiraScenario
from repro.telemetry.records import Channel


class TestThetaExcess:
    @pytest.fixture
    def engine(self):
        return FacilityEngine(MiraScenario.demo(days=5, seed=1))

    def test_zero_before_addition(self, engine):
        before = timeutil.to_epoch(dt.datetime(2016, 5, 1))
        assert engine._theta_supply_excess_f(before) == 0.0

    def test_peak_during_testing(self, engine):
        mid = timeutil.to_epoch(dt.datetime(2016, 10, 1))
        assert engine._theta_supply_excess_f(mid) == pytest.approx(
            engine.config.theta.heat_excess_f
        )

    def test_ramps_in(self, engine):
        added = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        ramp_s = engine.config.theta.ramp_days * timeutil.DAY_S
        halfway = engine._theta_supply_excess_f(added + ramp_s / 2)
        assert halfway == pytest.approx(engine.config.theta.heat_excess_f / 2, rel=0.05)

    def test_decays_after_settled(self, engine):
        settled = timeutil.to_epoch(constants.THETA_SETTLED_DATE)
        ramp_s = engine.config.theta.ramp_days * timeutil.DAY_S
        assert engine._theta_supply_excess_f(settled + 2 * ramp_s) == 0.0
        partway = engine._theta_supply_excess_f(settled + ramp_s / 2)
        assert 0.0 < partway < engine.config.theta.heat_excess_f


class TestExcursions:
    def test_excursions_generated_at_configured_rate(self):
        engine = FacilityEngine(MiraScenario.demo(days=365, seed=9))
        rate = engine.config.ambient.excursion_rate_per_year
        assert 0 < len(engine._excursions) < 4 * rate

    def test_excursion_delta_active_only_inside_window(self):
        engine = FacilityEngine(MiraScenario.demo(days=365, seed=9))
        excursion = engine._excursions[0]
        inside = engine._excursion_delta_f(
            (excursion.start_epoch_s + excursion.end_epoch_s) / 2
        )
        outside = engine._excursion_delta_f(excursion.start_epoch_s - 1.0)
        assert inside >= excursion.magnitude_f
        assert outside < inside

    def test_excursions_sorted(self):
        engine = FacilityEngine(MiraScenario.demo(days=365, seed=9))
        starts = [e.start_epoch_s for e in engine._excursions]
        assert starts == sorted(starts)


class TestFineCadence:
    def test_300s_run_statistically_matches_hourly(self):
        """The monitor's native cadence and the hourly default agree."""
        start = dt.datetime(2015, 5, 4)
        coarse = FacilityEngine(
            SimulationConfig(
                start=start,
                end=start + dt.timedelta(days=4),
                dt_s=3600.0,
                seed=21,
                inject_failures=False,
            )
        ).run()
        fine = FacilityEngine(
            SimulationConfig(
                start=start,
                end=start + dt.timedelta(days=4),
                dt_s=300.0,
                seed=21,
                inject_failures=False,
            )
        ).run()
        assert fine.database.num_samples == 12 * coarse.database.num_samples
        for channel in (Channel.INLET_TEMPERATURE, Channel.FLOW):
            coarse_mean = coarse.database.channel(channel).overall_mean()
            fine_mean = fine.database.channel(channel).overall_mean()
            assert fine_mean == pytest.approx(coarse_mean, rel=0.02)
        coarse_power = coarse.database.system_power_mw().overall_mean()
        fine_power = fine.database.system_power_mw().overall_mean()
        assert fine_power == pytest.approx(coarse_power, rel=0.08)


class TestConfigSurface:
    def test_theta_config_immutable(self):
        theta = ThetaConfig()
        with pytest.raises(Exception):
            theta.heat_excess_f = 5.0

    def test_custom_theta_config_respected(self):
        config = SimulationConfig(
            start=dt.datetime(2016, 6, 1),
            end=dt.datetime(2016, 6, 10),
            theta=ThetaConfig(heat_excess_f=4.0),
            inject_failures=False,
        )
        engine = FacilityEngine(config)
        peak = timeutil.to_epoch(dt.datetime(2016, 10, 1))
        assert engine._theta_supply_excess_f(peak) == pytest.approx(4.0)


class TestThetaCounterfactual:
    """What the facility looks like if Theta never joins the loop."""

    @pytest.fixture(scope="class")
    def counterfactual(self):
        config = SimulationConfig(
            start=dt.datetime(2016, 5, 1),
            end=dt.datetime(2016, 10, 1),
            seed=77,
            theta=ThetaConfig(enabled=False),
            inject_failures=False,
        )
        return FacilityEngine(config).run()

    @pytest.fixture(scope="class")
    def factual(self):
        config = SimulationConfig(
            start=dt.datetime(2016, 5, 1),
            end=dt.datetime(2016, 10, 1),
            seed=77,
            inject_failures=False,
        )
        return FacilityEngine(config).run()

    def test_no_flow_step(self, counterfactual):
        flow = counterfactual.database.total_flow_gpm()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        after = np.nanmean(flow.values[flow.epoch_s > theta + 30 * 86_400])
        assert after == pytest.approx(constants.FLOW_PRE_THETA_GPM, rel=0.02)

    def test_factual_has_flow_step(self, factual):
        flow = factual.database.total_flow_gpm()
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        after = np.nanmean(flow.values[flow.epoch_s > theta + 30 * 86_400])
        assert after == pytest.approx(constants.FLOW_POST_THETA_GPM, rel=0.02)

    def test_no_inlet_bump(self, counterfactual, factual):
        theta = timeutil.to_epoch(constants.THETA_ADDITION_DATE)
        def bump(result):
            inlet = result.database.channel(Channel.INLET_TEMPERATURE).across_racks()
            during = np.nanmean(inlet.values[inlet.epoch_s > theta + 30 * 86_400])
            before = np.nanmean(inlet.values[inlet.epoch_s < theta - 10 * 86_400])
            return during - before
        assert bump(factual) > bump(counterfactual) + 1.0
