"""Paper-vs-measured reporting helpers."""

import numpy as np
import pytest

from repro.core.report import ReportRow, format_table, format_value, sparkline


class TestReportRow:
    def test_relative_error(self):
        row = ReportRow("Fig 2", "power", paper_value=2.9, measured_value=2.87)
        assert row.relative_error == pytest.approx(0.03 / 2.9)

    def test_zero_paper_value(self):
        row = ReportRow("Fig X", "x", paper_value=0.0, measured_value=0.0)
        assert row.relative_error == 0.0
        row2 = ReportRow("Fig X", "x", paper_value=0.0, measured_value=1.0)
        assert row2.relative_error == float("inf")

    def test_formatted_contains_values(self):
        row = ReportRow("Fig 3", "flow", 1250.0, 1248.5, unit="GPM")
        text = row.formatted()
        assert "Fig 3" in text
        assert "1250" in text
        assert "GPM" in text


class TestFormatTable:
    def test_table_structure(self):
        rows = [
            ReportRow("Fig 2", "power start", 2.5, 2.53, "MW"),
            ReportRow("Fig 2", "power end", 2.9, 2.87, "MW"),
        ]
        table = format_table(rows, title="Fig 2")
        lines = table.splitlines()
        assert lines[0] == "Fig 2"
        assert sum("paper=" in line for line in lines) == 2


class TestSparkline:
    def test_length_capped(self):
        line = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert 0 < len(line) <= 40

    def test_constant_series(self):
        line = sparkline([3.0, 3.0, 3.0])
        assert len(set(line)) == 1

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_monotone_series_rises(self):
        line = sparkline(np.linspace(0, 1, 30), width=30)
        assert line[0] != line[-1]


class TestNanRendering:
    """Satellite: NaN measurements render as ``n/a``, never ``nan``."""

    def test_format_value_nan(self):
        assert format_value(float("nan")) == "n/a"
        assert format_value(1.23456) == "1.235"

    def test_relative_error_nan_measurement(self):
        row = ReportRow("Fig X", "empty-window metric", 2.0, float("nan"))
        assert np.isnan(row.relative_error)

    def test_relative_error_nan_paper_value(self):
        row = ReportRow("Fig X", "unreported metric", float("nan"), 2.0)
        assert np.isnan(row.relative_error)

    def test_format_table_shows_na(self):
        table = format_table(
            [ReportRow("Fig X", "empty-window metric", 2.0, float("nan"))]
        )
        assert "n/a" in table
        assert "nan" not in table

    def test_render_markdown_shows_na(self):
        from repro.core.experiments import render_markdown

        sections = {
            "Fig X": [ReportRow("Fig X", "empty", 2.0, float("nan"))]
        }
        text = render_markdown(sections)
        assert "| n/a |" in text
        assert "nan" not in text
