"""BPM and rack power models."""

import numpy as np
import pytest

from repro import constants
from repro.facility.power import (
    BulkPowerModule,
    RackPowerModel,
    expected_system_power_mw,
    system_power_mw,
)


class TestBulkPowerModule:
    def test_ac_draw_includes_conversion_loss(self):
        bpm = BulkPowerModule(conversion_efficiency=0.94, fan_power_kw=1.6)
        assert bpm.ac_draw_kw(47.0) == pytest.approx(47.0 / 0.94 + 1.6)

    def test_fans_draw_at_zero_load(self):
        bpm = BulkPowerModule()
        assert bpm.ac_draw_kw(0.0) == pytest.approx(bpm.fan_power_kw)

    def test_failed_bpm_delivers_nothing(self):
        bpm = BulkPowerModule()
        bpm.fail()
        assert bpm.ac_draw_kw(50.0) == 0.0
        assert not bpm.healthy

    def test_repair_restores(self):
        bpm = BulkPowerModule()
        bpm.fail()
        bpm.repair()
        assert bpm.healthy
        assert bpm.ac_draw_kw(50.0) > 0.0

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            BulkPowerModule().ac_draw_kw(-1.0)

    @pytest.mark.parametrize("efficiency", [0.0, -0.5, 1.5])
    def test_bad_efficiency_rejected(self, efficiency):
        with pytest.raises(ValueError):
            BulkPowerModule(conversion_efficiency=efficiency)


class TestRackPowerModel:
    def test_idle_floor(self):
        model = RackPowerModel()
        assert model.dc_load_kw(0.0) == pytest.approx(model.idle_kw)

    def test_monotone_in_utilization(self):
        model = RackPowerModel()
        loads = [model.dc_load_kw(u) for u in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert loads == sorted(loads)

    def test_intensity_scales_dynamic_term(self):
        model = RackPowerModel()
        low = model.dc_load_kw(0.8, intensity=0.5)
        high = model.dc_load_kw(0.8, intensity=1.5)
        assert high - model.idle_kw == pytest.approx(3.0 * (low - model.idle_kw))

    def test_temperature_excess_adds_leakage(self):
        model = RackPowerModel()
        cool = model.dc_load_kw(0.5, temperature_excess_f=0.0)
        hot = model.dc_load_kw(0.5, temperature_excess_f=10.0)
        assert hot == pytest.approx(cool + 10.0 * model.cooling_sensitivity_kw)

    def test_negative_excess_ignored(self):
        model = RackPowerModel()
        assert model.dc_load_kw(0.5, temperature_excess_f=-5.0) == pytest.approx(
            model.dc_load_kw(0.5)
        )

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError):
            RackPowerModel().dc_load_kw(1.1)
        with pytest.raises(ValueError):
            RackPowerModel().dc_load_kw(-0.1)

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError):
            RackPowerModel().dc_load_kw(0.5, intensity=-1.0)

    def test_vectorized_matches_scalar(self):
        model = RackPowerModel()
        util = np.array([0.2, 0.8, 1.0])
        intensity = np.array([1.0, 0.9, 1.2])
        eff = np.array([1.0, 1.05, 0.95])
        vector = model.dc_load_kw_vector(util, intensity, eff)
        for i in range(3):
            scalar_model = RackPowerModel(efficiency_factor=eff[i])
            assert vector[i] == pytest.approx(
                scalar_model.dc_load_kw(util[i], intensity[i])
            )


class TestSystemPower:
    def test_aggregation(self):
        draws = np.full(constants.NUM_RACKS, 55.0)
        assert system_power_mw(draws) == pytest.approx(48 * 55.0 / 1000.0)

    def test_calibration_2014(self):
        # ~80 % utilization at nominal intensity: ~2.5 MW (Fig 2a).
        power = expected_system_power_mw(0.80, intensity=0.97)
        assert 2.3 < power < 2.7

    def test_calibration_2019(self):
        # ~93 % utilization with intensity creep: ~2.9 MW (Fig 2a).
        power = expected_system_power_mw(0.93, intensity=1.09)
        assert 2.7 < power < 3.1

    def test_below_facility_ceiling(self):
        # Even flat out the machine stays under the 6 MW feed.
        power = expected_system_power_mw(1.0, intensity=2.0)
        assert power < constants.MAX_POWER_MW
