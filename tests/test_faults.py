"""The sensor fault injector: calibration, determinism, ground truth."""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.telemetry.database import EnvironmentalDatabase
from repro.telemetry.records import CHANNELS, Channel, Quality

DT_S = 300.0
N_SAMPLES = 3000
N_RACKS = 12


@pytest.fixture(scope="module")
def clean_db():
    rng = np.random.default_rng(11)
    db = EnvironmentalDatabase(num_racks=N_RACKS, capacity_hint=N_SAMPLES)
    t = np.arange(N_SAMPLES) * DT_S
    db.append_block(
        t, {ch: rng.normal(60.0, 1.0, (N_SAMPLES, N_RACKS)) for ch in CHANNELS}
    )
    db.compact()
    return db


@pytest.fixture(scope="module")
def faulted(clean_db):
    injector = FaultInjector(FaultConfig(), seed=99)
    events = [(1000 * DT_S, 2), (2500 * DT_S, 7)]
    return injector.apply(clean_db, DT_S, cmf_events=events)


class TestDeterminism:
    def test_bit_identical_on_reapply(self, clean_db, faulted):
        db1, truth1 = faulted
        injector = FaultInjector(FaultConfig(), seed=99)
        db2, truth2 = injector.apply(
            clean_db, DT_S, cmf_events=[(1000 * DT_S, 2), (2500 * DT_S, 7)]
        )
        assert np.array_equal(db1.epoch_s, db2.epoch_s)
        for ch in CHANNELS:
            assert np.array_equal(
                db1.channel(ch).values, db2.channel(ch).values, equal_nan=True
            )
        assert np.array_equal(truth1.dropout, truth2.dropout)
        assert np.array_equal(truth1.delivery_delay_s, truth2.delivery_delay_s)
        assert len(truth1.faults) == len(truth2.faults)

    def test_different_seed_differs(self, clean_db, faulted):
        _, truth1 = faulted
        _, truth2 = FaultInjector(FaultConfig(), seed=100).apply(clean_db, DT_S)
        assert not np.array_equal(truth1.dropout, truth2.dropout)


class TestCalibration:
    def test_dropout_near_configured_rate(self, faulted):
        _, truth = faulted
        rate = truth.dropout.mean()
        assert rate == pytest.approx(FaultConfig().dropout_rate, rel=0.35)

    def test_clock_skew_bounded(self, faulted):
        _, truth = faulted
        assert truth.delivery_delay_s.max() <= FaultConfig().skew_max_periods * DT_S

    def test_untouched_cells_identical_to_clean(self, clean_db, faulted):
        db, truth = faulted
        kept = ~truth.floor_gap
        for ch in (Channel.POWER, Channel.FLOW):
            clean = clean_db.channel(ch).values[kept]
            dirty = db.channel(ch).values
            untouched = ~(truth.missing_mask() | truth.corrupted_mask(ch))[kept]
            assert np.array_equal(clean[untouched], dirty[untouched])

    def test_blackout_tied_to_events(self, faulted):
        _, truth = faulted
        cfg = FaultConfig()
        lo = int(1000 - cfg.blackout_before_cmf_s / DT_S)
        assert truth.blackout[lo:1000, 2].all()
        assert not truth.blackout[:, 0].any()


class TestDeliveredStream:
    def test_ingest_never_raises_and_orders_rows(self, faulted):
        db, truth = faulted
        assert (np.diff(db.epoch_s) > 0).all()
        assert db.num_samples == N_SAMPLES - int(truth.floor_gap.sum())
        assert db.counters.dropped_late_rows == 0

    def test_missing_cells_are_nan_and_flagged(self, faulted):
        db, truth = faulted
        kept = np.flatnonzero(~truth.floor_gap)
        missing = truth.missing_mask()[kept]
        for ch in CHANNELS:
            if not ch.is_sensor:
                continue
            assert np.isnan(db.channel(ch).values[missing]).all()
            assert (db.quality(ch)[missing] == Quality.MISSING).all()

    def test_duplicates_counted_not_stored(self, faulted):
        db, truth = faulted
        duplicates_kept = int((truth.duplicated & ~truth.floor_gap).sum())
        assert db.counters.duplicate_rows == duplicates_kept
        assert len(np.unique(db.epoch_s)) == db.num_samples


class TestConfigValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultConfig(dropout_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(skew_rate=-0.1)

    def test_ranges_ordered(self):
        with pytest.raises(ValueError):
            FaultConfig(stuck_min_samples=10, stuck_max_samples=5)
        with pytest.raises(ValueError):
            FaultConfig(floor_gap_min_s=100.0, floor_gap_max_s=10.0)
        with pytest.raises(ValueError):
            FaultConfig(spike_min_sigma=5.0, spike_max_sigma=1.0)

    def test_config_is_hashable_and_repr_stable(self):
        a = FaultConfig()
        b = FaultConfig()
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)
        assert repr(a) != repr(dataclasses.replace(a, dropout_rate=0.5))

    def test_empty_database_rejected(self):
        db = EnvironmentalDatabase(num_racks=2)
        with pytest.raises(ValueError):
            FaultInjector(FaultConfig(), seed=0).apply(db, DT_S)
