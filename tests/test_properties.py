"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants, units
from repro.core.correlation import pearson, spearman
from repro.core.failure_analysis import deduplicate_cmf_events
from repro.facility.topology import RackId
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)
from repro.telemetry.ras import CMF_CATEGORY, RasEvent, RasLog, Severity
from repro.telemetry.series import TimeSeries


# -- units -----------------------------------------------------------------

@given(st.floats(min_value=-80.0, max_value=200.0))
def test_temperature_roundtrip(temp_f):
    back = units.celsius_to_fahrenheit(units.fahrenheit_to_celsius(temp_f))
    assert back == pytest.approx(temp_f, abs=1e-9)


@given(st.floats(min_value=0.01, max_value=10_000.0))
def test_flow_roundtrip(gpm):
    assert units.kg_per_s_to_gpm(units.gpm_to_kg_per_s(gpm)) == pytest.approx(
        gpm, rel=1e-12
    )


@given(
    st.floats(min_value=0.1, max_value=500.0),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_heat_balance_roundtrip(heat_kw, flow_gpm):
    rise = units.coolant_temperature_rise_f(heat_kw, flow_gpm)
    assert rise > 0
    assert units.heat_absorbed_kw(rise, flow_gpm) == pytest.approx(heat_kw, rel=1e-9)


@given(
    st.floats(min_value=-20.0, max_value=50.0),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_dewpoint_never_exceeds_temperature(temp_c, rh):
    assert units.dewpoint_c(temp_c, rh) <= temp_c + 1e-6


@given(
    st.floats(min_value=0.0, max_value=45.0),
    st.floats(min_value=5.0, max_value=95.0),
    st.floats(min_value=1.0, max_value=4.0),
)
def test_dewpoint_monotone_in_humidity(temp_c, rh, bump):
    low = units.dewpoint_c(temp_c, rh)
    high = units.dewpoint_c(temp_c, min(rh + bump, 100.0))
    assert high >= low - 1e-9


# -- rack ids -----------------------------------------------------------------

@given(st.integers(min_value=0, max_value=constants.NUM_RACKS - 1))
def test_rackid_flat_roundtrip(index):
    assert RackId.from_flat_index(index).flat_index == index


@given(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=15),
)
def test_rackid_parse_roundtrip(row, col):
    rack = RackId(row, col)
    assert RackId.parse(rack.label) == rack


# -- correlation -----------------------------------------------------------------

@given(
    st.lists(
        st.floats(min_value=-100, max_value=100),
        min_size=5,
        max_size=40,
    ).filter(lambda xs: max(xs) - min(xs) > 1e-6)  # avoid variance underflow
)
def test_pearson_self_correlation_is_one(values):
    x = np.array(values)
    assert pearson(x, x) == pytest.approx(1.0)
    assert pearson(x, -x) == pytest.approx(-1.0)


@given(
    st.lists(st.floats(min_value=-50, max_value=50), min_size=5, max_size=30),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=-5.0, max_value=5.0),
)
def test_pearson_affine_invariance(values, scale, shift):
    x = np.array(values)
    if x.std() < 1e-6 or (x.max() - x.min()) * scale < 1e-6:
        return  # effectively constant after scaling; correlation undefined
    y = np.arange(len(x), dtype=float)
    base = pearson(x, y)
    transformed = pearson(scale * x + shift, y)
    assert transformed == pytest.approx(base, abs=1e-9)


@given(
    st.lists(st.floats(min_value=-50, max_value=50), min_size=5, max_size=30)
)
def test_spearman_bounded(values):
    x = np.array(values)
    # Guard on distinct values, not std(): five copies of the same
    # float can have a ~1e-15 std from summation rounding while their
    # ranks are constant, which makes the correlation undefined.
    if np.unique(x).size < 2:
        return
    y = np.arange(len(x), dtype=float)
    assert -1.0 - 1e-9 <= spearman(x, y) <= 1.0 + 1e-9


# -- metrics -----------------------------------------------------------------

@st.composite
def _binary_pair(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    y_true = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    y_pred = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    return np.array(y_true), np.array(y_pred)


@given(_binary_pair())
def test_confusion_matrix_partitions(pair):
    y_true, y_pred = pair
    tp, fp, tn, fn = confusion_matrix(y_true, y_pred)
    assert tp + fp + tn + fn == len(y_true)
    assert min(tp, fp, tn, fn) >= 0


@given(_binary_pair())
def test_metrics_bounded(pair):
    y_true, y_pred = pair
    for metric in (accuracy, precision, recall, f1_score):
        value = metric(y_true, y_pred)
        assert 0.0 <= value <= 1.0


@given(_binary_pair())
def test_f1_between_min_and_max_of_pr(pair):
    y_true, y_pred = pair
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    f1 = f1_score(y_true, y_pred)
    assert min(p, r) - 1e-9 <= f1 <= max(p, r) + 1e-9


# -- time series -----------------------------------------------------------------

@given(
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4),
        min_size=2,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=50),
)
def test_resample_preserves_mean_for_full_bucket(values, factor):
    """Resampling everything into one bucket equals the overall mean."""
    epoch = np.arange(len(values), dtype=float)
    series = TimeSeries(epoch, np.array(values))
    bucket = float(len(values) * factor)
    resampled = series.resample(bucket)
    assert len(resampled) == 1
    assert resampled.values[0] == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=100),
    st.integers(min_value=1, max_value=9),
)
def test_rolling_mean_bounded_by_extremes(values, window):
    epoch = np.arange(len(values), dtype=float)
    smoothed = TimeSeries(epoch, np.array(values)).rolling_mean(window)
    assert smoothed.values.min() >= min(values) - 1e-9
    assert smoothed.values.max() <= max(values) + 1e-9


# -- dedup -----------------------------------------------------------------

@st.composite
def _cmf_log(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=1e6),
            min_size=count,
            max_size=count,
        )
    )
    racks = draw(
        st.lists(
            st.integers(min_value=0, max_value=constants.NUM_RACKS - 1),
            min_size=count,
            max_size=count,
        )
    )
    events = [
        RasEvent(t, RackId.from_flat_index(r), Severity.FATAL, CMF_CATEGORY)
        for t, r in zip(times, racks)
    ]
    return RasLog(events)


@given(_cmf_log())
@settings(max_examples=60)
def test_dedup_idempotent(log):
    """Re-deduplicating the deduplicated events changes nothing."""
    first = deduplicate_cmf_events(log)
    second = deduplicate_cmf_events(RasLog(first.events))
    assert second.count == first.count


@given(_cmf_log())
@settings(max_examples=60)
def test_dedup_never_increases_and_spacing_holds(log):
    dedup = deduplicate_cmf_events(log)
    assert dedup.count <= len(log)
    # Per rack, kept events are spaced by at least the window.
    by_rack = {}
    for event in dedup.events:
        by_rack.setdefault(event.rack_id, []).append(event.epoch_s)
    for times in by_rack.values():
        gaps = np.diff(sorted(times))
        assert (gaps >= constants.CMF_DEDUP_WINDOW_S).all()


# -- floor map -----------------------------------------------------------------

@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6),
        min_size=constants.NUM_RACKS,
        max_size=constants.NUM_RACKS,
    )
)
def test_floor_map_always_renders_three_rows(values):
    from repro.core.floormap import render_floor

    text = render_floor(values)
    assert sum(line.startswith("row ") for line in text.splitlines()) == 3


# -- alert engine ---------------------------------------------------------------

@st.composite
def _probability_stream(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )


@given(_probability_stream(), st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=60)
def test_alert_engine_respects_cooldown(stream, threshold):
    from repro.facility.topology import RackId
    from repro.monitoring.alerts import AlertEngine, AlertPolicy
    from repro.monitoring.online import Prediction

    cooldown = 1800.0
    engine = AlertEngine(
        AlertPolicy(threshold=threshold, persistence=1, cooldown_s=cooldown)
    )
    alert_times = []
    for i, probability in enumerate(stream):
        prediction = Prediction(
            epoch_s=i * 300.0, rack_id=RackId(0, 0), probability=probability
        )
        alert = engine.process(prediction)
        if alert is not None:
            alert_times.append(alert.epoch_s)
    gaps = np.diff(alert_times)
    assert np.all(gaps >= cooldown)


@given(_probability_stream(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60)
def test_alert_engine_persistence_never_fires_early(stream, persistence):
    from repro.facility.topology import RackId
    from repro.monitoring.alerts import AlertEngine, AlertPolicy
    from repro.monitoring.online import Prediction

    threshold = 0.5
    engine = AlertEngine(
        AlertPolicy(threshold=threshold, persistence=persistence, cooldown_s=0.0)
    )
    streak = 0
    for i, probability in enumerate(stream):
        alert = engine.process(
            Prediction(epoch_s=i * 300.0, rack_id=RackId(1, 2), probability=probability)
        )
        streak = streak + 1 if probability >= threshold else 0
        if alert is not None:
            assert streak >= persistence


# -- weibull fit -----------------------------------------------------------------

@given(
    st.floats(min_value=0.5, max_value=3.0),
    st.floats(min_value=0.5, max_value=50.0),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_weibull_fit_recovers_shape(shape, scale, seed):
    from repro.core.hazard import fit_weibull

    rng = np.random.default_rng(seed)
    samples = rng.weibull(shape, size=3000) * scale
    samples = samples[samples > 0]
    fit = fit_weibull(samples)
    assert fit.shape == pytest.approx(shape, rel=0.15)
    assert fit.scale == pytest.approx(scale, rel=0.15)


# -- calibration ------------------------------------------------------------------

@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=200),
    st.integers(min_value=0, max_value=1000),
)
def test_brier_score_bounded(probabilities, seed):
    from repro.ml.calibration import brier_score

    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, len(probabilities))
    score = brier_score(np.array(probabilities), labels)
    assert 0.0 <= score <= 1.0
