"""Optimizers and the training loop on separable problems."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy
from repro.ml.network import NeuralNetwork
from repro.ml.optimizers import SGD, Adam
from repro.ml.train import (
    FeatureScaler,
    TrainConfig,
    three_way_split,
    train_classifier,
)


def _blobs(n=200, seed=0):
    """Two well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((n // 2, 2)) + np.array([-2.0, -2.0])
    x1 = rng.standard_normal((n // 2, 2)) + np.array([2.0, 2.0])
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return x, y


def _xor(n=400, seed=0):
    """The XOR problem — requires a hidden layer."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


class TestOptimizers:
    @pytest.mark.parametrize("optimizer", [SGD(0.1), SGD(0.05, momentum=0.9), Adam()])
    def test_blobs_converge(self, optimizer):
        x, y = _blobs()
        net = NeuralNetwork.mlp(2, (4,), rng=np.random.default_rng(1))
        result = train_classifier(
            net, x, y, config=TrainConfig(epochs=40), optimizer=optimizer,
            rng=np.random.default_rng(2),
        )
        assert accuracy(y, result.predict(x)) > 0.95

    def test_loss_decreases(self):
        x, y = _blobs()
        net = NeuralNetwork.mlp(2, (4,), rng=np.random.default_rng(1))
        result = train_classifier(net, x, y, rng=np.random.default_rng(2))
        assert result.train_losses[-1] < result.train_losses[0]

    def test_bad_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            Adam(learning_rate=-1.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD(0.1, momentum=1.0)


class TestTraining:
    def test_xor_needs_and_uses_hidden_layer(self):
        x, y = _xor()
        net = NeuralNetwork.mlp(2, (12, 6), rng=np.random.default_rng(1))
        result = train_classifier(
            net, x, y, config=TrainConfig(epochs=150), rng=np.random.default_rng(2)
        )
        assert accuracy(y, result.predict(x)) > 0.9

    def test_validation_losses_tracked(self):
        x, y = _blobs()
        net = NeuralNetwork.mlp(2, (4,), rng=np.random.default_rng(1))
        result = train_classifier(
            net, x[:150], y[:150], rng=np.random.default_rng(2),
            x_val=x[150:], y_val=y[150:],
        )
        assert len(result.validation_losses) == TrainConfig().epochs

    def test_paper_epoch_default(self):
        assert TrainConfig().epochs == 50

    def test_length_mismatch_rejected(self):
        net = NeuralNetwork.mlp(2, (4,))
        with pytest.raises(ValueError):
            train_classifier(net, np.ones((10, 2)), np.ones(5))

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)


class TestFeatureScaler:
    def test_standardizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(500, 4))
        scaler = FeatureScaler.fit(x)
        z = scaler.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_safe(self):
        x = np.ones((10, 2))
        z = FeatureScaler.fit(x).transform(x)
        assert np.isfinite(z).all()


class TestThreeWaySplit:
    def test_ratio(self):
        x = np.arange(500.0).reshape(-1, 1)
        y = np.tile([0, 1], 250)
        rng = np.random.default_rng(0)
        (xt, yt), (xs, ys), (xv, yv) = three_way_split(x, y, rng)
        assert len(xt) == pytest.approx(300, abs=4)
        assert len(xs) == pytest.approx(100, abs=4)
        assert len(xv) == pytest.approx(100, abs=4)
        assert len(xt) + len(xs) + len(xv) == 500

    def test_stratified(self):
        x = np.arange(500.0).reshape(-1, 1)
        y = np.array([0] * 400 + [1] * 100)
        rng = np.random.default_rng(0)
        (_, yt), (_, ys), (_, yv) = three_way_split(x, y, rng)
        for part in (yt, ys, yv):
            assert 0.1 < part.mean() < 0.3

    def test_disjoint_and_complete(self):
        x = np.arange(100.0).reshape(-1, 1)
        y = np.tile([0, 1], 50)
        rng = np.random.default_rng(0)
        parts = three_way_split(x, y, rng)
        seen = np.concatenate([p[0].ravel() for p in parts])
        assert sorted(seen) == sorted(x.ravel())

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            three_way_split(np.ones((10, 1)), np.ones(10), np.random.default_rng(0), ratio=(1, 0, 1))
