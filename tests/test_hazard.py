"""Weibull hazard fitting and the bathtub verdict."""

import numpy as np
import pytest

from repro.core.hazard import BathtubVerdict, bathtub_verdict, fit_weibull


class TestWeibullFit:
    def test_recovers_exponential(self):
        rng = np.random.default_rng(0)
        t = rng.exponential(10.0, size=5000)
        fit = fit_weibull(t)
        assert fit.shape == pytest.approx(1.0, abs=0.05)
        assert fit.scale == pytest.approx(10.0, rel=0.05)
        assert fit.is_memoryless

    def test_recovers_wearout_shape(self):
        rng = np.random.default_rng(1)
        t = rng.weibull(2.5, size=5000) * 7.0
        fit = fit_weibull(t)
        assert fit.shape == pytest.approx(2.5, rel=0.08)
        assert fit.is_wear_out

    def test_recovers_infant_mortality_shape(self):
        rng = np.random.default_rng(2)
        t = rng.weibull(0.6, size=5000) * 7.0
        fit = fit_weibull(t)
        assert fit.shape == pytest.approx(0.6, rel=0.08)
        assert fit.is_infant_mortality

    def test_loglikelihood_prefers_true_shape(self):
        rng = np.random.default_rng(3)
        t = rng.weibull(2.0, size=2000) * 5.0
        good = fit_weibull(t)
        # Compare against a deliberately wrong exponential model
        # (k = 1, scale = mean): the MLE must beat it.
        scale = t.mean()
        wrong_ll = float(-len(t) * np.log(scale) - np.sum(t / scale))
        assert good.log_likelihood > wrong_ll

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_weibull([1.0, 2.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            fit_weibull([1.0, 0.0, 2.0])


class TestBathtubVerdict:
    def test_bathtub_process_detected(self):
        rng = np.random.default_rng(4)
        # Early infant mortality, late wear-out (regular gaps).
        early = np.cumsum(rng.weibull(0.5, 80) * 5.0)
        late = early[-1] + 10.0 + np.cumsum(rng.weibull(3.0, 80) * 8.0)
        # Split at the phase boundary (early phase spans ~65 % of life).
        verdict = bathtub_verdict(np.concatenate([early, late]), split=0.65)
        assert verdict.early_fit.is_infant_mortality
        assert verdict.late_fit.is_wear_out
        assert verdict.is_bathtub

    def test_poisson_process_not_bathtub(self):
        rng = np.random.default_rng(5)
        times = np.cumsum(rng.exponential(3.0, 300))
        verdict = bathtub_verdict(times)
        assert not verdict.is_bathtub
        assert "not bathtub" in verdict.summary()

    def test_simulated_cmfs_not_bathtub(self, full_result):
        """The paper's Fig 10 claim, formally."""
        times = np.array([e.epoch_s for e in full_result.schedule.events])
        verdict = bathtub_verdict(times)
        assert not verdict.is_bathtub

    def test_too_few_events_rejected(self):
        with pytest.raises(ValueError):
            bathtub_verdict(np.arange(5.0))
