"""Documentation integrity: the docs reference things that exist."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


class TestRequiredFiles:
    @pytest.mark.parametrize(
        "name",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "CONTRIBUTING.md",
            "docs/architecture.md",
            "docs/tutorial.md",
            "docs/paper_mapping.md",
        ],
    )
    def test_file_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert len(path.read_text()) > 500, f"{name} suspiciously short"


class TestReadmeClaims:
    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_install_commands_present(self):
        readme = (ROOT / "README.md").read_text()
        assert "pip install -e" in readme
        assert "pytest benchmarks/ --benchmark-only" in readme


class TestModuleReferences:
    def test_design_md_modules_importable(self):
        """Every `repro.x.y` dotted path named in DESIGN.md imports."""
        text = (ROOT / "DESIGN.md").read_text()
        for dotted in sorted(set(re.findall(r"\brepro\.[a-z_.]+[a-z_]", text))):
            try:
                importlib.import_module(dotted)
            except ModuleNotFoundError:
                # Might be a module attribute like repro.core.trends —
                # try the parent.
                parent, _, attr = dotted.rpartition(".")
                module = importlib.import_module(parent)
                assert hasattr(module, attr), f"DESIGN.md references {dotted}"

    def test_paper_mapping_module_files_exist(self):
        """Backtick file paths in paper_mapping.md exist in the repo."""
        text = (ROOT / "docs" / "paper_mapping.md").read_text()
        for match in re.finditer(r"`([a-z_]+/[a-z_]+\.py)`", text):
            relative = match.group(1)
            candidates = (ROOT / "src" / "repro" / relative, ROOT / relative)
            assert any(c.exists() for c in candidates), (
                f"paper_mapping.md references {relative}"
            )

    def test_experiments_md_covers_all_figures(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in range(2, 16):
            assert f"Fig {figure}" in text or f"Figs 10-11" in text
