"""The experiment-index module (EXPERIMENTS.md source)."""

import pytest

from repro.core.experiments import full_report, render_markdown
from repro.core.report import ReportRow


class TestFullReport:
    def test_sections_without_windows(self, year_result):
        sections = full_report(year_result)
        assert len(sections) == 10
        for title, rows in sections.items():
            assert rows, f"empty section {title}"
            assert all(isinstance(row, ReportRow) for row in rows)

    def test_window_sections_added(self, year_result, year_windows):
        positives, negatives = year_windows
        sections = full_report(year_result, positives, negatives)
        assert any("Fig 12" in title for title in sections)
        assert any("Fig 13" in title for title in sections)

    def test_figures_covered(self, year_result):
        sections = full_report(year_result)
        figures = {row.figure for rows in sections.values() for row in rows}
        for fig in ("Fig 2a", "Fig 3a", "Fig 4a", "Fig 5a", "Fig 6a",
                    "Fig 7a", "Fig 8a", "Fig 9a", "Fig 10", "Fig 11",
                    "Fig 14a", "Fig 15"):
            assert fig in figures, f"missing {fig}"


class TestMarkdown:
    def test_renders_tables(self, year_result):
        text = render_markdown(full_report(year_result))
        assert "### Fig 2" in text
        assert "| source | metric | paper | measured | unit |" in text
        # One table per section.
        separators = [l for l in text.splitlines() if l.startswith("|---")]
        assert len(separators) == 10

    def test_every_row_rendered(self, year_result):
        sections = full_report(year_result)
        text = render_markdown(sections)
        total_rows = sum(len(rows) for rows in sections.values())
        # Header rows: two per section.
        data_lines = [
            line
            for line in text.splitlines()
            if line.startswith("| ") and "metric" not in line and "---" not in line
        ]
        assert len(data_lines) == total_rows
