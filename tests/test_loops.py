"""The hydraulic loop and heat exchangers."""

import numpy as np
import pytest

from repro import constants
from repro.cooling.loops import CoolingLoop, HeatExchanger


@pytest.fixture
def loop():
    return CoolingLoop(rng=np.random.default_rng(3))


class TestHeatExchanger:
    def test_outlet_above_inlet_under_load(self):
        hx = HeatExchanger()
        assert hx.outlet_temperature_f(64.0, 55.0, 26.0) > 64.0

    def test_no_heat_no_rise(self):
        hx = HeatExchanger()
        assert hx.outlet_temperature_f(64.0, 0.0, 26.0) == 64.0

    def test_mira_operating_point(self):
        # ~55 kW at ~26 GPM: outlet near the paper's 79 F.
        hx = HeatExchanger()
        outlet = hx.outlet_temperature_f(64.4, 55.0, 26.0)
        assert 77.0 < outlet < 81.0

    def test_negative_heat_rejected(self):
        with pytest.raises(ValueError):
            HeatExchanger().outlet_temperature_f(64.0, -1.0, 26.0)

    @pytest.mark.parametrize("effectiveness", [0.0, -0.1, 1.01])
    def test_bad_effectiveness_rejected(self, effectiveness):
        with pytest.raises(ValueError):
            HeatExchanger(effectiveness=effectiveness)


class TestFlowSplit:
    def test_flow_conserved(self, loop):
        flows = loop.rack_flows_gpm(1250.0)
        assert flows.sum() == pytest.approx(1250.0)

    def test_per_rack_flow_magnitude(self, loop):
        flows = loop.rack_flows_gpm(1250.0)
        # Paper: ~26 GPM per rack.
        assert 23.0 < flows.mean() < 29.0

    def test_spread_matches_fig7(self, loop):
        flows = loop.rack_flows_gpm(1250.0)
        spread = (flows.max() - flows.min()) / flows.min()
        # Paper: up to 11 % spread from underfloor blockage.
        assert 0.04 < spread < 0.16

    def test_closed_solenoids_redistribute(self, loop):
        solenoid = np.ones(constants.NUM_RACKS, dtype=bool)
        solenoid[0] = False
        flows = loop.rack_flows_gpm(1250.0, solenoid_open=solenoid)
        assert flows[0] == 0.0
        assert flows.sum() == pytest.approx(1250.0)

    def test_disturbance_reduces_rack_flow(self, loop):
        disturbance = np.ones(constants.NUM_RACKS)
        disturbance[5] = 0.3
        base = loop.rack_flows_gpm(1250.0)
        disturbed = loop.rack_flows_gpm(1250.0, flow_disturbance=disturbance)
        assert disturbed[5] < base[5]

    def test_all_closed_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.rack_flows_gpm(
                1250.0, solenoid_open=np.zeros(constants.NUM_RACKS, dtype=bool)
            )

    def test_bad_total_rejected(self, loop):
        with pytest.raises(ValueError):
            loop.rack_flows_gpm(0.0)


class TestThermals:
    def test_inlet_nearly_uniform(self, loop):
        inlet = loop.rack_inlet_temperatures_f(64.0)
        spread = (inlet.max() - inlet.min()) / inlet.min()
        # Paper Fig 7(b): ~1 %.
        assert spread < 0.015

    def test_outlet_vectorized_matches_exchanger(self, loop):
        inlet = np.full(constants.NUM_RACKS, 64.0)
        heat = np.full(constants.NUM_RACKS, 55.0)
        flows = np.full(constants.NUM_RACKS, 26.0)
        outlet = loop.rack_outlet_temperatures_f(inlet, heat, flows)
        expected = loop.exchanger.outlet_temperature_f(64.0, 55.0, 26.0)
        assert np.allclose(outlet, expected)

    def test_zero_flow_rack_reads_inlet(self, loop):
        inlet = np.full(constants.NUM_RACKS, 64.0)
        heat = np.full(constants.NUM_RACKS, 55.0)
        flows = np.full(constants.NUM_RACKS, 26.0)
        flows[7] = 0.0
        outlet = loop.rack_outlet_temperatures_f(inlet, heat, flows)
        assert outlet[7] == pytest.approx(64.0)

    def test_negative_heat_rejected(self, loop):
        inlet = np.full(constants.NUM_RACKS, 64.0)
        heat = np.full(constants.NUM_RACKS, -1.0)
        flows = np.full(constants.NUM_RACKS, 26.0)
        with pytest.raises(ValueError):
            loop.rack_outlet_temperatures_f(inlet, heat, flows)

    def test_conductances_deterministic(self):
        l1 = CoolingLoop(rng=np.random.default_rng(8))
        l2 = CoolingLoop(rng=np.random.default_rng(8))
        assert np.allclose(l1.conductances, l2.conductances)
