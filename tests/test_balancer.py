"""The adaptive flow balancer."""

import numpy as np
import pytest

from repro import constants
from repro.cooling.balancer import AdaptiveFlowBalancer
from repro.cooling.loops import CoolingLoop


class TestEstimation:
    def test_conductance_estimate_matches_ground_truth(self, demo_result):
        balancer = AdaptiveFlowBalancer()
        estimate = balancer.estimate_conductance(demo_result.database)
        # The engine's loop was built with the machine seed; rebuild it
        # the same way the engine does to compare.
        from repro.simulation.engine import FacilityEngine

        engine = FacilityEngine(demo_result.config)
        truth = engine.loop.conductances
        truth = truth / truth.mean()
        correlation = np.corrcoef(estimate, truth)[0, 1]
        assert correlation > 0.97

    def test_estimate_normalized(self, demo_result):
        estimate = AdaptiveFlowBalancer().estimate_conductance(demo_result.database)
        assert estimate.mean() == pytest.approx(1.0, abs=0.01)

    def test_empty_database_rejected(self):
        from repro.telemetry.database import EnvironmentalDatabase

        with pytest.raises(ValueError):
            AdaptiveFlowBalancer().estimate_conductance(EnvironmentalDatabase())


class TestPlanning:
    def test_plan_reduces_spread(self, demo_result):
        balancer = AdaptiveFlowBalancer()
        plan = balancer.plan(demo_result.database)
        assert plan.predicted_spread < plan.measured_spread
        assert plan.improvement > 0.3

    def test_trim_bounds(self, demo_result):
        plan = AdaptiveFlowBalancer(headroom=0.85).plan(demo_result.database)
        assert np.all(plan.trim >= 0.85)
        assert np.all(plan.trim <= 1.0)
        # The weakest rack stays fully open.
        weakest = int(np.argmin(plan.estimated_conductance))
        assert plan.trim[weakest] == pytest.approx(1.0)

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFlowBalancer(headroom=0.0)


class TestGroundTruthVerification:
    def test_applying_plan_flattens_real_loop(self, demo_result):
        balancer = AdaptiveFlowBalancer()
        plan = balancer.plan(demo_result.database)
        from repro.simulation.engine import FacilityEngine

        loop = FacilityEngine(demo_result.config).loop
        baseline = loop.rack_flows_gpm(1250.0)
        baseline_spread = (baseline.max() - baseline.min()) / baseline.min()
        _, balanced_spread = balancer.apply_to_loop(loop, plan, 1250.0)
        assert balanced_spread < 0.7 * baseline_spread

    def test_flow_still_conserved_after_trim(self, demo_result):
        balancer = AdaptiveFlowBalancer()
        plan = balancer.plan(demo_result.database)
        from repro.simulation.engine import FacilityEngine

        loop = FacilityEngine(demo_result.config).loop
        flows, _ = balancer.apply_to_loop(loop, plan, 1250.0)
        assert flows.sum() == pytest.approx(1250.0)

    def test_balanced_loop_needs_less_total_flow(self, demo_result):
        balancer = AdaptiveFlowBalancer()
        plan = balancer.plan(demo_result.database)
        before, after = balancer.required_total_flow(plan)
        assert after < before
        # Both requirements are in a sane facility range.
        assert 1000 < after < before < 1600
