"""Temporal trend analyses (Figs 2-5) on the short datasets."""

import numpy as np
import pytest

from repro.core.trends import (
    coolant_trends,
    monthly_profile,
    weekday_profile,
    yearly_trends,
)
from repro.telemetry.records import Channel


class TestYearlyTrends:
    def test_positive_power_trend(self, year_result):
        trends = yearly_trends(year_result.database)
        assert trends.power_fit.slope_per_year > 0.0

    def test_fit_endpoints_bracket_series(self, year_result):
        trends = yearly_trends(year_result.database)
        assert 2.0 < trends.power_start_mw < 3.2
        assert trends.power_end_mw > trends.power_start_mw

    def test_utilization_trend_positive(self, year_result):
        trends = yearly_trends(year_result.database)
        assert trends.utilization_fit.slope_per_year > 0.0
        assert 0.7 < trends.utilization_start < 1.0

    def test_smoothing_preserves_length(self, year_result):
        trends = yearly_trends(year_result.database, smooth_window=48)
        assert len(trends.power_mw) == year_result.database.num_samples


class TestCoolantTrends:
    def test_means_near_paper_values(self, year_result):
        trends = coolant_trends(year_result.database)
        assert trends.inlet_mean_f == pytest.approx(64.5, abs=1.5)
        assert trends.outlet_mean_f == pytest.approx(79.0, abs=2.5)

    def test_stds_are_small(self, year_result):
        trends = coolant_trends(year_result.database)
        assert trends.inlet_std_f < 2.0
        assert trends.outlet_std_f < 3.0

    def test_flow_near_setpoint(self, year_result):
        trends = coolant_trends(year_result.database)
        assert 1150 < trends.flow_pre_theta_gpm < 1350


class TestMonthlyProfile:
    def test_power_profile_has_12_months(self, full_result):
        profile = monthly_profile(full_result.database)
        assert set(profile.by_month) == set(range(1, 13))

    def test_power_higher_in_second_half(self, full_result):
        profile = monthly_profile(full_result.database)
        assert profile.second_half_ratio > 1.0

    def test_utilization_higher_in_second_half(self, full_result):
        profile = monthly_profile(full_result.database, Channel.UTILIZATION)
        assert profile.second_half_ratio > 1.0

    def test_coolant_channels_flat_across_months(self, full_result):
        # Fig 4 caption: < 1.5 % change from January.
        for channel in (Channel.FLOW, Channel.INLET_TEMPERATURE, Channel.OUTLET_TEMPERATURE):
            profile = monthly_profile(full_result.database, channel)
            assert profile.max_change_from_january < 0.05

    def test_power_peaks_late_year(self, full_result):
        profile = monthly_profile(full_result.database)
        assert profile.peak_month in (10, 11, 12)


class TestWeekdayProfile:
    def test_monday_is_power_minimum(self, full_result):
        profile = weekday_profile(full_result.database)
        assert profile.minimum_weekday == 0

    def test_non_monday_power_increase_near_paper(self, full_result):
        profile = weekday_profile(full_result.database)
        # Paper: ~6 %.
        assert 0.02 < profile.non_monday_increase < 0.12

    def test_non_monday_utilization_increase_small(self, full_result):
        profile = weekday_profile(full_result.database, Channel.UTILIZATION)
        # Paper: ~1.5 %.
        assert 0.0 < profile.non_monday_increase < 0.05

    def test_outlet_increase_modest(self, full_result):
        profile = weekday_profile(full_result.database, Channel.OUTLET_TEMPERATURE)
        # Paper: ~2 %.
        assert 0.0 < profile.non_monday_increase < 0.05

    def test_flow_and_inlet_flat(self, full_result):
        for channel in (Channel.FLOW, Channel.INLET_TEMPERATURE):
            profile = weekday_profile(full_result.database, channel)
            assert abs(profile.non_monday_increase) < 0.01
