"""RAS storm generation."""

import numpy as np
import pytest

from repro import constants
from repro.failures.cmf import CmfSchedule
from repro.failures.noncmf import AftermathProcess
from repro.failures.storms import StormConfig, StormGenerator
from repro.telemetry.ras import Severity


@pytest.fixture(scope="module")
def schedule():
    return CmfSchedule.generate(np.random.default_rng(31))


class TestStormVolume:
    def test_storm_has_many_messages(self, schedule):
        generator = StormGenerator()
        incident = schedule.incidents[0]
        events = generator.storm_for_incident(np.random.default_rng(1), incident)
        # Far more raw messages than true failures.
        fatal = [e for e in events if e.severity is Severity.FATAL]
        assert len(fatal) > incident.size * 5

    def test_large_log_reaches_storm_scale(self, schedule):
        generator = StormGenerator()
        log = generator.build_ras_log(np.random.default_rng(1), schedule.incidents)
        # The paper: storms log upwards of 10k messages in aggregate.
        assert len(log) > constants.STORM_MESSAGE_SCALE

    def test_bystander_warnings_present(self, schedule):
        generator = StormGenerator()
        events = generator.storm_for_incident(
            np.random.default_rng(1), schedule.incidents[0]
        )
        warns = [e for e in events if e.severity is Severity.WARN]
        assert len(warns) == generator.config.bystander_warnings

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            StormConfig(mean_messages_per_rack=0)


class TestStormStructure:
    def test_first_message_at_event_time(self, schedule):
        generator = StormGenerator()
        incident = schedule.incidents[0]
        events = generator.storm_for_incident(np.random.default_rng(1), incident)
        for cmf_event in incident.events:
            rack_events = [
                e
                for e in events
                if e.rack_id == cmf_event.rack_id and e.severity is Severity.FATAL
            ]
            assert min(e.epoch_s for e in rack_events) == pytest.approx(
                cmf_event.epoch_s
            )

    def test_burst_confined_to_duration(self, schedule):
        config = StormConfig(burst_duration_s=600.0)
        generator = StormGenerator(config)
        incident = schedule.incidents[0]
        events = generator.storm_for_incident(np.random.default_rng(1), incident)
        for cmf_event in incident.events:
            rack_events = [
                e
                for e in events
                if e.rack_id == cmf_event.rack_id and e.severity is Severity.FATAL
            ]
            last = max(e.epoch_s for e in rack_events)
            assert last <= cmf_event.epoch_s + config.burst_duration_s

    def test_noncmf_failures_logged_once(self, schedule):
        generator = StormGenerator()
        aftermath = AftermathProcess()
        rng = np.random.default_rng(2)
        noncmf = aftermath.induced_failures(rng, schedule.incidents[:5])
        log = generator.build_ras_log(rng, schedule.incidents[:5], noncmf)
        assert len(log.fatal_noncmf_events()) == len(noncmf)

    def test_log_time_ordered(self, schedule):
        generator = StormGenerator()
        log = generator.build_ras_log(
            np.random.default_rng(1), schedule.incidents[:10]
        )
        times = [e.epoch_s for e in log]
        assert times == sorted(times)
