"""Clock/link dependency graph and failure propagation."""

import numpy as np
import pytest

from repro import constants
from repro.facility.dependencies import DependencyGraph
from repro.facility.topology import MiraTopology, RackId


@pytest.fixture
def graph():
    return DependencyGraph(MiraTopology(), rng=np.random.default_rng(7))


class TestClockDependencies:
    def test_global_clock_rack_is_1_4(self, graph):
        assert graph.global_clock_rack == RackId(1, 4)

    def test_global_clock_failure_takes_down_everything(self, graph):
        affected = graph.affected_by_failure(RackId(1, 4))
        assert len(affected) == constants.NUM_RACKS

    def test_rack_0_9_depends_on_0_a(self, graph):
        assert graph.clock_parent(RackId(0, 9)) == RackId(0, 0xA)

    def test_0_a_failure_takes_down_0_9(self, graph):
        affected = graph.affected_by_failure(RackId(0, 0xA))
        assert RackId(0, 9) in affected
        assert RackId(0, 0xA) in affected
        assert len(affected) == 2

    def test_leaf_failure_is_isolated(self, graph):
        affected = graph.affected_by_failure(RackId(2, 3))
        assert affected == frozenset({RackId(2, 3)})

    def test_clock_children_inverse_of_parent(self, graph):
        assert RackId(0, 9) in graph.clock_children(RackId(0, 0xA))


class TestMediation:
    def test_disturbance_superset_of_closure(self, graph):
        for rack_id in (RackId(0, 0), RackId(1, 8), RackId(2, 15)):
            closure = graph.affected_by_failure(rack_id)
            disturbance = graph.disturbance_set(rack_id)
            assert closure <= disturbance

    def test_no_rng_means_no_mediation(self):
        graph = DependencyGraph(MiraTopology())
        assert graph.mediated_by(RackId(0, 0)) == frozenset()

    def test_mediation_excludes_self(self, graph):
        for rack_id in (RackId(0, 0), RackId(1, 4)):
            assert rack_id not in graph.mediated_by(rack_id)

    def test_mediation_deterministic_per_seed(self):
        topology = MiraTopology()
        g1 = DependencyGraph(topology, rng=np.random.default_rng(3))
        g2 = DependencyGraph(topology, rng=np.random.default_rng(3))
        for rack_id in topology.rack_ids:
            assert g1.mediated_by(rack_id) == g2.mediated_by(rack_id)


class TestSpatial:
    def test_distance_zero_to_self(self, graph):
        assert graph.spatial_distance(RackId(1, 5), RackId(1, 5)) == 0.0

    def test_distance_symmetric(self, graph):
        a, b = RackId(0, 2), RackId(2, 9)
        assert graph.spatial_distance(a, b) == graph.spatial_distance(b, a)

    def test_is_spatially_local(self, graph):
        epicenter = RackId(1, 5)
        assert graph.is_spatially_local(epicenter, [RackId(1, 6), RackId(0, 5)])
        assert not graph.is_spatially_local(epicenter, [RackId(1, 15)])
