"""The assembled machine."""

import numpy as np
import pytest

from repro import constants
from repro.facility.machine import Machine
from repro.facility.topology import RackId


@pytest.fixture
def machine():
    return Machine(rng=np.random.default_rng(42))


class TestMachine:
    def test_efficiency_factors_centered_near_one(self, machine):
        factors = machine.efficiency_factors
        assert factors.shape == (constants.NUM_RACKS,)
        assert 0.9 < factors.mean() < 1.1

    def test_highest_power_rack_has_top_efficiency_factor(self, machine):
        factors = machine.efficiency_factors
        hot = RackId(*constants.HIGHEST_POWER_RACK).flat_index
        assert factors[hot] == pytest.approx(factors.max())

    def test_deterministic_given_seed(self):
        m1 = Machine(rng=np.random.default_rng(9))
        m2 = Machine(rng=np.random.default_rng(9))
        assert np.allclose(m1.efficiency_factors, m2.efficiency_factors)

    def test_all_bpms_healthy_initially(self, machine):
        assert machine.bpm_health_vector().all()

    def test_bpm_failure_zeroes_rack_draw(self, machine):
        machine.bpm(RackId(0, 3)).fail()
        util = np.full(constants.NUM_RACKS, 0.9)
        intensity = np.ones(constants.NUM_RACKS)
        draw = machine.rack_ac_draw_kw(util, intensity)
        assert draw[RackId(0, 3).flat_index] == 0.0
        assert draw[RackId(0, 4).flat_index] > 0.0

    def test_powered_mask_zeroes_racks(self, machine):
        util = np.full(constants.NUM_RACKS, 0.9)
        intensity = np.ones(constants.NUM_RACKS)
        powered = np.ones(constants.NUM_RACKS, dtype=bool)
        powered[5] = False
        draw = machine.rack_ac_draw_kw(util, intensity, powered=powered)
        assert draw[5] == 0.0
        assert (draw[np.arange(48) != 5] > 0).all()

    def test_system_power_magnitude(self, machine):
        util = np.full(constants.NUM_RACKS, 0.85)
        intensity = np.ones(constants.NUM_RACKS)
        total_mw = machine.rack_ac_draw_kw(util, intensity).sum() / 1000.0
        assert 2.2 < total_mw < 3.2

    def test_failure_closure_delegates_to_dependencies(self, machine):
        closure = machine.failure_closure(RackId(1, 4))
        assert len(closure) == constants.NUM_RACKS
